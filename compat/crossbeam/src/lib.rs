//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! semantics the SPMD engine relies on: multi-producer multi-consumer,
//! unbounded, FIFO, with disconnect detection on both ends. Built on
//! `std::sync::{Mutex, Condvar}` — less scalable than the real lock-free
//! crossbeam, but identical in behavior for the message rates of a
//! virtual-time simulator.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).unwrap();
            }
        }

        /// Blocks until a message arrives, every sender is dropped, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self.shared.ready.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_unblocks_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn multi_producer_multi_consumer() {
            let (tx, rx) = unbounded();
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..100u64 {
                            tx.send(p * 100 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all.len(), 400);
            all.dedup();
            assert_eq!(all.len(), 400, "duplicated or lost messages");
        }
    }
}
