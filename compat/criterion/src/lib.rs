//! Offline stand-in for the `criterion` crate.
//!
//! Implements enough of criterion's API for this workspace's benches to
//! compile and produce useful numbers offline: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `BenchmarkId`, `Throughput`, and
//! `Bencher::iter`. Each of the `sample_size` iterations is timed
//! individually (after one warm-up), so both the mean and the median
//! (p50) are reported: `group/function/param  time: [mean ... per iter,
//! p50 ...]  thrpt: [...]`. No statistical analysis, HTML reports, or
//! saved baselines — but when the `CRITERION_OUTPUT_JSON` environment
//! variable names a path, `criterion_main!` writes every completed
//! benchmark's `{name, mean_ns, p50_ns, samples}` there as a small JSON
//! document (the shape `BENCH_*.json` trajectory files and the
//! `benchgate` regression gate consume).

use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

/// One finished benchmark, as recorded in the process-wide registry.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Fully qualified `group/function/param` name.
    pub name: String,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Median wall-clock time per iteration, nanoseconds.
    pub p50_ns: f64,
    /// Number of timed iterations behind the statistics.
    pub samples: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Snapshot of every benchmark completed so far in this process.
pub fn results() -> Vec<BenchResult> {
    RESULTS.lock().unwrap().clone()
}

/// Renders the registry as the `BENCH_*.json` document:
/// `{"schema_version": 1, "suite": ..., "benchmarks": [...]}`.
pub fn export_json(suite: &str) -> String {
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", escape_json(suite)));
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"p50_ns\": {:.1}, \"samples\": {}}}{}\n",
            escape_json(&r.name),
            r.mean_ns,
            r.p50_ns,
            r.samples,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Called by `criterion_main!` after all groups ran: if
/// `CRITERION_OUTPUT_JSON` names a path, writes [`export_json`] there.
pub fn maybe_write_json(suite: &str) {
    if let Ok(path) = std::env::var("CRITERION_OUTPUT_JSON") {
        if !path.is_empty() {
            let doc = export_json(suite);
            if let Err(e) = std::fs::write(&path, doc) {
                eprintln!("criterion: failed to write {path}: {e}");
                std::process::exit(1);
            }
            println!("criterion: wrote {path}");
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times one benchmark body.
pub struct Bencher {
    iters: u64,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Calls `body` repeatedly, timing each call individually so the
    /// harness can report both mean and p50. The per-call `Instant`
    /// overhead (~tens of ns) is negligible at the µs-and-up scale of
    /// this workspace's benches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One warm-up call, untimed.
        let _ = body();
        self.samples_ns.clear();
        self.samples_ns.reserve(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            let _ = std::hint::black_box(body());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    fn p50_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

fn fmt_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Sets the throughput denominator for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs a benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let (mean_ns, p50_ns) = (b.mean_ns(), b.p50_ns());
        let name = format!("{}/{}", self.name, id.label());
        RESULTS.lock().unwrap().push(BenchResult {
            name: name.clone(),
            mean_ns,
            p50_ns,
            samples: b.samples_ns.len() as u64,
        });
        let mut line = format!(
            "{:<48} time: [mean {} per iter, p50 {}]",
            name,
            fmt_time(mean_ns),
            fmt_time(p50_ns)
        );
        if let Some(t) = self.throughput {
            let (units, suffix) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            if mean_ns > 0.0 {
                line.push_str(&format!(
                    "  thrpt: [{:.1} {suffix}]",
                    units / (mean_ns / 1e9)
                ));
            }
        }
        println!("{line}");
    }

    /// Ends the group (printing is incremental; nothing left to flush).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, f);
        self
    }
}

/// Declares a group function that runs the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given group functions, then (if the
/// `CRITERION_OUTPUT_JSON` env var names a path) exporting the results
/// registry as JSON. The suite name is the bench target's crate name
/// (for `[[bench]]` targets, cargo sets `CARGO_CRATE_NAME` to the target
/// name, e.g. `hotpath`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::maybe_write_json(env!("CARGO_CRATE_NAME"));
        }
    };
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which the benches here use directly).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7 * 6));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
        let results = results();
        let sum = results
            .iter()
            .find(|r| r.name == "compat/sum/100")
            .expect("sum benchmark recorded");
        assert_eq!(sum.samples, 3);
        assert!(sum.mean_ns >= 0.0 && sum.p50_ns >= 0.0);

        let json = export_json("compat-suite");
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"suite\": \"compat-suite\""));
        assert!(json.contains("\"name\": \"compat/sum/100\""));
        assert!(json.contains("\"p50_ns\""));
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
