//! Offline stand-in for the `criterion` crate.
//!
//! Implements enough of criterion's API for this workspace's benches to
//! compile and produce useful numbers offline: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `BenchmarkId`, `Throughput`, and
//! `Bencher::iter`. Measurement is a simple mean over a fixed number of
//! timed iterations (after one warm-up), printed as
//! `group/function/param  time: [... per iter]  thrpt: [...]`. No
//! statistical analysis, HTML reports, or saved baselines.

use std::fmt;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times one benchmark body.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Calls `body` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One warm-up call, untimed.
        let _ = body();
        let start = Instant::now();
        for _ in 0..self.iters {
            let _ = std::hint::black_box(body());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

fn fmt_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Sets the throughput denominator for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.report(&id, b.mean_ns);
        self
    }

    /// Runs a benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        self.report(&id, b.mean_ns);
        self
    }

    fn report(&self, id: &BenchmarkId, mean_ns: f64) {
        let mut line = format!(
            "{}/{:<40} time: [{} per iter]",
            self.name,
            id.label(),
            fmt_time(mean_ns)
        );
        if let Some(t) = self.throughput {
            let (units, suffix) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            if mean_ns > 0.0 {
                line.push_str(&format!(
                    "  thrpt: [{:.1} {suffix}]",
                    units / (mean_ns / 1e9)
                ));
            }
        }
        println!("{line}");
    }

    /// Ends the group (printing is incremental; nothing left to flush).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, f);
        self
    }
}

/// Declares a group function that runs the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which the benches here use directly).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7 * 6));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
