//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand` it actually uses: a
//! seedable deterministic generator (`rngs::StdRng`), the `Rng` extension
//! methods `random`, `random_range` and `random_bool`, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same construction the real `rand` documents for
//! `seed_from_u64` — so streams are high-quality and reproducible, though
//! not bit-identical to upstream `rand` (all experiment tables in this repo
//! are regenerated from seeds, never compared bit-for-bit against old runs).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG (the `StandardUniform` subset).
pub trait FromRng {
    /// Draws one uniform value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Use the high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges samplable uniformly (argument type of [`Rng::random_range`]).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, span)` without modulo bias (widening multiply).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait (`rand 0.9` method names).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64. Stand-in for rand's `StdRng`
    /// (which makes no stream stability guarantee anyway).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Small fast generator; here the same engine as [`StdRng`].
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.25;
            hi |= x > 0.75;
        }
        assert!(lo && hi);
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0usize..5)] = true;
            let v = rng.random_range(10u32..=12);
            assert!((10..=12).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn bools_are_mixed() {
        let mut rng = StdRng::seed_from_u64(4);
        let trues = (0..1000).filter(|_| rng.random::<bool>()).count();
        assert!((300..700).contains(&trues), "{trues}");
    }
}
