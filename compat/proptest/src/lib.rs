//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, range/tuple/`Just`/`any` strategies,
//! `prop::collection::vec`, `prop::array::uniform2`, [`prop_oneof!`], and
//! the `prop_assert*` macros. Inputs are generated from a deterministic
//! per-test RNG (seeded from the test name), so failures are reproducible
//! by re-running the test. No shrinking: a failing case panics with the
//! standard assertion message, which for these tests already prints the
//! offending values.

use std::ops::{Range, RangeInclusive};

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator driving input generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so every test owns a stable,
    /// distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter applying a function to every generated value
/// ([`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `Strategy` is object-safe; boxed strategies are strategies too.
impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-domain uniform strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// Strategy over the full domain of `T` (proptest's `any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, usize, i32, i64);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(hi - lo + 1)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Picks uniformly among boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<V> {
    alternatives: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union { alternatives }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[i].generate(rng)
    }
}

/// Strategy modules mirroring proptest's `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Acceptable size arguments for [`vec`]: a fixed size or a range.
        pub trait IntoSize {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSize for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSize for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                Strategy::generate(self, rng)
            }
        }

        impl IntoSize for RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                Strategy::generate(self, rng)
            }
        }

        /// Strategy producing `Vec`s of inputs from `element`.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        /// `prop::collection::vec(element, len_or_range)`.
        pub fn vec<S: Strategy, L: IntoSize>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        impl<S: Strategy, L: IntoSize> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy producing `Option`s of inputs from `element`.
        pub struct OptionStrategy<S>(S);

        /// `prop::option::of(element)`: `None` a quarter of the time,
        /// `Some` of the element strategy otherwise.
        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy(element)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() >> 62 == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use super::super::{Strategy, TestRng};

        macro_rules! uniform_array {
            ($($fn_name:ident, $struct_name:ident, $n:expr;)*) => {$(
                /// Strategy producing `[T; N]` from one element strategy.
                pub struct $struct_name<S>(S);

                /// All `N` elements drawn from `element`.
                pub fn $fn_name<S: Strategy>(element: S) -> $struct_name<S> {
                    $struct_name(element)
                }

                impl<S: Strategy> Strategy for $struct_name<S> {
                    type Value = [S::Value; $n];
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        std::array::from_fn(|_| self.0.generate(rng))
                    }
                }
            )*};
        }

        uniform_array! {
            uniform2, Uniform2, 2;
            uniform3, Uniform3, 3;
            uniform4, Uniform4, 4;
        }
    }
}

/// The canonical glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert within a property (panics with the values on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly picks one of several alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($alt) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Defines property tests: each `fn` runs `cases` times with inputs drawn
/// from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                let ($($pat,)+) = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0.5f64..2.5, z in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn tuples_and_vecs(
            (a, b) in (0u32..5, 10u32..20),
            v in prop::collection::vec(0.0f64..1.0, 0..8),
            arr in prop::array::uniform2(-1.0f64..1.0),
        ) {
            prop_assert!(a < 5 && (10..20).contains(&b));
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
            prop_assert!(arr.iter().all(|&x| (-1.0..1.0).contains(&x)));
        }

        #[test]
        fn oneof_and_just(pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1u8..=3).contains(&pick));
        }
    }

    #[test]
    fn any_u64_varies() {
        let mut rng = crate::TestRng::deterministic("any_u64_varies");
        let s = crate::any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }
}
