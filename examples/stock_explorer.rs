//! Interactive-style analyst queries over the stock.3d dataset: range scans
//! and partial-match lookups against a declustered grid file.
//!
//! Shows the two query families grid files serve:
//! * **range queries** — "all quotes between $20 and $40 during days
//!   100–200" (drives the declustering comparison),
//! * **partial-match queries** — "the full history of stock 137" (the query
//!   class DM was designed for).
//!
//! ```sh
//! cargo run --release --example stock_explorer
//! ```

use pargrid::prelude::*;

fn main() {
    let dataset = pargrid::datagen::stock3d(42);
    let grid = dataset.build_grid_file();
    let stats = grid.stats();
    println!(
        "stock.3d: {} quotes, grid {:?}, {} buckets",
        stats.n_records, stats.cells_per_dim, stats.n_buckets
    );

    // --- Partial-match: one stock's full history -------------------------
    let stock_id = 137.5; // center of stock 137's id slot
    let (buckets, records) = grid.partial_match(&[Some(stock_id), None, None]);
    println!(
        "\nhistory of stock 137: {} quotes from {} buckets",
        records.len(),
        buckets.len()
    );
    if let (Some(first), Some(last)) = (records.first(), records.last()) {
        println!(
            "  first quote ${:.2} (day {}), last ${:.2} (day {})",
            first.point.get(1),
            first.point.get(2) as u64,
            last.point.get(1),
            last.point.get(2) as u64
        );
    }

    // --- Range scan: mid-priced quotes in a date window -------------------
    let window = Rect::new(
        Point::new3(0.0, 20.0, 100.0),
        Point::new3(383.0, 40.0, 200.0),
    );
    let (buckets, records) = grid.range_query(&window);
    println!(
        "\n$20-$40 quotes in days 100-200: {} quotes from {} buckets",
        records.len(),
        buckets.len()
    );

    // --- How much does declustering help this workload? ------------------
    let input = DeclusterInput::from_grid_file(&grid);
    let workload = QueryWorkload::square(&dataset.domain, 0.01, 300, 9);
    println!("\nresponse time for r=0.01 range queries (16 disks):");
    for method in DeclusterMethod::paper_five() {
        let assignment = method.assign(&input, 16, 1);
        let result = evaluate(&grid, &assignment, &workload);
        println!(
            "  {:<8} {:>6.2}  (optimal {:.2})",
            method.label(),
            result.mean_response,
            result.mean_optimal
        );
    }
}
