//! Gallery of the space-filling curves behind HCAM and its ablations:
//! walks each curve over a 16x16 grid and prints the visit order, plus the
//! round-robin disk pattern each induces.
//!
//! ```sh
//! cargo run --example curve_gallery
//! ```

use pargrid::geom::{GrayCurve, HilbertCurve, ScanCurve, SpaceFillingCurve, ZOrderCurve};

const BITS: u32 = 4; // 16x16
const DISKS: u128 = 4;

fn main() {
    let curves: Vec<(&str, Box<dyn SpaceFillingCurve>)> = vec![
        ("Hilbert (HCAM)", Box::new(HilbertCurve::new(2, BITS))),
        ("Z-order", Box::new(ZOrderCurve::new(2, BITS))),
        ("Gray-code", Box::new(GrayCurve::new(2, BITS))),
        ("snake scan", Box::new(ScanCurve::snake(2, BITS))),
    ];
    for (name, curve) in &curves {
        println!("\n=== {name} ===");
        print_disk_pattern(curve.as_ref());
        println!(
            "mean step length: {:.3} (1.0 = always grid-adjacent)",
            mean_step(curve.as_ref())
        );
    }
    println!("\nEach cell shows (curve index mod {DISKS}) — the disk the cell lands on.");
    println!("Good declustering looks \"speckled\": neighbors rarely share a digit.");
}

/// Prints each cell's round-robin disk as one hex digit.
fn print_disk_pattern(curve: &dyn SpaceFillingCurve) {
    let side = 1u32 << curve.bits();
    for y in (0..side).rev() {
        let mut line = String::with_capacity(side as usize);
        for x in 0..side {
            let d = curve.index_of(&[x, y]) % DISKS;
            line.push(char::from_digit(d as u32, 16).expect("single hex digit"));
        }
        println!("  {line}");
    }
}

/// Average Euclidean distance between consecutively visited cells.
fn mean_step(curve: &dyn SpaceFillingCurve) -> f64 {
    let mut prev = vec![0u32; curve.dim()];
    let mut cur = vec![0u32; curve.dim()];
    curve.coords_of(0, &mut prev);
    let mut total = 0.0;
    let n = curve.len();
    for i in 1..n {
        curve.coords_of(i, &mut cur);
        let d2: f64 = prev
            .iter()
            .zip(&cur)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum();
        total += d2.sqrt();
        std::mem::swap(&mut prev, &mut cur);
    }
    total / (n - 1) as f64
}
