//! Partial-match queries and the analytic side of the paper: where disk
//! modulo is provably optimal — and where it stops scaling.
//!
//! ```sh
//! cargo run --release --example partial_match
//! ```

use pargrid::decluster::analysis::{dm_response_2d, dm_strictly_optimal_2d, optimal_response_2d};
use pargrid::prelude::*;

fn main() {
    // --- Partial-match queries on a grid file ----------------------------
    // DM was designed for these: with one attribute unspecified, its
    // response is provably optimal on Cartesian product files.
    let dataset = pargrid::datagen::uniform2d(42);
    let grid = dataset.build_grid_file();
    let input = DeclusterInput::from_grid_file(&grid);
    let disks = 8;
    let dm = DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance)
        .assign(&input, disks, 1);

    let keys = QueryWorkload::partial_match(&dataset.domain, 200, 3);
    let mut total_resp = 0u64;
    let mut total_opt = 0u64;
    for q in &keys {
        let buckets = grid.partial_match_buckets(q);
        let mut per_disk = vec![0u64; disks];
        for &b in &buckets {
            per_disk[dm.disk_of_id(b) as usize] += 1;
        }
        total_resp += per_disk.iter().max().copied().unwrap_or(0);
        total_opt += (buckets.len() as u64).div_ceil(disks as u64);
    }
    println!(
        "partial-match queries (uniform.2d, {disks} disks, DM/D): mean response {:.2}, integral optimum {:.2}",
        total_resp as f64 / keys.len() as f64,
        total_opt as f64 / keys.len() as f64
    );

    // --- Theorem 1 in action ---------------------------------------------
    // For a fixed l x l range query, DM's response saturates at l once the
    // disk farm outgrows the query.
    let l = 8;
    println!("\nDM response for an {l}x{l}-cell range query (Theorem 1):");
    println!(
        "{:>7} {:>10} {:>9} {:>17}",
        "disks", "response", "optimal", "strictly optimal"
    );
    for m in [2u64, 4, 8, 12, 16, 24, 32, 64] {
        println!(
            "{:>7} {:>10} {:>9} {:>17}",
            m,
            dm_response_2d(l, m),
            optimal_response_2d(l, m),
            dm_strictly_optimal_2d(l, m)
        );
    }
    println!("\n(adding disks past m = {l} buys nothing: the response is pinned at {l})");
}
