//! The paper's motivating scenario: animating snapshots of a time-dependent
//! scientific simulation from a parallel disk farm.
//!
//! A 4-D (time, x, y, z) particle dataset is declustered over worker
//! processes with minimax; an animation then sweeps every time step with
//! range queries that jointly cover the volume — exactly the SP-2 experiment
//! behind Table 4.
//!
//! ```sh
//! cargo run --release --example snapshot_animation
//! ```

use pargrid::prelude::*;
use std::sync::Arc;

fn main() {
    // 24 snapshots, 150k particles — a laptop-sized stand-in for the
    // paper's 59-snapshot, 3M-particle DSMC dataset.
    let snapshots = 24;
    let dataset = pargrid::datagen::dsmc4d(42, snapshots, 150_000);
    let grid = Arc::new(dataset.build_grid_file());
    let stats = grid.stats();
    println!(
        "spatio-temporal grid file: {} records, {} subspaces -> {} buckets",
        stats.n_records, stats.n_cells, stats.n_buckets
    );

    let input = DeclusterInput::from_grid_file(&grid);

    println!(
        "\n{:>10} {:>16} {:>12} {:>12} {:>10}",
        "workers", "blocks fetched", "comm (s)", "elapsed (s)", "cache hit"
    );
    for workers in [2usize, 4, 8, 16] {
        let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, workers, 1);
        let engine =
            ParallelGridFile::build(Arc::clone(&grid), &assignment, EngineConfig::default());
        let workload = pargrid::sim::QueryWorkload::animation(&dataset.domain, 0.1, snapshots);
        let run = engine.run_workload(&workload);
        println!(
            "{:>10} {:>16} {:>12.2} {:>12.2} {:>9.0}%",
            workers,
            run.response_blocks,
            run.comm_seconds(),
            run.elapsed_seconds(),
            100.0 * run.cache_hits as f64 / run.total_blocks.max(1) as f64
        );
    }
    println!("\n(blocks fetched ~halve per worker doubling; caching kicks in because");
    println!(" consecutive snapshots share temporal grid partitions — §3.5 of the paper)");
}
