//! A long-running simulation appending snapshots — the paper's motivating
//! scenario (§1) — served continuously from a parallel grid file.
//!
//! Every epoch appends new snapshots to the grid file; the declustering is
//! *extended incrementally* (no already-placed bucket moves, so no data
//! migration), the engine is rebuilt, and an animation sweep of the newest
//! snapshots measures the response. Compare the quality column against the
//! `fresh minimax` column that a full re-declustering (plus full migration)
//! would buy.
//!
//! ```sh
//! cargo run --release --example growing_simulation
//! ```

use pargrid::decluster::incremental::extend_assignment;
use pargrid::prelude::*;
use pargrid::sim::evaluate;

const WORKERS: usize = 8;
const EPOCHS: usize = 4;
const SNAPSHOTS_PER_EPOCH: usize = 6;
const PARTICLES_PER_EPOCH: usize = 40_000;

fn main() {
    // Generate the full run up front; epochs reveal it incrementally
    // (a real deployment would receive the snapshots over time).
    let total_snapshots = EPOCHS * SNAPSHOTS_PER_EPOCH;
    let dataset = pargrid::datagen::dsmc4d(42, total_snapshots, EPOCHS * PARTICLES_PER_EPOCH);

    let mut grid = GridFile::new(dataset.grid_config());
    let mut placed: Option<(DeclusterInput, Assignment)> = None;

    println!(
        "{:>6} {:>9} {:>9} {:>12} {:>12} {:>12}",
        "epoch", "records", "buckets", "incr resp", "fresh resp", "migration"
    );
    for epoch in 0..EPOCHS {
        // Append this epoch's snapshots.
        let t_lo = (epoch * SNAPSHOTS_PER_EPOCH) as f64;
        let t_hi = ((epoch + 1) * SNAPSHOTS_PER_EPOCH) as f64;
        for rec in dataset
            .records()
            .filter(|r| r.point.get(0) >= t_lo && r.point.get(0) < t_hi)
        {
            grid.insert(rec);
        }
        let input = DeclusterInput::from_grid_file(&grid);

        // Extend (or create) the assignment without moving old buckets.
        let assignment = match &placed {
            None => DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, WORKERS, 1),
            Some((old_input, old_assignment)) => {
                extend_assignment(old_input, old_assignment, &input, EdgeWeight::Proximity)
            }
        };
        let fresh = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, WORKERS, 1);
        let migration = match &placed {
            None => 0,
            Some((old_input, old_assignment)) => old_input
                .buckets
                .iter()
                .enumerate()
                .filter(|(pos, b)| old_assignment.disk_at(*pos) != fresh.disk_of_id(b.id))
                .count(),
        };

        // Animate the newest epoch.
        let window = Rect::new(
            {
                let mut lo = *dataset.domain.lo();
                lo.coords_mut()[0] = t_lo;
                lo
            },
            {
                let mut hi = *dataset.domain.hi();
                hi.coords_mut()[0] = t_hi;
                hi
            },
        );
        let workload = QueryWorkload::animation(&window, 0.1, SNAPSHOTS_PER_EPOCH);
        let incr_resp = evaluate(&grid, &assignment, &workload).mean_response;
        let fresh_resp = evaluate(&grid, &fresh, &workload).mean_response;

        println!(
            "{:>6} {:>9} {:>9} {:>12.2} {:>12.2} {:>9} mv",
            epoch + 1,
            grid.len(),
            input.n_buckets(),
            incr_resp,
            fresh_resp,
            migration
        );
        placed = Some((input, assignment));
    }
    println!("\n(incremental placement keeps pace with fresh minimax while moving zero");
    println!(" old buckets; 'migration' counts the moves a fresh re-declustering forces)");
}
