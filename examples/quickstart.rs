//! Quickstart: load a dataset, decluster it, and measure range-query
//! response times for every algorithm the paper studies.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pargrid::prelude::*;

fn main() {
    // A 10,000-point dataset with a central hot spot (the paper's hot.2d),
    // stored in a grid file with 4 KB buckets.
    let dataset = pargrid::datagen::hot2d(42);
    let grid = dataset.build_grid_file();
    let stats = grid.stats();
    println!(
        "grid file: {} records in {} buckets over a {:?} grid ({} merged buckets)",
        stats.n_records, stats.n_buckets, stats.cells_per_dim, stats.n_merged_buckets
    );

    // Decluster over 16 disks with each algorithm and compare the paper's
    // response-time metric on 500 random square queries covering 5% of the
    // domain each.
    let input = DeclusterInput::from_grid_file(&grid);
    let workload = QueryWorkload::square(&dataset.domain, 0.05, 500, 7);
    let disks = 16;

    println!(
        "\n{:<10} {:>10} {:>10} {:>9}",
        "method", "response", "optimal", "balance"
    );
    for method in DeclusterMethod::paper_five() {
        let assignment = method.assign(&input, disks, 1);
        let result = evaluate(&grid, &assignment, &workload);
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>9.2}",
            method.label(),
            result.mean_response,
            result.mean_optimal,
            result.balance_degree
        );
    }

    // The minimax assignment is perfectly balanced by construction.
    let minimax = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, disks, 1);
    assert!(minimax.is_perfectly_balanced());
    println!(
        "\nminimax bucket counts per disk: {:?}",
        minimax.bucket_counts()
    );
}
