//! End-to-end checks of the paper's headline claims, at reduced scale.
//!
//! Each test corresponds to a conclusion the paper draws (§2.2.1, §3.3,
//! §4); the full-scale numbers live in `EXPERIMENTS.md` and are regenerated
//! by `cargo run --release -p pargrid-bench --bin repro -- all`.

use pargrid::prelude::*;
use pargrid::sim::evaluate;

fn mean_response(
    grid: &GridFile,
    input: &DeclusterInput,
    method: DeclusterMethod,
    m: usize,
    workload: &QueryWorkload,
) -> f64 {
    let a = method.assign(input, m, 42);
    evaluate(grid, &a, workload).mean_response
}

fn dm() -> DeclusterMethod {
    DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance)
}
fn fx() -> DeclusterMethod {
    DeclusterMethod::Index(IndexScheme::FieldwiseXor, ConflictPolicy::DataBalance)
}
fn hcam() -> DeclusterMethod {
    DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance)
}
fn minimax() -> DeclusterMethod {
    DeclusterMethod::Minimax(EdgeWeight::Proximity)
}
fn ssp() -> DeclusterMethod {
    DeclusterMethod::Ssp(EdgeWeight::Proximity)
}

/// §2.2.1: "for the uniform dataset, as the number of disks grows, the
/// response time of DM and FX decreases only up to a threshold."
#[test]
fn dm_and_fx_saturate_on_uniform_data() {
    let ds = pargrid::datagen::uniform2d(42);
    let grid = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&grid);
    let w = QueryWorkload::square(&ds.domain, 0.05, 300, 7);
    for method in [dm(), fx()] {
        let r16 = mean_response(&grid, &input, method, 16, &w);
        let r32 = mean_response(&grid, &input, method, 32, &w);
        // Doubling 16 -> 32 disks buys almost nothing (< 10%).
        assert!(
            r32 > 0.9 * r16,
            "{} unexpectedly scaled: {r16} -> {r32}",
            method.label()
        );
        // And sits far above optimal.
        let a = method.assign(&input, 32, 42);
        let s = evaluate(&grid, &a, &w);
        assert!(
            s.mean_response > 2.0 * s.mean_optimal,
            "{}: {} vs optimal {}",
            method.label(),
            s.mean_response,
            s.mean_optimal
        );
    }
}

/// §2.2.1: "as the number of disks grows, HCAM outperforms both DM and FX."
#[test]
fn hcam_beats_dm_fx_at_scale() {
    let ds = pargrid::datagen::uniform2d(42);
    let grid = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&grid);
    let w = QueryWorkload::square(&ds.domain, 0.05, 300, 7);
    let h = mean_response(&grid, &input, hcam(), 32, &w);
    assert!(h < 0.8 * mean_response(&grid, &input, dm(), 32, &w));
    assert!(h < 0.8 * mean_response(&grid, &input, fx(), 32, &w));
}

/// §2.2.1: "for a small number of disks, DM with data balance is the best."
#[test]
fn dm_is_competitive_at_small_disk_counts() {
    let ds = pargrid::datagen::uniform2d(42);
    let grid = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&grid);
    let w = QueryWorkload::square(&ds.domain, 0.05, 300, 7);
    let d = mean_response(&grid, &input, dm(), 4, &w);
    let h = mean_response(&grid, &input, hcam(), 4, &w);
    assert!(d <= h * 1.02, "DM {d} should beat HCAM {h} at 4 disks");
}

/// §3.3: "minimax consistently achieves a smaller response time than all the
/// other algorithms (with a few exceptions when the number of disks is
/// small)."
#[test]
fn minimax_wins_at_scale_on_skewed_data() {
    let ds = pargrid::datagen::hot2d(42);
    let grid = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&grid);
    let w = QueryWorkload::square(&ds.domain, 0.01, 300, 7);
    let mm = mean_response(&grid, &input, minimax(), 24, &w);
    for method in [dm(), fx(), hcam(), ssp()] {
        let r = mean_response(&grid, &input, method, 24, &w);
        assert!(
            mm <= r * 1.02,
            "MiniMax {mm} should beat {} {r} at 24 disks",
            method.label()
        );
    }
}

/// §3.1 guarantee: minimax assigns at most ceil(N/M) buckets per disk.
#[test]
fn minimax_perfect_balance_guarantee() {
    let ds = pargrid::datagen::correl2d(42);
    let grid = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&grid);
    for m in [3usize, 7, 16, 31] {
        let a = minimax().assign(&input, m, 9);
        assert!(a.is_perfectly_balanced(), "m={m}: {:?}", a.bucket_counts());
    }
}

/// Tables 2-3: minimax rarely maps closest pairs to the same disk, and
/// always far less often than DM/FX.
#[test]
fn minimax_separates_closest_pairs() {
    let ds = pargrid::datagen::dsmc3d_sized(42, 20_000);
    let grid = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&grid);
    let pairs = pargrid::sim::closest_pairs(&input);
    let count = |method: DeclusterMethod, m: usize| {
        let a = method.assign(&input, m, 42);
        pargrid::sim::count_pairs_on_same_disk(&pairs, &a)
    };
    let mm = count(minimax(), 16);
    let d = count(dm(), 16);
    let f = count(fx(), 16);
    assert!(
        mm <= pairs.len() / 50,
        "minimax collides {mm} of {}",
        pairs.len()
    );
    assert!(mm * 5 < d.max(1), "minimax {mm} vs DM {d}");
    assert!(mm * 5 < f.max(1), "minimax {mm} vs FX {f}");
}

/// Figure 3 / §2.2.1: data balance is the best conflict-resolution
/// heuristic, and HCAM is much less sensitive to the choice than FX.
#[test]
fn data_balance_wins_conflict_resolution() {
    let ds = pargrid::datagen::hot2d(42);
    let grid = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&grid);
    let w = QueryWorkload::square(&ds.domain, 0.05, 300, 7);
    let resp = |scheme, policy, m| {
        mean_response(&grid, &input, DeclusterMethod::Index(scheme, policy), m, &w)
    };
    // Data balance at least matches random for both schemes at 16 disks.
    for scheme in [IndexScheme::FieldwiseXor, IndexScheme::Hilbert] {
        let db = resp(scheme, ConflictPolicy::DataBalance, 16);
        let rnd = resp(scheme, ConflictPolicy::Random, 16);
        assert!(
            db <= rnd * 1.05,
            "{scheme:?}: data balance {db} vs random {rnd}"
        );
    }
    // FX's spread across policies exceeds HCAM's — the paper's "HCAM is
    // relatively insensitive to the heuristic" observation. A single disk
    // count is noisy, so aggregate the spread over the scalable regime.
    let spread = |scheme| {
        [12usize, 16, 20, 24, 28, 32]
            .iter()
            .map(|&m| {
                let values: Vec<f64> = [
                    ConflictPolicy::Random,
                    ConflictPolicy::MostFrequent,
                    ConflictPolicy::DataBalance,
                    ConflictPolicy::AreaBalance,
                ]
                .iter()
                .map(|&p| resp(scheme, p, m))
                .collect();
                let max = values.iter().cloned().fold(f64::MIN, f64::max);
                let min = values.iter().cloned().fold(f64::MAX, f64::min);
                max - min
            })
            .sum::<f64>()
    };
    assert!(
        spread(IndexScheme::FieldwiseXor) > spread(IndexScheme::Hilbert),
        "FX spread {} should exceed HCAM spread {}",
        spread(IndexScheme::FieldwiseXor),
        spread(IndexScheme::Hilbert)
    );
}

/// Table 1 shape: HCAM achieves the best data balance degree, FX the worst.
#[test]
fn data_balance_degree_ordering() {
    let ds = pargrid::datagen::hot2d(42);
    let grid = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&grid);
    let mut h_total = 0.0;
    let mut f_total = 0.0;
    for m in [16usize, 20, 24, 28, 32] {
        h_total += hcam().assign(&input, m, 42).data_balance_degree();
        f_total += fx().assign(&input, m, 42).data_balance_degree();
    }
    assert!(
        h_total < f_total,
        "HCAM balance sum {h_total} should beat FX {f_total}"
    );
}

/// Figure 7 shape: minimax's advantage over HCAM holds across query ratios.
#[test]
fn minimax_beats_hcam_across_query_sizes() {
    let ds = pargrid::datagen::stock3d_sized(42, 120, 200);
    let grid = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&grid);
    for r in [0.01, 0.05, 0.1] {
        let w = QueryWorkload::square(&ds.domain, r, 200, 7);
        let mm = mean_response(&grid, &input, minimax(), 24, &w);
        let h = mean_response(&grid, &input, hcam(), 24, &w);
        assert!(mm <= h * 1.05, "r={r}: minimax {mm} vs HCAM {h}");
    }
}
