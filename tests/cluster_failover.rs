//! Cluster failover with **real operating-system processes**: three
//! `pargrid worker` processes and two replicated `pargrid serve`
//! coordinators, spawned as children of this test. The leading
//! coordinator is killed with SIGKILL — no destructors, no goodbye
//! frames — and the survivor must take over and keep serving every
//! acknowledged write. The in-process e2e tests cover the same protocol;
//! this one covers the actual deployment shape (process isolation, real
//! pipes, real kill).

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pargrid::cluster::ClusterClient;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pargrid"))
}

fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let a = l.local_addr().expect("local addr");
    drop(l);
    format!("127.0.0.1:{}", a.port())
}

/// A child process whose stdout/stderr are streamed into a string buffer;
/// killed on drop so a failing test leaves no orphans.
struct Proc {
    child: Child,
    log: Arc<Mutex<String>>,
}

impl Proc {
    fn spawn(mut cmd: Command) -> Proc {
        cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("spawn child process");
        let log = Arc::new(Mutex::new(String::new()));
        for stream in [
            child
                .stdout
                .take()
                .map(|s| Box::new(s) as Box<dyn std::io::Read + Send>),
            child
                .stderr
                .take()
                .map(|s| Box::new(s) as Box<dyn std::io::Read + Send>),
        ]
        .into_iter()
        .flatten()
        {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let reader = BufReader::new(stream);
                for line in reader.lines().map_while(Result::ok) {
                    let mut log = log.lock().unwrap();
                    log.push_str(&line);
                    log.push('\n');
                }
            });
        }
        Proc { child, log }
    }

    fn log(&self) -> String {
        self.log.lock().unwrap().clone()
    }

    /// SIGKILL — the hard way, like a crashed machine.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn wait_for<F: FnMut() -> bool>(what: &str, timeout: Duration, mut f: F) {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn leader_sigkill_fails_over_across_processes() {
    let dir = std::env::temp_dir().join("pargrid_cluster_failover");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let pgf = dir.join("data.pgf");

    let out = bin()
        .args(["gen", "uniform2d", "--seed", "7", "--out"])
        .arg(&pgf)
        .output()
        .expect("gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Three worker processes.
    let worker_addrs: Vec<String> = (0..3).map(|_| free_addr()).collect();
    let _workers: Vec<Proc> = worker_addrs
        .iter()
        .map(|a| {
            let mut cmd = bin();
            cmd.args(["worker", "--listen", a, "--disks", "2"]);
            Proc::spawn(cmd)
        })
        .collect();

    // Two replicated coordinators, each naming the other in --peers.
    let client_addrs: Vec<String> = (0..2).map(|_| free_addr()).collect();
    let peer_addrs: Vec<String> = (0..2).map(|_| free_addr()).collect();
    let workers_flag = worker_addrs.join(",");
    let mut coords: Vec<Proc> = (0..2usize)
        .map(|i| {
            let o = 1 - i;
            let mut cmd = bin();
            cmd.arg("serve")
                .arg(&pgf)
                .args(["--method", "minimax", "--disks", "6"])
                .args(["--workers", &workers_flag])
                .args(["--addr", &client_addrs[i]])
                .args(["--node-id", &i.to_string()])
                .args(["--peer-listen", &peer_addrs[i]])
                .args([
                    "--peers",
                    &format!("{o}={}={}", peer_addrs[o], client_addrs[o]),
                ]);
            Proc::spawn(cmd)
        })
        .collect();

    // One of the two prints "leading term" once elected.
    wait_for(
        "a leader among the serve processes",
        Duration::from_secs(60),
        || coords.iter().any(|c| c.log().contains("leading term")),
    );
    let leader = coords
        .iter()
        .position(|c| c.log().contains("leading term"))
        .unwrap();
    let survivor = 1 - leader;

    let mut client =
        ClusterClient::new(client_addrs.clone()).with_deadline(Duration::from_secs(60));

    // Write through the leader; an ack means the write is replicated.
    for i in 0..20u64 {
        client
            .insert(5_000_000 + i, &[500.0 + i as f64, 500.0])
            .expect("insert before kill");
    }
    let probe = |client: &mut ClusterClient| -> Vec<u64> {
        let reply = client
            .range_query(&[499.0, 499.0], &[521.0, 501.0])
            .expect("range query");
        assert!(!reply.incomplete, "replies must be complete");
        let mut ids: Vec<u64> = reply.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids
    };
    let before = probe(&mut client);
    assert!(
        (0..20).all(|i| before.contains(&(5_000_000 + i))),
        "all acknowledged inserts visible before the kill: {before:?}"
    );

    // SIGKILL the leading coordinator process.
    let survivor_log_before = coords[survivor].log().len();
    coords[leader].kill();

    wait_for("the survivor to take over", Duration::from_secs(60), || {
        coords[survivor].log()[survivor_log_before..].contains("leading term")
    });

    // Read-your-write across a process death: identical answer.
    let after = probe(&mut client);
    assert_eq!(after, before, "zero divergence across process failover");
}
