//! Integration tests driving the `pargrid` CLI binary end-to-end.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pargrid"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pargrid_cli_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = bin().output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn gen_stats_query_decluster_evaluate_pipeline() {
    let dir = temp_dir("pipeline");
    let pgf = dir.join("u.pgf");

    // gen
    let out = bin()
        .args(["gen", "uniform2d", "--seed", "7", "--out"])
        .arg(&pgf)
        .output()
        .expect("gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(pgf.exists());

    // stats
    let out = bin().arg("stats").arg(&pgf).output().expect("stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("records        10000"), "{text}");
    assert!(text.contains("dimensionality 2"));

    // query
    let out = bin()
        .arg("query")
        .arg(&pgf)
        .args(["--range", "0..1000,0..1000", "--count-only"])
        .output()
        .expect("query");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // A quarter of the domain holds roughly a quarter of 10k uniform points.
    let records: u64 = text
        .lines()
        .find(|l| l.starts_with("records:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("records line");
    assert!((2000..3000).contains(&records), "{records}");

    // decluster with CSV output
    let assign = dir.join("assign.csv");
    let out = bin()
        .arg("decluster")
        .arg(&pgf)
        .args(["--method", "minimax", "--disks", "8", "--out"])
        .arg(&assign)
        .output()
        .expect("decluster");
    assert!(out.status.success());
    let csv = std::fs::read_to_string(&assign).expect("assignment csv");
    assert!(csv.starts_with("bucket_id,disk\n"));
    assert!(csv.lines().count() > 100);

    // evaluate
    let out = bin()
        .arg("evaluate")
        .arg(&pgf)
        .args([
            "--method",
            "hcam",
            "--disks",
            "16",
            "--ratio",
            "0.05",
            "--queries",
            "100",
        ])
        .output()
        .expect("evaluate");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean response"), "{text}");

    // evaluate with concurrent clients: adds engine throughput output
    let out = bin()
        .arg("evaluate")
        .arg(&pgf)
        .args([
            "--method",
            "minimax",
            "--disks",
            "8",
            "--queries",
            "40",
            "--clients",
            "4",
        ])
        .output()
        .expect("evaluate --clients");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean response"), "{text}");
    assert!(text.contains("clients         4"), "{text}");
    assert!(text.contains("queries/s"), "{text}");
    assert!(text.contains("utilization"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evaluate_exports_trace_and_metrics() {
    let dir = temp_dir("obs");
    let pgf = dir.join("u.pgf");
    assert!(bin()
        .args(["gen", "hot2d", "--out"])
        .arg(&pgf)
        .output()
        .expect("gen")
        .status
        .success());

    let trace = dir.join("out.json");
    let prom = dir.join("out.prom");
    let out = bin()
        .arg("evaluate")
        .arg(&pgf)
        .args([
            "--method",
            "minimax",
            "--disks",
            "8",
            "--queries",
            "30",
            "--trace",
        ])
        .arg(&trace)
        .arg("--metrics")
        .arg(&prom)
        .output()
        .expect("evaluate --trace --metrics");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("trace     "), "{text}");
    assert!(text.contains("metrics   "), "{text}");
    assert!(text.contains("tail response"), "{text}");

    // The trace file is real Chrome trace_event JSON.
    let doc = std::fs::read_to_string(&trace).expect("trace file");
    let parsed = pargrid::obs::json::parse(&doc).expect("trace parses as JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // The metrics file passes the Prometheus line-format check.
    let metrics = std::fs::read_to_string(&prom).expect("metrics file");
    pargrid::obs::validate_prometheus(&metrics).expect("valid exposition format");
    assert!(metrics.contains("pargrid_queries_total 30"), "{metrics}");
    assert!(metrics.contains("pargrid_query_us_bucket"), "{metrics}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn csv_roundtrip_build() {
    let dir = temp_dir("csv");
    let csv = dir.join("points.csv");
    let pgf = dir.join("points.pgf");
    let mut content = String::from("# id,x,y\n");
    for i in 0..200 {
        content.push_str(&format!("{i},{},{}\n", (i % 20) as f64, (i / 20) as f64));
    }
    std::fs::write(&csv, content).expect("write csv");

    let out = bin()
        .args(["build", "--csv"])
        .arg(&csv)
        .arg("--out")
        .arg(&pgf)
        .args(["--capacity", "8"])
        .output()
        .expect("build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .arg("pmatch")
        .arg(&pgf)
        .args(["--keys", "5,*"])
        .output()
        .expect("pmatch");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("records:      10"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_csv_reports_line() {
    let dir = temp_dir("badcsv");
    let csv = dir.join("bad.csv");
    std::fs::write(&csv, "0,1.0,2.0\n1,oops,3.0\n").expect("write");
    let out = bin()
        .args(["build", "--csv"])
        .arg(&csv)
        .arg("--out")
        .arg(dir.join("x.pgf"))
        .output()
        .expect("build");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains(":2:"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inverted_and_nonfinite_ranges_error_cleanly() {
    // Regression: an inverted --range must produce a CLI error, not a panic.
    let dir = temp_dir("range");
    let pgf = dir.join("u.pgf");
    assert!(bin()
        .args(["gen", "uniform2d", "--out"])
        .arg(&pgf)
        .output()
        .expect("gen")
        .status
        .success());
    for bad in ["100..50,0..10", "nan..10,0..10", "0..inf,0..10"] {
        let out = bin()
            .arg("query")
            .arg(&pgf)
            .args(["--range", bad])
            .output()
            .expect("query");
        assert!(!out.status.success(), "{bad} accepted");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("interval"), "{bad}: {err}");
        assert!(!err.contains("panicked"), "{bad} panicked");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_grid_file_is_rejected() {
    let dir = temp_dir("corrupt");
    let pgf = dir.join("bad.pgf");
    std::fs::write(&pgf, b"not a grid file at all").expect("write");
    let out = bin().arg("stats").arg(&pgf).output().expect("stats");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("corrupt"));
    let _ = std::fs::remove_dir_all(&dir);
}
