//! Cross-crate integration: the whole pipeline from dataset generation to
//! parallel execution, checking consistency between layers.

use pargrid::prelude::*;
use pargrid::sim::{evaluate, metrics::query_response};
use std::sync::Arc;

/// The simulator's per-query response (counted through the assignment) and
/// the parallel engine's `response_blocks` must agree whenever every bucket
/// fits one block.
#[test]
fn simulator_and_engine_agree_on_response() {
    let ds = pargrid::datagen::hot2d(1);
    let grid = Arc::new(ds.build_grid_file());
    assert_eq!(
        grid.stats().oversize_buckets,
        0,
        "precondition: one block per bucket"
    );
    let input = DeclusterInput::from_grid_file(&grid);
    let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 8, 1);
    let engine = ParallelGridFile::build(Arc::clone(&grid), &assignment, EngineConfig::default());

    let workload = QueryWorkload::square(&ds.domain, 0.05, 50, 3);
    for q in &workload.queries {
        let (sim_resp, sim_total) = query_response(&grid, &assignment, q);
        let out = engine.query(q);
        assert_eq!(out.response_blocks, sim_resp, "query {q:?}");
        assert_eq!(out.total_blocks, sim_total, "query {q:?}");
    }
}

/// The engine returns exactly the records a sequential scan finds, for
/// every dataset family.
#[test]
fn engine_queries_match_sequential_ground_truth() {
    let datasets = [
        pargrid::datagen::uniform2d(5),
        pargrid::datagen::dsmc3d_sized(5, 8_000),
        pargrid::datagen::stock3d_sized(5, 60, 120),
    ];
    for ds in datasets {
        let grid = Arc::new(ds.build_grid_file());
        let input = DeclusterInput::from_grid_file(&grid);
        let assignment = DeclusterMethod::Ssp(EdgeWeight::Proximity).assign(&input, 6, 2);
        let engine =
            ParallelGridFile::build(Arc::clone(&grid), &assignment, EngineConfig::default());
        let workload = QueryWorkload::square(&ds.domain, 0.05, 20, 11);
        for q in &workload.queries {
            let out = engine.query(q);
            let mut expected: Vec<u64> = ds
                .points
                .iter()
                .enumerate()
                .filter(|(_, p)| q.contains_closed(p))
                .map(|(i, _)| i as u64)
                .collect();
            expected.sort_unstable();
            let got: Vec<u64> = out.records.iter().map(|r| r.id).collect();
            assert_eq!(got, expected, "{} query {q:?}", ds.name);
        }
    }
}

/// Every method produces a complete, in-range, deterministic assignment on
/// every dataset family.
#[test]
fn all_methods_on_all_dataset_families() {
    let datasets = [
        pargrid::datagen::uniform2d(9),
        pargrid::datagen::correl2d(9),
        pargrid::datagen::dsmc3d_sized(9, 6_000),
    ];
    let methods = [
        DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::Random),
        DeclusterMethod::Index(IndexScheme::FieldwiseXor, ConflictPolicy::MostFrequent),
        DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance),
        DeclusterMethod::Index(IndexScheme::ZOrder, ConflictPolicy::AreaBalance),
        DeclusterMethod::Index(IndexScheme::GrayCode, ConflictPolicy::DataBalance),
        DeclusterMethod::Index(IndexScheme::Scan, ConflictPolicy::DataBalance),
        DeclusterMethod::Minimax(EdgeWeight::Proximity),
        DeclusterMethod::Minimax(EdgeWeight::EuclideanCenter),
        DeclusterMethod::Ssp(EdgeWeight::Proximity),
        DeclusterMethod::Mst(EdgeWeight::Proximity),
        DeclusterMethod::KernighanLin(EdgeWeight::Proximity),
    ];
    for ds in &datasets {
        let grid = ds.build_grid_file();
        let input = DeclusterInput::from_grid_file(&grid);
        for method in &methods {
            let a = method.assign(&input, 12, 77);
            let b = method.assign(&input, 12, 77);
            assert_eq!(a.disks(), b.disks(), "{} not deterministic", method.label());
            assert_eq!(a.disks().len(), input.n_buckets());
            assert!(a.disks().iter().all(|&d| d < 12));
        }
    }
}

/// Response time is monotonically bounded below by the optimal and above by
/// the single-disk response, for every method.
#[test]
fn response_time_bounds() {
    let ds = pargrid::datagen::hot2d(3);
    let grid = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&grid);
    let w = QueryWorkload::square(&ds.domain, 0.05, 100, 5);
    let single = {
        let a = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 1, 1);
        evaluate(&grid, &a, &w).mean_response
    };
    for method in DeclusterMethod::paper_five() {
        let a = method.assign(&input, 16, 1);
        let s = evaluate(&grid, &a, &w);
        assert!(
            s.mean_response >= s.mean_optimal - 1e-9,
            "{} below optimal",
            method.label()
        );
        assert!(
            s.mean_response <= single + 1e-9,
            "{} above single-disk response",
            method.label()
        );
    }
}

/// Grid files survive a full insert-query-delete lifecycle on real dataset
/// distributions (not just uniform proptest inputs).
#[test]
fn grid_file_lifecycle_on_skewed_data() {
    let ds = pargrid::datagen::correl2d(8);
    let mut grid = GridFile::new(ds.grid_config());
    for (i, p) in ds.points.iter().take(3_000).enumerate() {
        grid.insert(Record::new(i as u64, *p));
    }
    grid.check_invariants();
    let (_, records) = grid.range_query(&ds.domain);
    assert_eq!(records.len(), 3_000);
    for (i, p) in ds.points.iter().take(3_000).enumerate() {
        assert!(grid.delete(i as u64, p), "record {i} lost");
    }
    assert!(grid.is_empty());
    grid.check_invariants();
}

/// The facade's doc-quickstart pipeline holds together (mirrors lib.rs),
/// including the concurrent query-service step.
#[test]
fn facade_quickstart_pipeline() {
    let dataset = pargrid::datagen::hot2d(42);
    let grid = dataset.build_grid_file();
    let input = DeclusterInput::from_grid_file(&grid);
    let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 16, 1);
    assert!(assignment.is_perfectly_balanced());
    let workload = QueryWorkload::square(&dataset.domain, 0.05, 100, 7);
    let stats = evaluate(&grid, &assignment, &workload);
    assert!(stats.mean_response >= stats.mean_optimal);

    let engine = ParallelGridFile::build(Arc::new(grid), &assignment, EngineConfig::default());
    let (outcomes, throughput) = engine.run_workload_concurrent(&workload, 8);
    assert_eq!(outcomes.len(), workload.len());
    assert!(throughput.queries_per_second() > 0.0);
    assert_eq!(engine.stats().queries, workload.len() as u64);
}

/// The shared-session API through the facade: client threads run against
/// one engine and the serial/concurrent block totals agree per worker.
#[test]
fn facade_concurrent_service_is_deterministic() {
    let ds = pargrid::datagen::hot2d(6);
    let grid = Arc::new(ds.build_grid_file());
    let input = DeclusterInput::from_grid_file(&grid);
    let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 8, 1);
    let workload = QueryWorkload::square(&ds.domain, 0.05, 60, 13);

    let serial = ParallelGridFile::build(Arc::clone(&grid), &assignment, EngineConfig::default());
    let serial_run: RunStats = serial.run_workload(&workload);

    let concurrent =
        ParallelGridFile::build(Arc::clone(&grid), &assignment, EngineConfig::default());
    let (outcomes, throughput): (Vec<QueryOutcome>, ThroughputStats) =
        concurrent.run_workload_concurrent(&workload, 16);

    assert_eq!(throughput.total_blocks, serial_run.total_blocks);
    assert_eq!(
        outcomes.iter().map(|o| o.records.len() as u64).sum::<u64>(),
        serial_run.records
    );
    let a: EngineStats = serial.stats();
    let b: EngineStats = concurrent.stats();
    for (x, y) in a.workers.iter().zip(&b.workers) {
        assert_eq!(x.blocks_fetched, y.blocks_fetched);
    }
    // The concurrent schedule actually batches.
    assert!(throughput.mean_batch() > 1.0);
}
