//! Property-based tests spanning the whole stack.

use pargrid::prelude::*;
use pargrid::sim::evaluate;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_method() -> impl Strategy<Value = DeclusterMethod> {
    prop_oneof![
        Just(DeclusterMethod::Index(
            IndexScheme::DiskModulo,
            ConflictPolicy::DataBalance
        )),
        Just(DeclusterMethod::Index(
            IndexScheme::FieldwiseXor,
            ConflictPolicy::Random
        )),
        Just(DeclusterMethod::Index(
            IndexScheme::Hilbert,
            ConflictPolicy::DataBalance
        )),
        Just(DeclusterMethod::Minimax(EdgeWeight::Proximity)),
        Just(DeclusterMethod::Ssp(EdgeWeight::Proximity)),
        Just(DeclusterMethod::Mst(EdgeWeight::Proximity)),
        Just(DeclusterMethod::KernighanLin(EdgeWeight::Proximity)),
    ]
}

fn build_grid(points: &[(f64, f64)], capacity: usize) -> GridFile {
    let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 1000.0, 1000.0), capacity);
    GridFile::bulk_load(
        cfg,
        points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Record::new(i as u64, Point::new2(x, y))),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any method on any random grid file yields a complete valid
    /// assignment whose evaluation respects the optimal lower bound.
    #[test]
    fn any_method_any_file_valid_and_bounded(
        points in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 30..250),
        capacity in 3usize..12,
        m in 2usize..20,
        method in arb_method(),
        r in 0.01f64..0.3,
    ) {
        let grid = build_grid(&points, capacity);
        let input = DeclusterInput::from_grid_file(&grid);
        let a = method.assign(&input, m, 5);
        prop_assert_eq!(a.disks().len(), input.n_buckets());
        prop_assert!(a.disks().iter().all(|&d| (d as usize) < m));
        let w = QueryWorkload::square(&grid.config().domain, r, 25, 3);
        let s = evaluate(&grid, &a, &w);
        prop_assert!(s.mean_response + 1e-9 >= s.mean_optimal);
        prop_assert!(s.balance_degree >= 1.0 - 1e-9);
    }

    /// Minimax balance holds for every random instance.
    #[test]
    fn minimax_balance_property(
        points in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 20..200),
        capacity in 3usize..10,
        m in 1usize..24,
        seed in any::<u64>(),
    ) {
        let grid = build_grid(&points, capacity);
        let input = DeclusterInput::from_grid_file(&grid);
        let a = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, m, seed);
        prop_assert!(a.is_perfectly_balanced(), "counts {:?}", a.bucket_counts());
    }

    /// The parallel engine agrees with the grid file on every random query,
    /// under any assignment.
    #[test]
    fn engine_matches_gridfile(
        points in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 30..150),
        m in 2usize..8,
        qx in 0.0f64..800.0,
        qy in 0.0f64..800.0,
        qs in 10.0f64..400.0,
    ) {
        let grid = Arc::new(build_grid(&points, 6));
        let input = DeclusterInput::from_grid_file(&grid);
        let a = DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance)
            .assign(&input, m, 1);
        let engine = ParallelGridFile::build(Arc::clone(&grid), &a, EngineConfig::default());
        let q = Rect::new2(qx, qy, qx + qs, qy + qs);
        let out = engine.query(&q);
        let (_, mut expected) = grid.range_query(&q);
        expected.sort_unstable_by_key(|r| r.id);
        prop_assert_eq!(out.records, expected);
    }
}
