//! `pargrid` — command-line front end for parallel grid files.
//!
//! ```text
//! pargrid gen hot2d --out hot.pgf                # built-in dataset -> grid file
//! pargrid gen stock3d --csv quotes.csv           # ... or CSV export
//! pargrid build --csv points.csv --out my.pgf    # CSV records -> grid file
//! pargrid stats my.pgf                           # structure summary
//! pargrid query my.pgf --range 0..500,0..500     # range query
//! pargrid pmatch my.pgf --keys 137.5,*,*         # partial-match query
//! pargrid decluster my.pgf --method minimax --disks 16 --out assign.csv
//! pargrid evaluate my.pgf --method hcam --disks 16 --ratio 0.05
//! pargrid evaluate my.pgf --method minimax --disks 16 --clients 8   # + engine throughput
//! pargrid evaluate my.pgf --method minimax --disks 8 --trace out.json --metrics out.prom
//! pargrid evaluate my.pgf --method minimax --disks 16 --replicate --chaos 7 --deadline-us 2000000
//! pargrid serve my.pgf --addr 127.0.0.1:7878 --method minimax --disks 16   # TCP server
//! pargrid serve my.pgf --method dm --disks 4 --wal state/      # durable: WAL + checkpoint
//! pargrid query --addr 127.0.0.1:7878 --range 0..500,0..500    # query over the wire
//! pargrid query --addr 127.0.0.1:7878 --keys 137.5,*           # remote partial match
//! pargrid query --addr 127.0.0.1:7878 --insert 9001,137.5,42.0 # insert over the wire
//! pargrid query --addr 127.0.0.1:7878 --delete 9001,137.5,42.0 # ... and delete again
//! pargrid query --addr 127.0.0.1:7878 --stats                  # Prometheus metrics
//! pargrid query --addr 127.0.0.1:7878 --shutdown               # graceful stop
//! pargrid serve my.pgf --method minimax --disks 8 --standby 2  # + standby workers
//! pargrid rebalance --addr 127.0.0.1:7878 --add-workers 2      # grow the cluster live
//! pargrid rebalance --addr 127.0.0.1:7878 --remove-worker 0    # drain + shrink
//! pargrid rebalance --addr 127.0.0.1:7878 --add-workers 1 --dry-run   # preview the plan
//! pargrid worker --listen 127.0.0.1:7901 --disks 2             # cluster worker process
//! pargrid serve my.pgf --method minimax --disks 4 \
//!     --workers 127.0.0.1:7901,127.0.0.1:7902 \
//!     --node-id 0 --peer-listen 127.0.0.1:7951 \
//!     --peers 1=127.0.0.1:7952=127.0.0.1:7879                  # replicated coordinator
//! ```
//!
//! `--trace` writes a Chrome `trace_event` JSON of one traced engine run —
//! open it in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! `--metrics` writes the run's histograms in Prometheus text format.

use pargrid::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         pargrid gen <uniform2d|hot2d|correl2d|dsmc3d|stock3d|mhd3d> [--seed N] [--out FILE.pgf] [--csv FILE.csv]\n  \
         pargrid build --csv FILE.csv --out FILE.pgf [--capacity N] [--page BYTES]\n  \
         pargrid stats FILE.pgf\n  \
         pargrid query FILE.pgf --range LO..HI,LO..HI[,...] [--count-only]\n  \
         pargrid pmatch FILE.pgf --keys V|*,V|*[,...]\n  \
         pargrid decluster FILE.pgf --method M --disks N [--seed N] [--out FILE.csv]\n  \
         pargrid evaluate FILE.pgf --method M --disks N [--ratio R] [--queries N] [--seed N] [--clients K] [--replicate] [--fail K] [--chaos SEED] [--deadline-us N] [--trace FILE.json] [--metrics FILE.prom]\n  \
         pargrid serve FILE.pgf --method M --disks N [--addr H:P] [--seed N] [--queue N] [--dispatchers K] [--pace-us N] [--replicate] [--standby K] [--wal DIR]\n  \
         pargrid serve FILE.pgf --method M --disks N --workers H:P[,H:P...] [--addr H:P] [--node-id N] [--peer-listen H:P] [--peers ID=PEER=CLIENT[,...]] [--heartbeat-ms N]\n  \
         pargrid worker --listen H:P [--disks N] [--state FILE]\n  \
         pargrid query --addr H:P --range LO..HI[,...] | --keys V|*[,...] | --insert ID,C[,...] | --delete ID,C[,...] | --ping | --stats | --shutdown\n  \
         pargrid rebalance --addr H:P --add-workers K | --remove-worker I [--dry-run]\n\n  \
         methods: {}",
        DeclusterMethod::names().join(" ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "gen" => cmd_gen(rest),
        "build" => cmd_build(rest),
        "stats" => cmd_stats(rest),
        "query" => cmd_query(rest),
        "pmatch" => cmd_pmatch(rest),
        "decluster" => cmd_decluster(rest),
        "evaluate" => cmd_evaluate(rest),
        "serve" => cmd_serve(rest),
        "worker" => cmd_worker(rest),
        "rebalance" => cmd_rebalance(rest),
        _ => Err("unknown command".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

type CliResult = Result<(), String>;

/// Fetches the value following `--flag`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn flag_parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {flag}: {v}")),
    }
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Flags that take no value (everything else consumes the next argument).
const BOOLEAN_FLAGS: &[&str] = &[
    "--count-only",
    "--replicate",
    "--ping",
    "--stats",
    "--shutdown",
    "--dry-run",
];

fn positional(args: &[String]) -> Option<&str> {
    // First argument that is neither a flag nor a flag's value.
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !BOOLEAN_FLAGS.contains(&a.as_str());
            continue;
        }
        return Some(a);
    }
    None
}

fn parse_method(name: &str) -> Result<DeclusterMethod, String> {
    DeclusterMethod::parse(name).ok_or_else(|| {
        format!(
            "unknown method: {name} (known: {})",
            DeclusterMethod::names().join(" ")
        )
    })
}

fn load_file(args: &[String]) -> Result<GridFile, String> {
    let path = positional(args).ok_or("missing grid file path")?;
    GridFile::load(path).map_err(|e| format!("cannot load {path}: {e}"))
}

fn cmd_gen(args: &[String]) -> CliResult {
    let name = positional(args).ok_or("missing dataset name")?;
    let seed: u64 = flag_parse(args, "--seed", 42)?;
    let ds = match name {
        "uniform2d" => pargrid::datagen::uniform2d(seed),
        "hot2d" => pargrid::datagen::hot2d(seed),
        "correl2d" => pargrid::datagen::correl2d(seed),
        "dsmc3d" => pargrid::datagen::dsmc3d(seed),
        "stock3d" => pargrid::datagen::stock3d(seed),
        "mhd3d" => pargrid::datagen::mhd3d(seed),
        other => return Err(format!("unknown dataset: {other}")),
    };
    if let Some(csv) = flag_value(args, "--csv")? {
        let mut out = String::with_capacity(ds.len() * 24);
        for (i, p) in ds.points.iter().enumerate() {
            out.push_str(&i.to_string());
            for c in p.coords() {
                out.push(',');
                out.push_str(&format!("{c}"));
            }
            out.push('\n');
        }
        std::fs::write(csv, out).map_err(|e| e.to_string())?;
        println!("wrote {} records to {csv}", ds.len());
    }
    if let Some(path) = flag_value(args, "--out")? {
        let gf = ds.build_grid_file();
        gf.save(path).map_err(|e| e.to_string())?;
        let st = gf.stats();
        println!(
            "wrote {path}: {} records, {} buckets over {:?} grid",
            st.n_records, st.n_buckets, st.cells_per_dim
        );
    }
    if flag_value(args, "--csv")?.is_none() && flag_value(args, "--out")?.is_none() {
        return Err("gen needs --out and/or --csv".into());
    }
    Ok(())
}

fn cmd_build(args: &[String]) -> CliResult {
    let csv = flag_value(args, "--csv")?.ok_or("build needs --csv")?;
    let out = flag_value(args, "--out")?.ok_or("build needs --out")?;
    let text = std::fs::read_to_string(csv).map_err(|e| format!("{csv}: {e}"))?;
    let mut records = Vec::new();
    let mut dim = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 2 {
            return Err(format!("{csv}:{}: need id plus coordinates", ln + 1));
        }
        let id: u64 = fields[0]
            .trim()
            .parse()
            .map_err(|_| format!("{csv}:{}: bad id", ln + 1))?;
        let coords: Result<Vec<f64>, String> = fields[1..]
            .iter()
            .map(|f| {
                f.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("{csv}:{}: bad coordinate {f}", ln + 1))
            })
            .collect();
        let coords = coords?;
        if dim == 0 {
            dim = coords.len();
        } else if coords.len() != dim {
            return Err(format!("{csv}:{}: inconsistent dimensionality", ln + 1));
        }
        records.push(Record::new(id, Point::new(&coords)));
    }
    if records.is_empty() {
        return Err("no records in CSV".into());
    }
    // Domain: bounding box of the data, padded so max coordinates stay
    // strictly inside.
    let mut lo = vec![f64::MAX; dim];
    let mut hi = vec![f64::MIN; dim];
    for r in &records {
        for k in 0..dim {
            lo[k] = lo[k].min(r.point.get(k));
            hi[k] = hi[k].max(r.point.get(k));
        }
    }
    for k in 0..dim {
        let pad = (hi[k] - lo[k]).max(1.0) * 1e-6;
        hi[k] += pad;
    }
    let domain = Rect::new(Point::new(&lo), Point::new(&hi));
    let page: usize = flag_parse(args, "--page", 4096)?;
    let capacity: usize = flag_parse(args, "--capacity", 0)?;
    let cfg = if capacity > 0 {
        GridConfig::with_capacity(domain, capacity).with_page_bytes(page)
    } else {
        GridConfig::new(domain, 0).with_page_bytes(page)
    };
    let gf = GridFile::bulk_load(cfg, records);
    gf.save(out).map_err(|e| e.to_string())?;
    let st = gf.stats();
    println!(
        "wrote {out}: {} records, {} buckets ({} merged) over {:?} grid",
        st.n_records, st.n_buckets, st.n_merged_buckets, st.cells_per_dim
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let gf = load_file(args)?;
    let st = gf.stats();
    println!("records        {}", st.n_records);
    println!("dimensionality {}", gf.dim());
    println!(
        "grid           {:?} ({} cells)",
        st.cells_per_dim, st.n_cells
    );
    println!(
        "buckets        {} ({} merged, {} oversize)",
        st.n_buckets, st.n_merged_buckets, st.oversize_buckets
    );
    println!("capacity       {} records/bucket", gf.bucket_capacity());
    println!("occupancy      {:.1}%", st.avg_occupancy * 100.0);
    println!("page size      {} bytes", gf.config().page_bytes);
    Ok(())
}

fn parse_range(spec: &str, dim: usize) -> Result<Rect, String> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != dim {
        return Err(format!("range has {} dims, file has {dim}", parts.len()));
    }
    let mut lo = Vec::with_capacity(dim);
    let mut hi = Vec::with_capacity(dim);
    for p in parts {
        let (a, b) = p
            .split_once("..")
            .ok_or_else(|| format!("bad interval {p} (want LO..HI)"))?;
        let a: f64 = a.parse().map_err(|_| format!("bad number {a}"))?;
        let b: f64 = b.parse().map_err(|_| format!("bad number {b}"))?;
        if !a.is_finite() || !b.is_finite() || a > b {
            return Err(format!(
                "empty or invalid interval {p} (want LO..HI with LO <= HI)"
            ));
        }
        lo.push(a);
        hi.push(b);
    }
    Ok(Rect::new(Point::new(&lo), Point::new(&hi)))
}

fn parse_keys(spec: &str) -> Result<Vec<Option<f64>>, String> {
    spec.split(',')
        .map(|p| {
            if p == "*" {
                Ok(None)
            } else {
                p.parse::<f64>()
                    .map(Some)
                    .map_err(|_| format!("bad key {p}"))
            }
        })
        .collect()
}

fn print_remote_reply(reply: &pargrid::net::RecordsReply, count_only: bool) {
    println!("records:      {}", reply.records.len());
    println!(
        "virtual cost: {} us ({} us comm), {} response blocks of {} total, {} cache hits",
        reply.elapsed_us,
        reply.comm_us,
        reply.response_blocks,
        reply.total_blocks,
        reply.cache_hits
    );
    if !count_only {
        for r in reply.records.iter().take(20) {
            println!("  {} @ {:?}", r.id, r.point.coords());
        }
        if reply.records.len() > 20 {
            println!("  ... ({} more)", reply.records.len() - 20);
        }
    }
}

fn cmd_query_remote(addr: &str, args: &[String]) -> CliResult {
    let mut client =
        pargrid::net::Client::connect_retry(addr, 5, std::time::Duration::from_millis(100))
            .map_err(|e| format!("{addr}: {e}"))?;
    if has_flag(args, "--ping") {
        let token = 0x1996;
        let echo = client.ping(token).map_err(|e| e.to_string())?;
        if echo != token {
            return Err(format!("pong token mismatch: sent {token}, got {echo}"));
        }
        println!("pong from {addr}");
        return Ok(());
    }
    if has_flag(args, "--stats") {
        print!("{}", client.stats().map_err(|e| e.to_string())?);
        return Ok(());
    }
    if has_flag(args, "--shutdown") {
        client.shutdown_server().map_err(|e| e.to_string())?;
        println!("server at {addr} acknowledged shutdown");
        return Ok(());
    }
    if let Some(spec) = flag_value(args, "--range")? {
        // The server knows the file's dimensionality; here the interval
        // count is taken at face value and the server rejects mismatches.
        let dim = spec.split(',').count();
        let rect = parse_range(spec, dim)?;
        let reply = client
            .range_query(rect.lo().coords(), rect.hi().coords())
            .map_err(|e| e.to_string())?;
        print_remote_reply(&reply, has_flag(args, "--count-only"));
        return Ok(());
    }
    if let Some(spec) = flag_value(args, "--keys")? {
        let keys = parse_keys(spec)?;
        let reply = client.partial_match(&keys).map_err(|e| e.to_string())?;
        print_remote_reply(&reply, has_flag(args, "--count-only"));
        return Ok(());
    }
    if let Some(spec) = flag_value(args, "--insert")? {
        let (id, key) = parse_mutation(spec)?;
        let ack = client.insert(id, &key).map_err(|e| e.to_string())?;
        print_mutation_ack("insert", id, &ack);
        return Ok(());
    }
    if let Some(spec) = flag_value(args, "--delete")? {
        let (id, key) = parse_mutation(spec)?;
        let ack = client.delete(id, &key).map_err(|e| e.to_string())?;
        print_mutation_ack("delete", id, &ack);
        return Ok(());
    }
    Err(
        "remote query needs --range, --keys, --insert, --delete, --ping, --stats, or --shutdown"
            .into(),
    )
}

/// Parses `ID,C1,C2[,...]` — a record id followed by its coordinates.
fn parse_mutation(spec: &str) -> Result<(u64, Vec<f64>), String> {
    let mut parts = spec.split(',');
    let id: u64 = parts
        .next()
        .filter(|s| !s.is_empty())
        .ok_or("mutation needs ID,COORD[,...]")?
        .parse()
        .map_err(|_| format!("bad record id in {spec}"))?;
    let key: Result<Vec<f64>, String> = parts
        .map(|p| {
            p.parse::<f64>()
                .ok()
                .filter(|c| c.is_finite())
                .ok_or_else(|| format!("bad coordinate {p}"))
        })
        .collect();
    let key = key?;
    if key.is_empty() {
        return Err("mutation needs at least one coordinate".into());
    }
    Ok((id, key))
}

fn print_mutation_ack(verb: &str, id: u64, ack: &pargrid::net::MutationAck) {
    println!(
        "{verb} {id}: {} ({} buckets rewritten, {} created, {} freed)",
        if ack.applied { "applied" } else { "no-op" },
        ack.rewritten,
        ack.created,
        ack.freed
    );
}

fn cmd_query(args: &[String]) -> CliResult {
    if let Some(addr) = flag_value(args, "--addr")? {
        return cmd_query_remote(addr, args);
    }
    let gf = load_file(args)?;
    let spec = flag_value(args, "--range")?.ok_or("query needs --range")?;
    let rect = parse_range(spec, gf.dim())?;
    let (buckets, records) = gf.range_query(&rect);
    println!("buckets read: {}", buckets.len());
    println!("records:      {}", records.len());
    if !has_flag(args, "--count-only") {
        for r in records.iter().take(20) {
            println!("  {} @ {:?}", r.id, r.point.coords());
        }
        if records.len() > 20 {
            println!("  ... ({} more)", records.len() - 20);
        }
    }
    Ok(())
}

fn cmd_pmatch(args: &[String]) -> CliResult {
    let gf = load_file(args)?;
    let spec = flag_value(args, "--keys")?.ok_or("pmatch needs --keys")?;
    let keys = parse_keys(spec)?;
    if keys.len() != gf.dim() {
        return Err(format!("{} keys for a {}-d file", keys.len(), gf.dim()));
    }
    let (buckets, records) = gf.partial_match(&keys);
    println!("buckets read: {}", buckets.len());
    println!("records:      {}", records.len());
    Ok(())
}

fn cmd_decluster(args: &[String]) -> CliResult {
    let gf = load_file(args)?;
    let method = parse_method(flag_value(args, "--method")?.ok_or("needs --method")?)?;
    let disks: usize = flag_parse(args, "--disks", 0)?;
    if disks == 0 {
        return Err("needs --disks N".into());
    }
    let seed: u64 = flag_parse(args, "--seed", 42)?;
    let input = DeclusterInput::from_grid_file(&gf);
    let assignment = method.assign(&input, disks, seed);
    println!(
        "{} over {disks} disks: balance degree {:.3}, counts {:?}",
        method.label(),
        assignment.data_balance_degree(),
        assignment.bucket_counts()
    );
    if let Some(out) = flag_value(args, "--out")? {
        let mut csv = String::from("bucket_id,disk\n");
        for b in &input.buckets {
            csv.push_str(&format!("{},{}\n", b.id, assignment.disk_of_id(b.id)));
        }
        std::fs::write(out, csv).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let path = positional(args)
        .ok_or("missing grid file path")?
        .to_string();
    let gf = load_file(args)?;
    let method = parse_method(flag_value(args, "--method")?.ok_or("needs --method")?)?;
    let disks: usize = flag_parse(args, "--disks", 0)?;
    if disks == 0 {
        return Err("needs --disks N".into());
    }
    let seed: u64 = flag_parse(args, "--seed", 42)?;
    let addr = flag_value(args, "--addr")?.unwrap_or("127.0.0.1:7878");
    let queue: usize = flag_parse(args, "--queue", 64)?;
    let dispatchers: usize = flag_parse(args, "--dispatchers", 4)?;
    let pace_us_per_block: u64 = flag_parse(args, "--pace-us", 0)?;
    let replicate = has_flag(args, "--replicate");
    if replicate && disks < 2 {
        return Err("--replicate needs at least 2 disks".into());
    }
    let standby: usize = flag_parse(args, "--standby", 0)?;
    let wal_dir = flag_value(args, "--wal")?.map(|s| s.to_string());

    // Cluster mode: --workers hands the data plane to remote worker
    // processes and runs this node as a replicated coordinator.
    if let Some(workers) = flag_value(args, "--workers")? {
        if replicate || standby > 0 || wal_dir.is_some() {
            return Err(
                "--workers (cluster mode) is incompatible with --replicate/--standby/--wal \
                 (durability is the replicated metadata log)"
                    .into(),
            );
        }
        let workers: Vec<String> = workers.split(',').map(|s| s.trim().to_string()).collect();
        return cmd_serve_cluster(args, &path, gf, method, disks, seed, addr, workers);
    }

    // Durable mode: the --wal directory is authoritative. First run seeds
    // its checkpoint from FILE.pgf; later runs recover checkpoint ⊕ WAL
    // (the .pgf is only a template after that). Declustering is rebuilt
    // from the *recovered* grid so placement matches the live buckets.
    let (gf, wal) = match &wal_dir {
        Some(dir) => {
            let dirp = std::path::Path::new(dir);
            let ckpt = dirp.join(pargrid::gridfile::durable::CHECKPOINT_FILE);
            if !ckpt.exists() {
                std::fs::create_dir_all(dirp).map_err(|e| format!("{dir}: {e}"))?;
                gf.save(&ckpt)
                    .map_err(|e| format!("cannot seed checkpoint in {dir}: {e}"))?;
            }
            let durable = pargrid::gridfile::DurableGridFile::open(dirp, gf.config().clone())
                .map_err(|e| format!("cannot recover {dir}: {e}"))?;
            println!(
                "recovered {dir}: {} records ({} WAL ops replayed)",
                durable.grid().len(),
                durable.recovered_ops()
            );
            let (gf, wal) = durable.into_parts();
            (gf, Some(wal))
        }
        None => (gf, None),
    };

    let input = DeclusterInput::from_grid_file(&gf);
    let gf = std::sync::Arc::new(gf);
    let engine_config = EngineConfig::default().with_standby_workers(standby);
    let engine = if replicate {
        let ra = method.assign_replicated(&input, disks, seed);
        ParallelGridFile::build_replicated(std::sync::Arc::clone(&gf), &ra, engine_config)
    } else {
        let assignment = method.assign(&input, disks, seed);
        ParallelGridFile::build(std::sync::Arc::clone(&gf), &assignment, engine_config)
    };
    if let Some(wal) = wal {
        engine.attach_wal(wal);
    }
    let engine = std::sync::Arc::new(engine);
    let server = pargrid::net::Server::start(
        std::sync::Arc::clone(&engine),
        addr,
        pargrid::net::ServerConfig {
            queue_capacity: queue,
            dispatchers,
            pace_us_per_block,
            // The CLI server is meant to be driven by `pargrid query
            // --shutdown` and `pargrid rebalance` (the CI smoke jobs do
            // exactly that).
            allow_remote_shutdown: true,
            allow_remote_rebalance: true,
            ..pargrid::net::ServerConfig::default()
        },
    )
    .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "serving {path} ({} over {disks} disks{}{}) — {dispatchers} dispatchers, queue {queue}",
        method.label(),
        if replicate { ", replicated" } else { "" },
        if standby > 0 {
            format!(", {standby} standby")
        } else {
            String::new()
        },
    );
    println!("listening on {}", server.local_addr());
    println!(
        "stop with: pargrid query --addr {} --shutdown",
        server.local_addr()
    );
    // Blocks until a wire Shutdown arrives, then drains and joins
    // everything; the final metrics document goes to stdout so operators
    // (and CI) see the run's counters.
    let doc = server.join();
    if wal_dir.is_some() {
        // Fold the WAL into a fresh checkpoint so the next start replays
        // nothing. A failure here is not fatal — the WAL still holds every
        // acknowledged mutation and recovery replays it.
        match engine.checkpoint() {
            Ok(true) => println!("checkpointed {} records", engine.len()),
            Ok(false) => {}
            Err(e) => eprintln!("warning: final checkpoint failed: {e}"),
        }
    }
    println!("server stopped; final metrics:");
    print!("{doc}");
    Ok(())
}

/// `serve --workers ...`: run this node as a replicated cluster
/// coordinator over remote worker processes. Blocks until killed; the CI
/// smoke job stops it with a signal, exactly like a deployment would.
#[allow(clippy::too_many_arguments)]
fn cmd_serve_cluster(
    args: &[String],
    path: &str,
    gf: GridFile,
    method: DeclusterMethod,
    disks: usize,
    seed: u64,
    addr: &str,
    workers: Vec<String>,
) -> CliResult {
    use pargrid::cluster::{Coordinator, CoordinatorConfig, PeerSpec};

    let node_id: u32 = flag_parse(args, "--node-id", 0)?;
    let peer_listen = flag_value(args, "--peer-listen")?
        .map(|s| s.to_string())
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let mut cfg = CoordinatorConfig::new(node_id, addr.to_string(), peer_listen);
    cfg.workers = workers;
    cfg.seed = seed ^ u64::from(node_id);
    cfg.heartbeat_ms = flag_parse(args, "--heartbeat-ms", cfg.heartbeat_ms)?;
    if let Some(peers) = flag_value(args, "--peers")? {
        for entry in peers.split(',') {
            // ID=PEERADDR=CLIENTADDR ('=' because addresses contain ':').
            let parts: Vec<&str> = entry.trim().split('=').collect();
            let [id, peer_addr, client_addr] = parts[..] else {
                return Err(format!("bad --peers entry {entry:?}; want ID=PEER=CLIENT"));
            };
            cfg.peers.push(PeerSpec {
                id: id.parse().map_err(|_| format!("bad peer id {id:?}"))?,
                peer_addr: peer_addr.to_string(),
                client_addr: client_addr.to_string(),
            });
        }
    }
    let n_peers = cfg.peers.len();
    let n_workers = cfg.workers.len();
    let builder: pargrid::cluster::coordinator::EngineBuilder = Box::new(move |gf, backend| {
        let input = DeclusterInput::from_grid_file(&gf);
        let assignment = method.assign(&input, disks, seed);
        let cfg = EngineConfig::default().with_backend(backend);
        std::sync::Arc::new(ParallelGridFile::build(gf, &assignment, cfg))
    });
    let coord = Coordinator::start(cfg, gf, builder)
        .map_err(|e| format!("cannot start coordinator: {e}"))?;
    println!(
        "coordinator {node_id} for {path} ({} over {disks} slots, {n_workers} workers, \
         {n_peers} standby peers)",
        method.label(),
    );
    println!("clients: {addr} (thin redirect while following)");
    println!("stop with: kill {}", std::process::id());
    let mut was_leader = coord.is_leader();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        let leading = coord.is_leader();
        if leading != was_leader {
            was_leader = leading;
            if leading {
                println!(
                    "leading term {} (failovers here: {})",
                    coord.term(),
                    coord.failovers()
                );
            } else {
                println!("following (term {})", coord.term());
            }
        }
    }
}

/// `pargrid worker`: one cluster worker process. Holds declustered blocks
/// uploaded by the leading coordinator and executes its dispatches.
fn cmd_worker(args: &[String]) -> CliResult {
    use pargrid::cluster::{WorkerConfig, WorkerServer};

    let listen = flag_value(args, "--listen")?.unwrap_or("127.0.0.1:7901");
    let disks: usize = flag_parse(args, "--disks", 2)?;
    let state_path = flag_value(args, "--state")?.map(std::path::PathBuf::from);
    let durable = state_path.is_some();
    let cfg = WorkerConfig {
        disks,
        state_path,
        ..WorkerConfig::default()
    };
    let server =
        WorkerServer::start(listen, cfg).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    println!(
        "worker on {} ({disks} virtual disks, {} voter state)",
        server.local_addr(),
        if durable { "durable" } else { "in-memory" }
    );
    println!("stop with: kill {}", std::process::id());
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_rebalance(args: &[String]) -> CliResult {
    let addr = flag_value(args, "--addr")?.ok_or("rebalance needs --addr")?;
    let add: Option<u32> = match flag_value(args, "--add-workers")? {
        Some(v) => Some(v.parse().map_err(|_| format!("bad --add-workers {v}"))?),
        None => None,
    };
    let remove: Option<u32> = match flag_value(args, "--remove-worker")? {
        Some(v) => Some(v.parse().map_err(|_| format!("bad --remove-worker {v}"))?),
        None => None,
    };
    let cmd = match (add, remove) {
        (Some(k), None) => pargrid::net::RebalanceCmd::AddWorkers(k),
        (None, Some(w)) => pargrid::net::RebalanceCmd::RemoveWorker(w),
        _ => {
            return Err(
                "rebalance needs exactly one of --add-workers K or --remove-worker I".into(),
            )
        }
    };
    let dry_run = has_flag(args, "--dry-run");
    let mut client =
        pargrid::net::Client::connect_retry(addr, 5, std::time::Duration::from_millis(100))
            .map_err(|e| format!("{addr}: {e}"))?;
    let rep = client.rebalance(cmd, dry_run).map_err(|e| e.to_string())?;
    println!(
        "rebalance {}: {} moves ({} bytes), {} active workers",
        if rep.applied { "applied" } else { "dry run" },
        rep.moves,
        rep.moved_bytes,
        rep.active_workers
    );
    println!(
        "movement        {} incremental vs {} full re-decluster ({:.1}% of full)",
        rep.moves,
        rep.full_moves,
        if rep.full_moves > 0 {
            100.0 * rep.moves as f64 / rep.full_moves as f64
        } else {
            0.0
        }
    );
    println!(
        "objective       {:.4} repaired vs {:.4} full re-decluster (lower is better)",
        rep.predicted_objective, rep.baseline_objective
    );
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> CliResult {
    let gf = load_file(args)?;
    let method = parse_method(flag_value(args, "--method")?.ok_or("needs --method")?)?;
    let disks: usize = flag_parse(args, "--disks", 0)?;
    if disks == 0 {
        return Err("needs --disks N".into());
    }
    let ratio: f64 = flag_parse(args, "--ratio", 0.05)?;
    let queries: usize = flag_parse(args, "--queries", 1000)?;
    let seed: u64 = flag_parse(args, "--seed", 42)?;
    let clients: usize = flag_parse(args, "--clients", 1)?;
    if clients == 0 {
        return Err("--clients must be at least 1".into());
    }
    let replicate = has_flag(args, "--replicate");
    let fail: usize = flag_parse(args, "--fail", 0)?;
    let chaos: Option<u64> = match flag_value(args, "--chaos")? {
        Some(v) => Some(v.parse().map_err(|_| format!("bad --chaos seed {v}"))?),
        None => None,
    };
    let deadline_us: Option<u64> = match flag_value(args, "--deadline-us")? {
        Some(v) => Some(v.parse().map_err(|_| format!("bad --deadline-us {v}"))?),
        None => None,
    };
    if replicate && disks < 2 {
        return Err("--replicate needs at least 2 disks".into());
    }
    if fail >= disks {
        return Err("--fail must leave at least one live worker".into());
    }
    let input = DeclusterInput::from_grid_file(&gf);
    let assignment = method.assign(&input, disks, seed);
    let workload = QueryWorkload::square(&gf.config().domain, ratio, queries, seed);
    let stats = pargrid::sim::evaluate(&gf, &assignment, &workload);
    println!("method          {}", method.label());
    println!("disks           {disks}");
    println!("queries         {queries} (ratio {ratio})");
    println!("mean response   {:.3} buckets", stats.mean_response);
    println!("optimal         {:.3}", stats.mean_optimal);
    println!("mean buckets    {:.2} per query", stats.mean_buckets);
    println!(
        "tail response   p95 {} / p99 {} buckets",
        stats.p95_response, stats.p99_response
    );
    println!("balance degree  {:.3}", stats.balance_degree);

    let gf = std::sync::Arc::new(gf);
    if clients > 1 {
        // Run the same workload through the parallel engine as `clients`
        // concurrent front-end streams: the submission order interleaves one
        // query per client, and the admission window equals the client count.
        let streams = workload.split_round_robin(clients);
        let arrival = QueryWorkload::interleave(&streams);
        // Fresh engine per run so both start with cold caches.
        let baseline = ParallelGridFile::build(
            std::sync::Arc::clone(&gf),
            &assignment,
            EngineConfig::default(),
        );
        let (_, serial) = baseline.run_workload_concurrent(&arrival, 1);
        let engine = ParallelGridFile::build(
            std::sync::Arc::clone(&gf),
            &assignment,
            EngineConfig::default(),
        );
        let (_, concurrent) = engine.run_workload_concurrent(&arrival, clients);
        println!("clients         {clients}");
        println!(
            "serial          {:.2} queries/s (makespan {:.3} s)",
            serial.queries_per_second(),
            serial.makespan_seconds()
        );
        println!(
            "concurrent      {:.2} queries/s (makespan {:.3} s)",
            concurrent.queries_per_second(),
            concurrent.makespan_seconds()
        );
        println!(
            "speedup         {:.2}x",
            if serial.queries_per_second() > 0.0 {
                concurrent.queries_per_second() / serial.queries_per_second()
            } else {
                0.0
            }
        );
        println!(
            "utilization     {:.1}% mean over {} workers",
            concurrent.mean_utilization() * 100.0,
            disks
        );
        println!("mean batch      {:.2} requests", concurrent.mean_batch());
    }

    if replicate || fail > 0 || chaos.is_some() || deadline_us.is_some() {
        // Degraded-mode / hostile-environment run: chained-declustered
        // replication (--replicate), injected fail-stop worker faults
        // (--fail K, spaced around the chain so replicated layouts survive
        // them), a seeded chaos schedule over every fault family (--chaos
        // SEED), and a per-query real-time deadline (--deadline-us N).
        let mut faults = match chaos {
            // The soak's default intensity: 24 events over the run.
            Some(cs) => FaultPlan::chaos(cs, disks, queries as u64, 24),
            None => FaultPlan::none(),
        };
        for i in 0..fail {
            faults = faults.with_kill(i * disks / fail.max(1));
        }
        let mut config = EngineConfig::default().resilience(|r| {
            r.with_fail_timeout_ms(if chaos.is_some() { 15 } else { 25 })
                .with_faults(faults)
        });
        if let Some(d) = deadline_us {
            config = config.latency(|l| l.with_deadline_us(d));
        }
        if chaos.is_some() {
            // Chaos schedules include straggler disks: arm hedged reads.
            config = config.latency(|l| l.with_hedging(3.0));
        }
        let engine = if replicate {
            let ra = method.assign_replicated(&input, disks, seed);
            ParallelGridFile::build_replicated(std::sync::Arc::clone(&gf), &ra, config)
        } else {
            ParallelGridFile::build(std::sync::Arc::clone(&gf), &assignment, config)
        };
        let (outcomes, tp) = engine.run_workload_concurrent(&workload, clients);
        let mean_ms = outcomes.iter().map(|o| o.elapsed_us).sum::<u64>() as f64
            / outcomes.len().max(1) as f64
            / 1e3;
        let incomplete = outcomes.iter().filter(|o| o.incomplete).count();
        let st = engine.stats();
        println!(
            "layout          {}",
            if replicate {
                "replicated (chained declustering)"
            } else {
                "unreplicated"
            }
        );
        println!(
            "failures        {fail} injected ({} of {disks} workers live)",
            st.live_workers()
        );
        println!(
            "degraded        {mean_ms:.3} ms mean response, {:.2} queries/s",
            tp.queries_per_second()
        );
        println!(
            "failover        {} retries, {} blocks served by replicas",
            tp.retries, tp.failed_over_blocks
        );
        if let Some(cs) = chaos {
            println!("chaos           seed {cs} (24 fault events over every family)");
        }
        if let Some(d) = deadline_us {
            println!(
                "deadline        {d} us per query, {} expired",
                st.deadline_expired
            );
        }
        if chaos.is_some() {
            println!(
                "resilience      {} retransmits, {} hedged reads, {} blocks scrubbed",
                st.retransmits, st.hedges, st.scrubbed
            );
        }
        println!("incomplete      {incomplete} of {} queries", tp.queries);
    }

    let trace_out = flag_value(args, "--trace")?;
    let metrics_out = flag_value(args, "--metrics")?;
    if trace_out.is_some() || metrics_out.is_some() {
        // One traced engine pass over the workload; every span is stamped
        // in the recorder's virtual clock, so exports are deterministic.
        let recorder = std::sync::Arc::new(Recorder::new(disks));
        let engine = ParallelGridFile::build(
            std::sync::Arc::clone(&gf),
            &assignment,
            EngineConfig::default().obs(|o| o.with_recorder(std::sync::Arc::clone(&recorder))),
        );
        let _ = engine.run_workload_concurrent(&workload, clients.max(4));
        let engine_stats = engine.stats();
        drop(engine); // joins the workers: the snapshot below is complete
        if let Some(path) = trace_out {
            let snap = recorder.snapshot();
            std::fs::write(path, pargrid::obs::to_chrome_trace(&snap))
                .map_err(|e| format!("{path}: {e}"))?;
            println!(
                "trace           {path} ({} events; open in Perfetto or chrome://tracing)",
                snap.len()
            );
        }
        if let Some(path) = metrics_out {
            let mut pw = pargrid::obs::PromWriter::new();
            pw.counter(
                pargrid::obs::names::ENGINE_QUERIES_TOTAL,
                "Queries served by the engine.",
                engine_stats.queries,
            );
            pw.gauge(
                pargrid::obs::names::ENGINE_WORKERS_ALIVE,
                "Workers alive at end of run.",
                engine_stats.live_workers() as f64,
            );
            pw.histogram(
                pargrid::obs::names::ENGINE_QUERY_US,
                "End-to-end query latency (virtual microseconds).",
                &recorder.query_us.snapshot(),
            );
            pw.histogram(
                "pargrid_comm_us",
                "Per-query communication time (virtual microseconds).",
                &recorder.comm_us.snapshot(),
            );
            pw.histogram(
                "pargrid_batch_wall_us",
                "Worker batch wall service time (virtual microseconds).",
                &recorder.batch_wall_us.snapshot(),
            );
            pw.histogram(
                "pargrid_response_blocks",
                "Per-query response time (buckets on the busiest disk).",
                &recorder.response_blocks.snapshot(),
            );
            let doc = pw.finish();
            pargrid::obs::validate_prometheus(&doc)
                .map_err(|e| format!("internal: invalid metrics export: {e}"))?;
            std::fs::write(path, doc).map_err(|e| format!("{path}: {e}"))?;
            println!("metrics         {path}");
        }
    }
    Ok(())
}
