//! # pargrid — scalable declustering for parallel grid files
//!
//! A Rust reproduction of Moon, Acharya & Saltz, *Study of Scalable
//! Declustering Algorithms for Parallel Grid Files* (IPPS 1996).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geom`] | `pargrid-geom` | points, boxes, proximity index, space-filling curves |
//! | [`gridfile`] | `pargrid-gridfile` | grid file + Cartesian product file |
//! | [`datagen`] | `pargrid-datagen` | the paper's datasets (synthetic + substitutes) |
//! | [`decluster`] | `pargrid-core` | DM, FX, HCAM, conflict resolution, SSP, **minimax**, analytic models |
//! | [`sim`] | `pargrid-sim` | workloads, response-time metrics, sweep runner |
//! | [`parallel`] | `pargrid-parallel` | shared-nothing SPMD engine (SP-2 substitute) |
//! | [`obs`] | `pargrid-obs` | tracing, latency histograms, Chrome-trace/Prometheus exporters |
//! | [`net`] | `pargrid-net` | TCP serving layer: wire protocol, admission-controlled server, client, load generator |
//! | [`cluster`] | `pargrid-cluster` | scale-out runtime: worker processes, replicated coordinators, leader election, failover |
//!
//! ## Quickstart
//!
//! ```
//! use pargrid::prelude::*;
//!
//! // 1. Generate a skewed dataset and load it into a grid file.
//! let dataset = pargrid::datagen::hot2d(42);
//! let grid = dataset.build_grid_file();
//!
//! // 2. Decluster its buckets over 16 disks with the paper's minimax
//! //    algorithm.
//! let input = DeclusterInput::from_grid_file(&grid);
//! let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity)
//!     .assign(&input, 16, 1);
//! assert!(assignment.is_perfectly_balanced());
//!
//! // 3. Measure the average response time of 100 random range queries.
//! let workload = QueryWorkload::square(&dataset.domain, 0.05, 100, 7);
//! let stats = evaluate(&grid, &assignment, &workload);
//! assert!(stats.mean_response >= stats.mean_optimal);
//!
//! // 4. Serve the same workload through the shared-session parallel
//! //    engine: 16 worker threads, 8 queries in flight at once.
//! let engine = ParallelGridFile::build(
//!     std::sync::Arc::new(grid), &assignment, EngineConfig::default());
//! let (outcomes, throughput) = engine.run_workload_concurrent(&workload, 8);
//! assert_eq!(outcomes.len(), workload.len());
//! assert!(throughput.queries_per_second() > 0.0);
//! assert_eq!(engine.stats().queries, 100);
//! ```

#![warn(missing_docs)]

pub use pargrid_cluster as cluster;
pub use pargrid_core as decluster;
pub use pargrid_datagen as datagen;
pub use pargrid_geom as geom;
pub use pargrid_gridfile as gridfile;
pub use pargrid_net as net;
pub use pargrid_obs as obs;
pub use pargrid_parallel as parallel;
pub use pargrid_sim as sim;

/// The most commonly used types, re-exported flat: build/decluster/evaluate
/// types plus the full query-service surface (sessions, outcomes, stats),
/// the grouped engine configuration ([`EngineConfig`] and its
/// resilience/latency/obs sub-configs), and the workspace's
/// `#[non_exhaustive]` error enums.
pub mod prelude {
    pub use pargrid_cluster::{
        ClusterClient, ClusterClientError, Coordinator, CoordinatorConfig, PeerSpec, RemoteBackend,
        WorkerConfig, WorkerServer,
    };
    pub use pargrid_core::{
        Assignment, ConflictPolicy, DeclusterInput, DeclusterMethod, EdgeWeight, IndexScheme,
        ReplicatedAssignment,
    };
    pub use pargrid_datagen::Dataset;
    pub use pargrid_geom::{Point, Rect};
    pub use pargrid_gridfile::{GridConfig, GridFile, PersistError, Record};
    pub use pargrid_net::{ClientError, FrameError, ProtoError, WireError};
    pub use pargrid_obs::{Histogram, Recorder, SpanKind, TailSummary, TraceSnapshot};
    pub use pargrid_parallel::{
        DiskParams, DispatchMode, EngineConfig, EngineError, EngineStats, FaultKind, FaultPlan,
        LatencyConfig, NetParams, ObsConfig, ParallelGridFile, QueryOutcome, QueryPriority,
        QuerySession, ResilienceConfig, RunStats, StoreError, WorkerFault, WorkerStats,
    };
    pub use pargrid_sim::{evaluate, sweep, EvalStats, QueryWorkload, ThroughputStats};
}
