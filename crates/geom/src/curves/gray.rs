//! Gray-code curve: rank of the interleaved coordinate word in the
//! reflected-Gray-code enumeration.
//!
//! This is the "Gray coding" linearization compared against the Hilbert
//! curve by Faloutsos & Roseman and Jagadish (paper references [5, 11]): the
//! cell word obtained by bit interleaving is interpreted as a Gray code and
//! its rank in the Gray sequence is the linear index. Consecutive indices
//! differ in exactly one *bit* of the interleaved word (not necessarily one
//! grid step, unlike Hilbert).

use super::{check_coords, check_params, deinterleave, interleave, SpaceFillingCurve};

/// The Gray-code curve over `[0, 2^bits)^dim`.
#[derive(Clone, Copy, Debug)]
pub struct GrayCurve {
    dim: usize,
    bits: u32,
}

impl GrayCurve {
    /// Creates a Gray-code curve.
    ///
    /// # Panics
    /// Panics if `dim` or `bits` is out of the supported range.
    pub fn new(dim: usize, bits: u32) -> Self {
        check_params(dim, bits);
        GrayCurve { dim, bits }
    }
}

/// `rank -> Gray codeword`.
#[inline]
fn gray_encode(rank: u128) -> u128 {
    rank ^ (rank >> 1)
}

/// `Gray codeword -> rank` (prefix-XOR inverse).
#[inline]
fn gray_decode(mut code: u128) -> u128 {
    let mut rank = code;
    while code != 0 {
        code >>= 1;
        rank ^= code;
    }
    rank
}

impl SpaceFillingCurve for GrayCurve {
    fn dim(&self) -> usize {
        self.dim
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn index_of(&self, coords: &[u32]) -> u128 {
        check_coords(coords, self.dim, self.bits);
        gray_decode(interleave(coords, self.bits))
    }

    fn coords_of(&self, index: u128, out: &mut [u32]) {
        assert_eq!(out.len(), self.dim, "output length mismatch");
        assert!(index < self.len(), "index {index} out of range");
        deinterleave(gray_encode(index), self.bits, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_code_roundtrip() {
        for v in 0..4096u128 {
            assert_eq!(gray_decode(gray_encode(v)), v);
        }
    }

    #[test]
    fn gray_neighbors_differ_in_one_bit() {
        for v in 0..4095u128 {
            let diff = gray_encode(v) ^ gray_encode(v + 1);
            assert_eq!(diff.count_ones(), 1);
        }
    }

    #[test]
    fn curve_roundtrip_exhaustive() {
        for (dim, bits) in [(2usize, 4u32), (3, 2), (4, 2)] {
            let g = GrayCurve::new(dim, bits);
            let mut c = vec![0u32; dim];
            for i in 0..g.len() {
                g.coords_of(i, &mut c);
                assert_eq!(g.index_of(&c), i);
            }
        }
    }

    #[test]
    fn consecutive_cells_differ_in_one_interleaved_bit() {
        let g = GrayCurve::new(2, 3);
        let mut prev = [0u32; 2];
        let mut cur = [0u32; 2];
        g.coords_of(0, &mut prev);
        for i in 1..g.len() {
            g.coords_of(i, &mut cur);
            let w_prev = super::super::interleave(&prev, 3);
            let w_cur = super::super::interleave(&cur, 3);
            assert_eq!((w_prev ^ w_cur).count_ones(), 1);
            prev = cur;
        }
    }

    #[test]
    fn starts_at_origin() {
        let g = GrayCurve::new(3, 2);
        let mut c = [9u32; 3];
        g.coords_of(0, &mut c);
        assert_eq!(c, [0, 0, 0]);
    }
}
