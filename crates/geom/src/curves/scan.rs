//! Column-wise scan (row-major order), with an optional boustrophedon
//! ("snake") variant.
//!
//! The simplest linearization the paper's references compare against: cells
//! are visited dimension-0-major. The snake variant reverses direction on
//! alternate columns so that consecutive indices are always grid-adjacent,
//! at the cost of no hierarchical locality.

use super::{check_coords, check_params, SpaceFillingCurve};

/// Row-major scan order over `[0, 2^bits)^dim`.
#[derive(Clone, Copy, Debug)]
pub struct ScanCurve {
    dim: usize,
    bits: u32,
    snake: bool,
}

impl ScanCurve {
    /// Creates a plain row-major scan curve.
    ///
    /// # Panics
    /// Panics if `dim` or `bits` is out of the supported range.
    pub fn new(dim: usize, bits: u32) -> Self {
        check_params(dim, bits);
        ScanCurve {
            dim,
            bits,
            snake: false,
        }
    }

    /// Creates the boustrophedon variant (direction alternates on every
    /// higher-dimension step, so consecutive cells are always adjacent).
    pub fn snake(dim: usize, bits: u32) -> Self {
        check_params(dim, bits);
        ScanCurve {
            dim,
            bits,
            snake: true,
        }
    }
}

impl SpaceFillingCurve for ScanCurve {
    fn dim(&self) -> usize {
        self.dim
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn index_of(&self, coords: &[u32]) -> u128 {
        check_coords(coords, self.dim, self.bits);
        let side = 1u128 << self.bits;
        let mut idx: u128 = 0;
        // Row-major with dim 0 as the most significant digit. For the snake
        // variant, a digit is reflected whenever the sum of more significant
        // digits is odd.
        let mut flip = false;
        for &c in coords.iter().take(self.dim) {
            let digit = if self.snake && flip {
                side - 1 - c as u128
            } else {
                c as u128
            };
            idx = idx * side + digit;
            // Track parity of the *logical* digit consumed so far.
            flip ^= (digit & 1) == 1;
        }
        idx
    }

    fn coords_of(&self, index: u128, out: &mut [u32]) {
        assert_eq!(out.len(), self.dim, "output length mismatch");
        assert!(index < self.len(), "index {index} out of range");
        let side = 1u128 << self.bits;
        // Extract digits most-significant first.
        let mut rem = index;
        let mut digits = [0u128; crate::point::MAX_DIM];
        for i in (0..self.dim).rev() {
            digits[i] = rem % side;
            rem /= side;
        }
        let mut flip = false;
        for i in 0..self.dim {
            let digit = digits[i];
            out[i] = if self.snake && flip {
                (side - 1 - digit) as u32
            } else {
                digit as u32
            };
            flip ^= (digit & 1) == 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_2d() {
        let s = ScanCurve::new(2, 2);
        assert_eq!(s.index_of(&[0, 0]), 0);
        assert_eq!(s.index_of(&[0, 3]), 3);
        assert_eq!(s.index_of(&[1, 0]), 4);
        assert_eq!(s.index_of(&[3, 3]), 15);
    }

    #[test]
    fn roundtrip_exhaustive() {
        for (dim, bits) in [(2usize, 3u32), (3, 2), (4, 2)] {
            for curve in [ScanCurve::new(dim, bits), ScanCurve::snake(dim, bits)] {
                let mut c = vec![0u32; dim];
                for i in 0..curve.len() {
                    curve.coords_of(i, &mut c);
                    assert_eq!(curve.index_of(&c), i, "dim={dim} bits={bits}");
                }
            }
        }
    }

    #[test]
    fn snake_consecutive_cells_adjacent_2d() {
        let s = ScanCurve::snake(2, 3);
        let mut prev = [0u32; 2];
        let mut cur = [0u32; 2];
        s.coords_of(0, &mut prev);
        for i in 1..s.len() {
            s.coords_of(i, &mut cur);
            let l1: u32 = prev.iter().zip(&cur).map(|(&a, &b)| a.abs_diff(b)).sum();
            assert_eq!(l1, 1, "snake scan must move one cell at a time (step {i})");
            prev = cur;
        }
    }

    #[test]
    fn bijective() {
        let s = ScanCurve::snake(2, 3);
        let mut seen = vec![false; s.len() as usize];
        for x in 0..8u32 {
            for y in 0..8u32 {
                let i = s.index_of(&[x, y]) as usize;
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
