//! Z-order (Morton) curve: plain bit interleaving.

use super::{check_coords, check_params, deinterleave, interleave, SpaceFillingCurve};

/// The Z-order (Morton) curve over `[0, 2^bits)^dim`.
///
/// Cheapest linearization to compute, but consecutive indices can be far
/// apart in space (the long "Z" jumps), which is exactly the clustering
/// deficiency the Hilbert curve fixes.
#[derive(Clone, Copy, Debug)]
pub struct ZOrderCurve {
    dim: usize,
    bits: u32,
}

impl ZOrderCurve {
    /// Creates a Z-order curve.
    ///
    /// # Panics
    /// Panics if `dim` or `bits` is out of the supported range.
    pub fn new(dim: usize, bits: u32) -> Self {
        check_params(dim, bits);
        ZOrderCurve { dim, bits }
    }
}

impl SpaceFillingCurve for ZOrderCurve {
    fn dim(&self) -> usize {
        self.dim
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn index_of(&self, coords: &[u32]) -> u128 {
        check_coords(coords, self.dim, self.bits);
        interleave(coords, self.bits)
    }

    fn coords_of(&self, index: u128, out: &mut [u32]) {
        assert_eq!(out.len(), self.dim, "output length mismatch");
        assert!(index < self.len(), "index {index} out of range");
        deinterleave(index, self.bits, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_quadrant_order() {
        // 2x2 Z curve visits (0,0), (0,1), (1,0), (1,1) with dim-0 as the
        // high bit.
        let z = ZOrderCurve::new(2, 1);
        assert_eq!(z.index_of(&[0, 0]), 0);
        assert_eq!(z.index_of(&[0, 1]), 1);
        assert_eq!(z.index_of(&[1, 0]), 2);
        assert_eq!(z.index_of(&[1, 1]), 3);
    }

    #[test]
    fn roundtrip_exhaustive() {
        for (dim, bits) in [(2usize, 4u32), (3, 2), (4, 2)] {
            let z = ZOrderCurve::new(dim, bits);
            let mut c = vec![0u32; dim];
            for i in 0..z.len() {
                z.coords_of(i, &mut c);
                assert_eq!(z.index_of(&c), i);
            }
        }
    }

    #[test]
    fn locality_within_quadrants() {
        // All indices of the low quadrant precede all of the high quadrant
        // along dim 0 (the recursive block property of Z order).
        let z = ZOrderCurve::new(2, 3);
        for x in 0..4u32 {
            for y in 0..8u32 {
                let lo = z.index_of(&[x, y]);
                for x2 in 4..8u32 {
                    for y2 in 0..8u32 {
                        assert!(lo < z.index_of(&[x2, y2]));
                    }
                }
            }
        }
    }
}
