//! d-dimensional Hilbert curve.
//!
//! Implementation of John Skilling's transpose algorithm ("Programming the
//! Hilbert curve", AIP Conf. Proc. 707, 2004): coordinates are converted to
//! and from a *transposed* representation in which the Hilbert index's bits
//! are distributed across the coordinate words; bit interleaving then yields
//! the scalar index. Both directions run in `O(dim * bits)`.

use super::{check_coords, check_params, deinterleave, interleave, SpaceFillingCurve};

/// A Hilbert curve over `[0, 2^bits)^dim`.
#[derive(Clone, Copy, Debug)]
pub struct HilbertCurve {
    dim: usize,
    bits: u32,
}

impl HilbertCurve {
    /// Creates a Hilbert curve of the given dimensionality and resolution.
    ///
    /// # Panics
    /// Panics if `dim` or `bits` is out of the supported range (see
    /// [`SpaceFillingCurve`]).
    pub fn new(dim: usize, bits: u32) -> Self {
        check_params(dim, bits);
        HilbertCurve { dim, bits }
    }

    /// Skilling: axes -> transposed Hilbert index (in place).
    fn axes_to_transpose(x: &mut [u32], bits: u32) {
        let n = x.len();
        // For bits == 1 the "inverse undo" loop body never runs (q starts at
        // 1) and the curve degenerates to plain Gray order, as it should.
        let mut q: u32 = 1 << (bits - 1);
        while q > 1 {
            let p = q - 1;
            for i in 0..n {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }
        // Gray encode.
        for i in 1..n {
            x[i] ^= x[i - 1];
        }
        let mut t = 0u32;
        q = 1 << (bits - 1);
        while q > 1 {
            if x[n - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for xi in x.iter_mut() {
            *xi ^= t;
        }
    }

    /// Skilling: transposed Hilbert index -> axes (in place).
    fn transpose_to_axes(x: &mut [u32], bits: u32) {
        let n = x.len();
        let top: u32 = if bits >= 32 { 0 } else { 1u32 << bits };
        // Gray decode by H ^ (H/2).
        let t = x[n - 1] >> 1;
        for i in (1..n).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;
        // Undo excess work.
        let mut q = 2u32;
        while q != top {
            let p = q - 1;
            for i in (0..n).rev() {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q <<= 1;
        }
    }
}

impl SpaceFillingCurve for HilbertCurve {
    fn dim(&self) -> usize {
        self.dim
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn index_of(&self, coords: &[u32]) -> u128 {
        check_coords(coords, self.dim, self.bits);
        let mut x = [0u32; crate::point::MAX_DIM];
        x[..self.dim].copy_from_slice(coords);
        Self::axes_to_transpose(&mut x[..self.dim], self.bits);
        interleave(&x[..self.dim], self.bits)
    }

    fn coords_of(&self, index: u128, out: &mut [u32]) {
        assert_eq!(out.len(), self.dim, "output length mismatch");
        assert!(index < self.len(), "index {index} out of range");
        deinterleave(index, self.bits, out);
        Self::transpose_to_axes(out, self.bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(curve: &HilbertCurve) -> Vec<Vec<u32>> {
        let mut path = Vec::with_capacity(curve.len() as usize);
        let mut c = vec![0u32; curve.dim()];
        for i in 0..curve.len() {
            curve.coords_of(i, &mut c);
            path.push(c.clone());
        }
        path
    }

    #[test]
    fn order1_2d_is_canonical() {
        // The first-order 2-D Hilbert curve visits the four quadrant cells
        // in a "U" shape: each consecutive pair is grid-adjacent.
        let h = HilbertCurve::new(2, 1);
        let path = walk(&h);
        assert_eq!(path.len(), 4);
        // All cells visited exactly once.
        let mut sorted = path.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn consecutive_cells_are_adjacent() {
        // The defining property of the Hilbert curve: every step moves to a
        // grid neighbor (L1 distance exactly 1). Check several shapes.
        for (dim, bits) in [
            (1usize, 4u32),
            (2, 1),
            (2, 2),
            (2, 4),
            (3, 2),
            (3, 3),
            (4, 2),
        ] {
            let h = HilbertCurve::new(dim, bits);
            let mut prev = vec![0u32; dim];
            let mut cur = vec![0u32; dim];
            h.coords_of(0, &mut prev);
            for i in 1..h.len() {
                h.coords_of(i, &mut cur);
                let l1: u32 = prev.iter().zip(&cur).map(|(&a, &b)| a.abs_diff(b)).sum();
                assert_eq!(l1, 1, "non-adjacent step at {i} for dim={dim}, bits={bits}");
                std::mem::swap(&mut prev, &mut cur);
            }
        }
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        for (dim, bits) in [(2usize, 3u32), (3, 2), (4, 2), (5, 1)] {
            let h = HilbertCurve::new(dim, bits);
            let mut c = vec![0u32; dim];
            for i in 0..h.len() {
                h.coords_of(i, &mut c);
                assert_eq!(h.index_of(&c), i, "roundtrip failed dim={dim}, bits={bits}");
            }
        }
    }

    #[test]
    fn bijective_small() {
        let h = HilbertCurve::new(2, 3);
        let mut seen = vec![false; h.len() as usize];
        for x in 0..8u32 {
            for y in 0..8u32 {
                let i = h.index_of(&[x, y]) as usize;
                assert!(!seen[i], "index {i} hit twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn starts_at_origin() {
        for (dim, bits) in [(2usize, 4u32), (3, 3), (4, 2)] {
            let h = HilbertCurve::new(dim, bits);
            let mut c = vec![99u32; dim];
            h.coords_of(0, &mut c);
            assert!(c.iter().all(|&v| v == 0), "curve must start at the origin");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coordinate_out_of_range_panics() {
        let h = HilbertCurve::new(2, 2);
        let _ = h.index_of(&[4, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let h = HilbertCurve::new(2, 2);
        let mut c = [0u32; 2];
        h.coords_of(16, &mut c);
    }

    #[test]
    fn one_dimensional_is_identity() {
        let h = HilbertCurve::new(1, 5);
        for v in 0..32u32 {
            assert_eq!(h.index_of(&[v]), v as u128);
        }
    }
}
