//! The onion curve: shell-by-shell linearization with near-optimal
//! clustering (Xu, Nguyen & Tirthapura, "The onion curve", 2018).
//!
//! The curve visits the grid `[0, n)^d` (`n = 2^bits`) one concentric shell
//! at a time, outermost first. Shell `l` holds the cells whose Chebyshev
//! distance from the boundary is exactly `l`, i.e. `min_k min(x_k,
//! n-1-x_k) = l`; peeling shells like the layers of an onion is what gives
//! the curve its clustering property for range queries that hug the
//! boundary or the center.
//!
//! Within a shell of side `s = n - 2l` the traversal is recursive in the
//! dimension:
//!
//! * `d = 2` — the shell is a ring, walked as one continuous cycle
//!   (bottom row, right column, top row reversed, left column reversed).
//!   Consecutive indices are always Chebyshev-adjacent in 2-D, including
//!   across shell boundaries: each ring ends at `(0, 1)` of its frame,
//!   one step from the next ring's `(1, 1)` start.
//! * `d >= 3` — the shell splits along the last coordinate `z` into a
//!   bottom cap (`z = 0`, a full `(d-1)`-cube, serpentine order), `s - 2`
//!   middle rings (each a `(d-1)`-dimensional shell, recursively), and a
//!   top cap (`z = s-1`, serpentine). Like the published curve this
//!   tolerates a bounded number of discontinuities at cap/ring seams —
//!   `O(n^(d-2))` jump steps out of `n^d` cells — which the tests bound.
//!
//! Shell sizes telescope, so the rank of a whole shell prefix is closed
//! form: cells strictly outside side-`s` shells number `n^d - s^d`. Both
//! directions of the bijection therefore run in `O(d log n)`.

use super::{check_coords, check_params, SpaceFillingCurve};

/// Shell-ordered onion traversal of `[0, 2^bits)^dim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnionCurve {
    dim: usize,
    bits: u32,
}

impl OnionCurve {
    /// Creates a curve over `[0, 2^bits)^dim`.
    ///
    /// # Panics
    /// Panics if `dim` is not in `1..=MAX_DIM`, `bits` not in `1..=31`, or
    /// the total index would overflow `u128`.
    pub fn new(dim: usize, bits: u32) -> Self {
        check_params(dim, bits);
        OnionCurve { dim, bits }
    }
}

/// `s^d` in `u128`; callers guarantee `s^d <= 2^126`.
fn powd(s: u64, d: usize) -> u128 {
    (s as u128).pow(d as u32)
}

/// Number of cells in one `d`-dimensional shell of side `s` (`s >= 2`).
fn shell_size(d: usize, s: u64) -> u128 {
    powd(s, d) - powd(s.saturating_sub(2), d)
}

/// Boustrophedon rank over the full cube `[0, s)^k`: the last coordinate
/// varies slowest and every axis reverses direction whenever a more
/// significant digit is odd, so consecutive ranks differ by one unit step.
fn serp_rank(y: &[u32], s: u64) -> u128 {
    let mut r: u128 = 0;
    let mut flip = false;
    for &c in y.iter().rev() {
        let digit = if flip { s - 1 - c as u64 } else { c as u64 };
        r = r * s as u128 + digit as u128;
        if digit % 2 == 1 {
            flip = !flip;
        }
    }
    r
}

/// Inverse of [`serp_rank`].
fn serp_unrank(mut r: u128, s: u64, out: &mut [u32]) {
    let mut flip = false;
    for i in (0..out.len()).rev() {
        let w = powd(s, i);
        let digit = (r / w) as u64;
        r %= w;
        out[i] = if flip { s - 1 - digit } else { digit } as u32;
        if digit % 2 == 1 {
            flip = !flip;
        }
    }
}

/// Rank of a cell within one `d`-dimensional shell of side `s`.
///
/// `y` is normalized to the shell's frame (`y_k` in `[0, s)`, at least one
/// coordinate extreme).
fn shell_rank(d: usize, s: u64, y: &[u32]) -> u128 {
    match d {
        1 => {
            if y[0] == 0 {
                0
            } else {
                1
            }
        }
        2 => {
            // One continuous ring cycle of 4(s-1) cells.
            let (x, z) = (y[0] as u128, y[1] as u128);
            let s = s as u128;
            if z == 0 {
                x
            } else if x == s - 1 {
                (s - 1) + z
            } else if z == s - 1 {
                3 * (s - 1) - x
            } else {
                4 * (s - 1) - z
            }
        }
        _ => {
            let cap = powd(s, d - 1);
            let ring = shell_size(d - 1, s);
            let z = y[d - 1] as u64;
            if z == 0 {
                serp_rank(&y[..d - 1], s)
            } else if z < s - 1 {
                cap + (z - 1) as u128 * ring + shell_rank(d - 1, s, &y[..d - 1])
            } else {
                cap + (s - 2) as u128 * ring + serp_rank(&y[..d - 1], s)
            }
        }
    }
}

/// Inverse of [`shell_rank`].
fn shell_unrank(d: usize, s: u64, r: u128, out: &mut [u32]) {
    match d {
        1 => out[0] = if r == 0 { 0 } else { (s - 1) as u32 },
        2 => {
            let p = s as u128 - 1;
            let (x, z) = if r <= p {
                (r, 0)
            } else if r <= 2 * p {
                (p, r - p)
            } else if r <= 3 * p {
                (3 * p - r, p)
            } else {
                (0, 4 * p - r)
            };
            out[0] = x as u32;
            out[1] = z as u32;
        }
        _ => {
            let cap = powd(s, d - 1);
            let ring = shell_size(d - 1, s);
            if r < cap {
                out[d - 1] = 0;
                serp_unrank(r, s, &mut out[..d - 1]);
            } else if r < cap + (s - 2) as u128 * ring {
                let t = r - cap;
                out[d - 1] = 1 + (t / ring) as u32;
                shell_unrank(d - 1, s, t % ring, &mut out[..d - 1]);
            } else {
                out[d - 1] = (s - 1) as u32;
                serp_unrank(r - cap - (s - 2) as u128 * ring, s, &mut out[..d - 1]);
            }
        }
    }
}

impl SpaceFillingCurve for OnionCurve {
    fn dim(&self) -> usize {
        self.dim
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn index_of(&self, coords: &[u32]) -> u128 {
        check_coords(coords, self.dim, self.bits);
        let n = 1u64 << self.bits;
        let level = coords
            .iter()
            .map(|&c| (c as u64).min(n - 1 - c as u64))
            .min()
            .expect("dim >= 1");
        let s = n - 2 * level;
        let mut y = [0u32; crate::point::MAX_DIM];
        for (o, &c) in y.iter_mut().zip(coords) {
            *o = c - level as u32;
        }
        // Shells telescope: everything strictly outside side-s shells.
        let outside = powd(n, self.dim) - powd(s, self.dim);
        outside + shell_rank(self.dim, s, &y[..self.dim])
    }

    fn coords_of(&self, index: u128, out: &mut [u32]) {
        assert_eq!(out.len(), self.dim, "coordinate count mismatch");
        assert!(index < self.len(), "index {index} out of range");
        let n = 1u64 << self.bits;
        let total = powd(n, self.dim);
        // Largest level whose shell prefix still fits under `index`.
        let (mut lo, mut hi) = (0u64, n / 2 - 1);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if total - powd(n - 2 * mid, self.dim) <= index {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let s = n - 2 * lo;
        shell_unrank(self.dim, s, index - (total - powd(s, self.dim)), out);
        for c in out.iter_mut() {
            *c += lo as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chebyshev(a: &[u32], b: &[u32]) -> u32 {
        a.iter().zip(b).map(|(&x, &y)| x.abs_diff(y)).max().unwrap()
    }

    #[test]
    fn bijective_and_roundtrip_small() {
        for (dim, bits) in [(1, 3), (2, 3), (3, 2), (4, 2), (5, 1), (6, 1), (2, 1)] {
            let curve = OnionCurve::new(dim, bits);
            let mut seen = vec![false; curve.len() as usize];
            let mut coords = vec![0u32; dim];
            for idx in 0..curve.len() {
                curve.coords_of(idx, &mut coords);
                let back = curve.index_of(&coords);
                assert_eq!(back, idx, "roundtrip failed at dim={dim} bits={bits}");
                assert!(!seen[idx as usize]);
                seen[idx as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn two_dim_walk_is_fully_continuous() {
        let curve = OnionCurve::new(2, 4);
        let mut prev = [0u32; 2];
        let mut cur = [0u32; 2];
        curve.coords_of(0, &mut prev);
        assert_eq!(prev, [0, 0], "curve starts at the origin corner");
        for idx in 1..curve.len() {
            curve.coords_of(idx, &mut cur);
            assert_eq!(
                chebyshev(&prev, &cur),
                1,
                "2-D onion walk must be continuous, broke at index {idx}"
            );
            prev = cur;
        }
    }

    #[test]
    fn shell_order_is_outside_in() {
        let curve = OnionCurve::new(2, 3);
        let n = 8u32;
        let mut coords = [0u32; 2];
        let mut last_level = 0;
        for idx in 0..curve.len() {
            curve.coords_of(idx, &mut coords);
            let level = coords.iter().map(|&c| c.min(n - 1 - c)).min().unwrap();
            assert!(level >= last_level, "shells must not interleave");
            last_level = level;
        }
        assert_eq!(last_level, n / 2 - 1);
    }

    #[test]
    fn higher_dim_jumps_are_rare() {
        for (dim, bits) in [(3, 2), (4, 2), (5, 1), (6, 1)] {
            let curve = OnionCurve::new(dim, bits);
            let mut prev = vec![0u32; dim];
            let mut cur = vec![0u32; dim];
            curve.coords_of(0, &mut prev);
            let mut jumps = 0u64;
            for idx in 1..curve.len() {
                curve.coords_of(idx, &mut cur);
                if chebyshev(&prev, &cur) > 1 {
                    jumps += 1;
                }
                prev.copy_from_slice(&cur);
            }
            let frac = jumps as f64 / (curve.len() - 1) as f64;
            assert!(
                frac <= 0.15,
                "dim={dim} bits={bits}: {jumps} jumps ({frac:.3}) — onion \
                 discontinuities should stay a small fraction"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_coord() {
        let curve = OnionCurve::new(2, 2);
        curve.index_of(&[4, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_index() {
        let curve = OnionCurve::new(2, 2);
        let mut out = [0u32; 2];
        curve.coords_of(16, &mut out);
    }
}
