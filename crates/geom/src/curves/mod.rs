//! Space-filling curves used by index-based declustering.
//!
//! The HCAM scheme (Faloutsos & Bhagwat, PDIS '93) linearizes the grid cells
//! with a Hilbert curve and deals them to disks round-robin. The paper also
//! cites the folklore result that the Hilbert curve clusters better than
//! column-wise scan, Z-curve and Gray coding; we implement all four so the
//! claim can be measured (ablation A2 in `DESIGN.md`).
//!
//! All curves map integer cell coordinates in `[0, 2^bits)^dim` to a linear
//! index in `[0, 2^(bits*dim))` and back. Grids whose side is not a power of
//! two are embedded in the enclosing power-of-two cube (the standard HCAM
//! treatment): indices are still unique, only their density changes.

mod gray;
mod hilbert;
mod onion;
mod scan;
mod zorder;

pub use gray::GrayCurve;
pub use hilbert::HilbertCurve;
pub use onion::OnionCurve;
pub use scan::ScanCurve;
pub use zorder::ZOrderCurve;

/// A bijective linearization of the integer grid `[0, 2^bits)^dim`.
pub trait SpaceFillingCurve {
    /// Number of dimensions the curve traverses.
    fn dim(&self) -> usize;

    /// Bits of resolution per dimension; coordinates must be `< 2^bits`.
    fn bits(&self) -> u32;

    /// Maps grid coordinates to the curve's linear index.
    ///
    /// # Panics
    /// Panics if `coords.len() != self.dim()` or any coordinate is out of
    /// range.
    fn index_of(&self, coords: &[u32]) -> u128;

    /// Maps a linear index back to grid coordinates, writing into `out`.
    ///
    /// # Panics
    /// Panics if `out.len() != self.dim()` or the index is out of range.
    fn coords_of(&self, index: u128, out: &mut [u32]);

    /// Total number of cells traversed (`2^(bits*dim)`).
    fn len(&self) -> u128 {
        1u128 << (self.bits() as u128 * self.dim() as u128)
    }

    /// Whether the curve covers zero cells (never true for valid curves).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Validates constructor arguments shared by all curve types.
pub(crate) fn check_params(dim: usize, bits: u32) {
    assert!(
        (1..=crate::point::MAX_DIM).contains(&dim),
        "curve dimensionality must be in 1..={}, got {dim}",
        crate::point::MAX_DIM
    );
    assert!(
        (1..=31).contains(&bits),
        "bits must be in 1..=31, got {bits}"
    );
    assert!(
        (bits as usize) * dim <= 126,
        "index would overflow u128: bits={bits}, dim={dim}"
    );
}

/// Validates coordinates against the curve's extent.
pub(crate) fn check_coords(coords: &[u32], dim: usize, bits: u32) {
    assert_eq!(coords.len(), dim, "coordinate count mismatch");
    let max = 1u32 << bits;
    for (i, &c) in coords.iter().enumerate() {
        assert!(c < max, "coordinate {c} on dim {i} out of range (< {max})");
    }
}

/// Smallest `bits` such that every side of a grid with the given cell counts
/// fits in `2^bits`.
pub fn bits_for_sides(sides: &[usize]) -> u32 {
    let max_side = sides.iter().copied().max().unwrap_or(1).max(1);
    let mut bits = 1;
    while (1usize << bits) < max_side {
        bits += 1;
    }
    bits
}

/// Interleaves `dim` coordinate words of `bits` bits each into a single
/// index, most-significant bit plane first, dimension 0 highest.
pub(crate) fn interleave(coords: &[u32], bits: u32) -> u128 {
    let dim = coords.len();
    let mut out: u128 = 0;
    for plane in (0..bits).rev() {
        for &c in coords.iter().take(dim) {
            out = (out << 1) | (((c >> plane) & 1) as u128);
        }
    }
    out
}

/// Inverse of [`interleave`].
pub(crate) fn deinterleave(index: u128, bits: u32, out: &mut [u32]) {
    let dim = out.len();
    out.fill(0);
    let mut idx = index;
    for plane in 0..bits {
        for i in (0..dim).rev() {
            out[i] |= ((idx & 1) as u32) << plane;
            idx >>= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_roundtrip() {
        let coords = [0b101u32, 0b011u32];
        let idx = interleave(&coords, 3);
        // bit planes MSB-first: (1,0) (0,1) (1,1) -> 0b10_01_11
        assert_eq!(idx, 0b100111);
        let mut out = [0u32; 2];
        deinterleave(idx, 3, &mut out);
        assert_eq!(out, coords);
    }

    #[test]
    fn bits_for_sides_works() {
        assert_eq!(bits_for_sides(&[1]), 1);
        assert_eq!(bits_for_sides(&[2]), 1);
        assert_eq!(bits_for_sides(&[3]), 2);
        assert_eq!(bits_for_sides(&[4]), 2);
        assert_eq!(bits_for_sides(&[5, 16, 9]), 4);
        assert_eq!(bits_for_sides(&[]), 1);
        assert_eq!(bits_for_sides(&[1000]), 10);
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn zero_bits_rejected() {
        check_params(2, 0);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_rejected() {
        check_params(6, 22);
    }
}
