//! Proximity measures between box-shaped regions.
//!
//! The `minimax` declustering algorithm (paper §3.1) weights the edges of the
//! bucket graph by the probability that two buckets are accessed by the same
//! range query. The paper adopts the *proximity index* of Kamel & Faloutsos
//! (Parallel R-trees, SIGMOD '92), which — unlike the Euclidean distance
//! between centers — distinguishes pairs of *partially overlapped* boxes.
//!
//! For two d-dimensional boxes `R`, `S` inside a domain whose extent along
//! dimension `i` is `L_i`:
//!
//! ```text
//! Proximity(R, S)      = prod_i Proximity(R_i, S_i)
//! Proximity(R_i, S_i)  = (1 + 2*delta_i) / 3     if R_i and S_i intersect
//!                      = (1 - Delta_i)^2 / 3     if R_i and S_i are disjoint
//! ```
//!
//! where `delta_i` is the length of the intersection of the projections and
//! `Delta_i` the gap between them, both normalized by `L_i`. Both ratios lie
//! in `[0, 1]`, so each per-dimension factor lies in `(0, 1]` and the product
//! is monotonically larger for "closer" pairs.

use crate::rect::Rect;

/// Kamel–Faloutsos proximity index between two boxes within `domain`.
///
/// Returns a value in `(0, 1]`; larger means the boxes are more likely to be
/// touched by the same range query. Identical boxes covering the whole domain
/// score exactly 1.
///
/// # Panics
/// Panics (debug) if the boxes or domain disagree on dimensionality, and if
/// the domain has a zero-length side.
pub fn proximity_index(r: &Rect, s: &Rect, domain: &Rect) -> f64 {
    debug_assert_eq!(r.dim(), s.dim());
    debug_assert_eq!(r.dim(), domain.dim());
    let mut p = 1.0;
    for i in 0..r.dim() {
        let li = domain.side(i);
        debug_assert!(li > 0.0, "domain has zero extent on dim {i}");
        let overlap = r.overlap_on(s, i);
        // Projections intersect if the gap is zero; note that *touching*
        // projections (shared boundary) count as intersecting with delta = 0,
        // which matches the closed-interval convention of the paper.
        let gap = r.gap_on(s, i);
        let f = if gap == 0.0 {
            let delta = overlap / li;
            (1.0 + 2.0 * delta) / 3.0
        } else {
            let cap_delta = (gap / li).min(1.0);
            (1.0 - cap_delta) * (1.0 - cap_delta) / 3.0
        };
        p *= f;
    }
    p
}

/// Euclidean distance between the centers of two boxes.
///
/// The alternative edge weight the paper considered and rejected for
/// `minimax`; kept for the ablation experiment.
#[inline]
pub fn center_distance(r: &Rect, s: &Rect) -> f64 {
    r.center().dist(&s.center())
}

/// Minimum Euclidean distance between any two points of the boxes
/// (zero if they intersect).
pub fn min_distance(r: &Rect, s: &Rect) -> f64 {
    debug_assert_eq!(r.dim(), s.dim());
    let mut acc = 0.0;
    for i in 0..r.dim() {
        let g = r.gap_on(s, i);
        acc += g * g;
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn unit_domain() -> Rect {
        Rect::new2(0.0, 0.0, 1.0, 1.0)
    }

    fn r2(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new2(x0, y0, x1, y1)
    }

    #[test]
    fn identical_full_domain_boxes_score_one() {
        let d = unit_domain();
        let p = proximity_index(&d, &d, &d);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_dim_factor_formulas() {
        let d = unit_domain();
        // Two boxes overlapping on x by 0.2, identical on y (overlap 1.0):
        // factor_x = (1 + 0.4)/3, factor_y = (1 + 2)/3 = 1.
        let a = r2(0.0, 0.0, 0.5, 1.0);
        let b = r2(0.3, 0.0, 1.0, 1.0);
        let expected = ((1.0 + 2.0 * 0.2) / 3.0) * 1.0;
        assert!((proximity_index(&a, &b, &d) - expected).abs() < 1e-12);
    }

    #[test]
    fn disjoint_factor_formula() {
        let d = unit_domain();
        // Gap of 0.4 on x, full overlap on y.
        let a = r2(0.0, 0.0, 0.1, 1.0);
        let b = r2(0.5, 0.0, 1.0, 1.0);
        let expected = ((1.0 - 0.4) * (1.0 - 0.4) / 3.0) * 1.0;
        assert!((proximity_index(&a, &b, &d) - expected).abs() < 1e-12);
    }

    #[test]
    fn touching_counts_as_intersecting_with_zero_delta() {
        let d = unit_domain();
        let a = r2(0.0, 0.0, 0.5, 1.0);
        let b = r2(0.5, 0.0, 1.0, 1.0);
        // factor_x = (1 + 0)/3 = 1/3 — the "just intersecting" value.
        let expected = (1.0 / 3.0) * 1.0;
        assert!((proximity_index(&a, &b, &d) - expected).abs() < 1e-12);
    }

    #[test]
    fn closer_pairs_score_higher() {
        let d = unit_domain();
        let base = r2(0.0, 0.0, 0.2, 0.2);
        let near = r2(0.25, 0.0, 0.45, 0.2);
        let far = r2(0.7, 0.0, 0.9, 0.2);
        let p_near = proximity_index(&base, &near, &d);
        let p_far = proximity_index(&base, &far, &d);
        assert!(p_near > p_far, "{p_near} vs {p_far}");
    }

    #[test]
    fn symmetric() {
        let d = unit_domain();
        let a = r2(0.0, 0.1, 0.3, 0.4);
        let b = r2(0.5, 0.2, 0.9, 0.8);
        assert_eq!(proximity_index(&a, &b, &d), proximity_index(&b, &a, &d));
    }

    #[test]
    fn bounded_in_unit_interval() {
        let d = unit_domain();
        let a = r2(0.0, 0.0, 0.01, 0.01);
        let b = r2(0.99, 0.99, 1.0, 1.0);
        let p = proximity_index(&a, &b, &d);
        assert!(p > 0.0 && p <= 1.0);
    }

    #[test]
    fn center_and_min_distance() {
        let a = r2(0.0, 0.0, 2.0, 2.0);
        let b = r2(5.0, 0.0, 7.0, 2.0);
        assert_eq!(center_distance(&a, &b), 5.0);
        assert_eq!(min_distance(&a, &b), 3.0);
        let c = r2(1.0, 1.0, 3.0, 3.0);
        assert_eq!(min_distance(&a, &c), 0.0);
    }

    #[test]
    fn three_dimensional_product() {
        let d = Rect::new(Point::new3(0.0, 0.0, 0.0), Point::new3(1.0, 1.0, 1.0));
        let a = Rect::new(Point::new3(0.0, 0.0, 0.0), Point::new3(0.5, 0.5, 0.5));
        let p = proximity_index(&a, &a, &d);
        // Each dim: (1 + 2*0.5)/3 = 2/3; product = (2/3)^3.
        let expected = (2.0f64 / 3.0).powi(3);
        assert!((p - expected).abs() < 1e-12);
    }
}
