//! Fixed-capacity d-dimensional points.
//!
//! The paper works with 2-, 3- and 4-dimensional datasets; we support up to
//! [`MAX_DIM`] dimensions with an inline array so that points never touch the
//! heap. This matters: dataset generators and the grid-file loader move
//! millions of points around, and a `Vec<f64>`-backed point would cost one
//! allocation each.

use std::fmt;

/// Maximum supported dimensionality.
///
/// The paper's datasets are 2-D (`uniform.2d`, `hot.2d`, `correl.2d`),
/// 3-D (`DSMC.3d`, `stock.3d`) and 4-D (the spatio-temporal SP-2 dataset);
/// 6 leaves headroom for extension experiments without bloating the type.
pub const MAX_DIM: usize = 6;

/// A point in d-dimensional space (`d <= MAX_DIM`), stored inline.
#[derive(Clone, Copy, PartialEq)]
pub struct Point {
    coords: [f64; MAX_DIM],
    dim: u8,
}

impl Point {
    /// Creates a point from a coordinate slice.
    ///
    /// # Panics
    /// Panics if `coords.len()` is zero or exceeds [`MAX_DIM`].
    #[inline]
    pub fn new(coords: &[f64]) -> Self {
        assert!(
            !coords.is_empty() && coords.len() <= MAX_DIM,
            "point dimensionality must be in 1..={MAX_DIM}, got {}",
            coords.len()
        );
        let mut c = [0.0; MAX_DIM];
        c[..coords.len()].copy_from_slice(coords);
        Point {
            coords: c,
            dim: coords.len() as u8,
        }
    }

    /// Creates a 2-D point.
    #[inline]
    pub fn new2(x: f64, y: f64) -> Self {
        Self::new(&[x, y])
    }

    /// Creates a 3-D point.
    #[inline]
    pub fn new3(x: f64, y: f64, z: f64) -> Self {
        Self::new(&[x, y, z])
    }

    /// Creates a 4-D point.
    #[inline]
    pub fn new4(x: f64, y: f64, z: f64, w: f64) -> Self {
        Self::new(&[x, y, z, w])
    }

    /// The dimensionality of this point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// The coordinates as a slice of length `self.dim()`.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords[..self.dim as usize]
    }

    /// Mutable access to the coordinates.
    #[inline]
    pub fn coords_mut(&mut self) -> &mut [f64] {
        let d = self.dim as usize;
        &mut self.coords[..d]
    }

    /// The `i`-th coordinate.
    ///
    /// # Panics
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.dim as usize, "coordinate index out of range");
        self.coords[i]
    }

    /// Squared Euclidean distance to another point of the same dimension.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dim, other.dim);
        let mut acc = 0.0;
        for i in 0..self.dim as usize {
            let d = self.coords[i] - other.coords[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to another point of the same dimension.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point(")?;
        for (i, c) in self.coords().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new2(x, y)
    }
}

impl From<(f64, f64, f64)> for Point {
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Point::new3(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let p = Point::new(&[1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
        assert_eq!(p.get(1), 2.0);
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(Point::new2(1.0, 2.0), Point::new(&[1.0, 2.0]));
        assert_eq!(Point::new3(1.0, 2.0, 3.0), Point::new(&[1.0, 2.0, 3.0]));
        assert_eq!(
            Point::new4(1.0, 2.0, 3.0, 4.0),
            Point::new(&[1.0, 2.0, 3.0, 4.0])
        );
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn zero_dim_rejected() {
        let _ = Point::new(&[]);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn too_many_dims_rejected() {
        let _ = Point::new(&[0.0; MAX_DIM + 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let p = Point::new2(0.0, 0.0);
        let _ = p.get(2);
    }

    #[test]
    fn distance() {
        let a = Point::new2(0.0, 0.0);
        let b = Point::new2(3.0, 4.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn mutation() {
        let mut p = Point::new2(1.0, 1.0);
        p.coords_mut()[0] = 9.0;
        assert_eq!(p.get(0), 9.0);
    }

    #[test]
    fn from_tuples() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p.dim(), 2);
        let q: Point = (1.0, 2.0, 3.0).into();
        assert_eq!(q.dim(), 3);
    }

    #[test]
    fn points_are_small() {
        // One cache line: the layout argument for inline storage.
        assert!(std::mem::size_of::<Point>() <= 64);
    }
}
