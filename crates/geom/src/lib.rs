//! Geometry substrate for the `pargrid` workspace.
//!
//! This crate provides the low-level geometric machinery that the grid file
//! and the declustering algorithms are built on:
//!
//! * [`Point`] / [`Rect`] — fixed-capacity, stack-allocated d-dimensional
//!   points and axis-aligned boxes (up to [`MAX_DIM`] dimensions),
//! * [`proximity`] — the Kamel–Faloutsos *proximity index* used by the
//!   `minimax` declustering algorithm, plus Euclidean measures,
//! * [`curves`] — space-filling curves (d-dimensional Hilbert, Z-order,
//!   Gray-code and column scan) used by index-based declustering (HCAM and
//!   its ablation variants).
//!
//! Everything here is pure computation with no I/O and no global state, so it
//! is trivially `Send + Sync` and safe to use from the parallel engine.
//!
//! ```
//! use pargrid_geom::{HilbertCurve, SpaceFillingCurve, Rect, proximity::proximity_index};
//!
//! // Hilbert curve: bijective, and consecutive indices are grid neighbors.
//! let curve = HilbertCurve::new(2, 4); // 16x16 grid
//! let idx = curve.index_of(&[3, 5]);
//! let mut back = [0u32; 2];
//! curve.coords_of(idx, &mut back);
//! assert_eq!(back, [3, 5]);
//!
//! // Proximity index: adjacent boxes score higher than distant ones.
//! let domain = Rect::new2(0.0, 0.0, 10.0, 10.0);
//! let a = Rect::new2(0.0, 0.0, 1.0, 1.0);
//! let near = Rect::new2(1.0, 0.0, 2.0, 1.0);
//! let far = Rect::new2(8.0, 8.0, 9.0, 9.0);
//! assert!(proximity_index(&a, &near, &domain) > proximity_index(&a, &far, &domain));
//! ```

#![warn(missing_docs)]

pub mod curves;
pub mod point;
pub mod proximity;
pub mod rect;

pub use curves::{GrayCurve, HilbertCurve, OnionCurve, ScanCurve, SpaceFillingCurve, ZOrderCurve};
pub use point::{Point, MAX_DIM};
pub use rect::Rect;
