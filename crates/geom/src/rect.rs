//! Axis-aligned d-dimensional rectangles (boxes).
//!
//! Grid-file buckets and range queries are both axis-aligned boxes; the
//! declustering algorithms reason about their overlap and separation.
//! Boxes are closed on the low side and open on the high side
//! (`lo <= x < hi`) except where noted — this is the natural convention for
//! grid cells, which tile the domain without double-counting boundaries.

use crate::point::{Point, MAX_DIM};

/// An axis-aligned box `[lo, hi)` in d-dimensional space.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates a box from its low and high corners.
    ///
    /// # Panics
    /// Panics if the corners have different dimensionality or if
    /// `lo[i] > hi[i]` for any dimension (empty boxes with `lo == hi`
    /// are allowed).
    #[inline]
    pub fn new(lo: Point, hi: Point) -> Self {
        assert_eq!(lo.dim(), hi.dim(), "corner dimensionality mismatch");
        for i in 0..lo.dim() {
            assert!(
                lo.get(i) <= hi.get(i),
                "inverted box on dim {i}: {} > {}",
                lo.get(i),
                hi.get(i)
            );
        }
        Rect { lo, hi }
    }

    /// Creates a 2-D box from `(x0, y0)`–`(x1, y1)`.
    #[inline]
    pub fn new2(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect::new(Point::new2(x0, y0), Point::new2(x1, y1))
    }

    /// The dimensionality of the box.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.dim()
    }

    /// Low corner.
    #[inline]
    pub fn lo(&self) -> &Point {
        &self.lo
    }

    /// High corner.
    #[inline]
    pub fn hi(&self) -> &Point {
        &self.hi
    }

    /// Side length along dimension `i`.
    #[inline]
    pub fn side(&self, i: usize) -> f64 {
        self.hi.get(i) - self.lo.get(i)
    }

    /// Volume (area in 2-D) of the box.
    #[inline]
    pub fn volume(&self) -> f64 {
        let mut v = 1.0;
        for i in 0..self.dim() {
            v *= self.side(i);
        }
        v
    }

    /// Center point of the box.
    #[inline]
    pub fn center(&self) -> Point {
        let mut c = [0.0; MAX_DIM];
        for (i, ci) in c.iter_mut().take(self.dim()).enumerate() {
            *ci = 0.5 * (self.lo.get(i) + self.hi.get(i));
        }
        Point::new(&c[..self.dim()])
    }

    /// Whether the point lies in the half-open box `[lo, hi)`.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        debug_assert_eq!(self.dim(), p.dim());
        for i in 0..self.dim() {
            let x = p.get(i);
            if x < self.lo.get(i) || x >= self.hi.get(i) {
                return false;
            }
        }
        true
    }

    /// Whether the point lies in the *closed* box `[lo, hi]`.
    ///
    /// Range queries use the closed convention so that a query whose high
    /// edge coincides with the domain boundary still matches boundary points.
    #[inline]
    pub fn contains_closed(&self, p: &Point) -> bool {
        debug_assert_eq!(self.dim(), p.dim());
        for i in 0..self.dim() {
            let x = p.get(i);
            if x < self.lo.get(i) || x > self.hi.get(i) {
                return false;
            }
        }
        true
    }

    /// Whether two boxes intersect (closed-interval test on every axis).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        for i in 0..self.dim() {
            if self.lo.get(i) > other.hi.get(i) || other.lo.get(i) > self.hi.get(i) {
                return false;
            }
        }
        true
    }

    /// Whether `other` is fully contained in `self` (closed comparison).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        for i in 0..self.dim() {
            if other.lo.get(i) < self.lo.get(i) || other.hi.get(i) > self.hi.get(i) {
                return false;
            }
        }
        true
    }

    /// The intersection box, or `None` if the boxes are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let d = self.dim();
        let mut lo = [0.0; MAX_DIM];
        let mut hi = [0.0; MAX_DIM];
        for i in 0..d {
            lo[i] = self.lo.get(i).max(other.lo.get(i));
            hi[i] = self.hi.get(i).min(other.hi.get(i));
        }
        Some(Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d])))
    }

    /// The smallest box containing both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dim(), other.dim());
        let d = self.dim();
        let mut lo = [0.0; MAX_DIM];
        let mut hi = [0.0; MAX_DIM];
        for i in 0..d {
            lo[i] = self.lo.get(i).min(other.lo.get(i));
            hi[i] = self.hi.get(i).max(other.hi.get(i));
        }
        Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d]))
    }

    /// Clamps the box so it lies inside `domain`.
    pub fn clamp_to(&self, domain: &Rect) -> Rect {
        debug_assert_eq!(self.dim(), domain.dim());
        let d = self.dim();
        let mut lo = [0.0; MAX_DIM];
        let mut hi = [0.0; MAX_DIM];
        for i in 0..d {
            lo[i] = self.lo.get(i).clamp(domain.lo.get(i), domain.hi.get(i));
            hi[i] = self.hi.get(i).clamp(domain.lo.get(i), domain.hi.get(i));
            if lo[i] > hi[i] {
                lo[i] = hi[i];
            }
        }
        Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d]))
    }

    /// Length of the overlap of the two boxes' projections on axis `i`
    /// (zero if disjoint on that axis).
    #[inline]
    pub fn overlap_on(&self, other: &Rect, i: usize) -> f64 {
        let lo = self.lo.get(i).max(other.lo.get(i));
        let hi = self.hi.get(i).min(other.hi.get(i));
        (hi - lo).max(0.0)
    }

    /// Gap between the two boxes' projections on axis `i`
    /// (zero if they touch or overlap on that axis).
    #[inline]
    pub fn gap_on(&self, other: &Rect, i: usize) -> f64 {
        let lo = self.lo.get(i).max(other.lo.get(i));
        let hi = self.hi.get(i).min(other.hi.get(i));
        (lo - hi).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new2(x0, y0, x1, y1)
    }

    #[test]
    fn basic_properties() {
        let r = r2(0.0, 0.0, 2.0, 3.0);
        assert_eq!(r.dim(), 2);
        assert_eq!(r.side(0), 2.0);
        assert_eq!(r.side(1), 3.0);
        assert_eq!(r.volume(), 6.0);
        assert_eq!(r.center(), Point::new2(1.0, 1.5));
    }

    #[test]
    #[should_panic(expected = "inverted box")]
    fn inverted_rejected() {
        let _ = r2(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn empty_box_allowed() {
        let r = r2(1.0, 1.0, 1.0, 1.0);
        assert_eq!(r.volume(), 0.0);
    }

    #[test]
    fn half_open_contains() {
        let r = r2(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(&Point::new2(0.0, 0.0)));
        assert!(!r.contains(&Point::new2(1.0, 0.5)));
        assert!(r.contains_closed(&Point::new2(1.0, 1.0)));
        assert!(!r.contains_closed(&Point::new2(1.0001, 1.0)));
    }

    #[test]
    fn intersection_and_union() {
        let a = r2(0.0, 0.0, 2.0, 2.0);
        let b = r2(1.0, 1.0, 3.0, 3.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, r2(1.0, 1.0, 2.0, 2.0));
        let u = a.union(&b);
        assert_eq!(u, r2(0.0, 0.0, 3.0, 3.0));
    }

    #[test]
    fn disjoint_boxes() {
        let a = r2(0.0, 0.0, 1.0, 1.0);
        let b = r2(2.0, 2.0, 3.0, 3.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.gap_on(&b, 0), 1.0);
        assert_eq!(a.overlap_on(&b, 0), 0.0);
    }

    #[test]
    fn touching_boxes_intersect() {
        // Closed test: boxes sharing an edge count as intersecting,
        // which is what the proximity index formula expects.
        let a = r2(0.0, 0.0, 1.0, 1.0);
        let b = r2(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_on(&b, 0), 0.0);
        assert_eq!(a.gap_on(&b, 0), 0.0);
    }

    #[test]
    fn containment() {
        let outer = r2(0.0, 0.0, 10.0, 10.0);
        let inner = r2(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
    }

    #[test]
    fn clamping() {
        let domain = r2(0.0, 0.0, 10.0, 10.0);
        let q = r2(-5.0, 8.0, 5.0, 15.0);
        let c = q.clamp_to(&domain);
        assert_eq!(c, r2(0.0, 8.0, 5.0, 10.0));
    }

    #[test]
    fn overlap_len() {
        let a = r2(0.0, 0.0, 2.0, 2.0);
        let b = r2(1.0, 0.0, 4.0, 2.0);
        assert_eq!(a.overlap_on(&b, 0), 1.0);
        assert_eq!(a.overlap_on(&b, 1), 2.0);
    }
}
