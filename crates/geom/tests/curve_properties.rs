//! Property-based tests for the space-filling curves and proximity index.

use pargrid_geom::{
    proximity::{center_distance, min_distance, proximity_index},
    GrayCurve, HilbertCurve, Point, Rect, ScanCurve, SpaceFillingCurve, ZOrderCurve,
};
use proptest::prelude::*;

fn coords_strategy(dim: usize, bits: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..(1u32 << bits), dim)
}

fn roundtrip_holds<C: SpaceFillingCurve>(curve: &C, coords: &[u32]) {
    let idx = curve.index_of(coords);
    assert!(idx < curve.len());
    let mut back = vec![0u32; curve.dim()];
    curve.coords_of(idx, &mut back);
    assert_eq!(&back, coords);
}

proptest! {
    #[test]
    fn hilbert_roundtrip((dim, bits) in (1usize..=5, 1u32..=8), seed in any::<u64>()) {
        // Derive in-range coordinates from the seed so dim/bits can vary.
        let curve = HilbertCurve::new(dim, bits);
        let mask = (1u64 << bits) - 1;
        let coords: Vec<u32> =
            (0..dim).map(|i| ((seed >> (i * 8)) & mask) as u32).collect();
        roundtrip_holds(&curve, &coords);
    }

    #[test]
    fn zorder_roundtrip(coords in coords_strategy(3, 6)) {
        roundtrip_holds(&ZOrderCurve::new(3, 6), &coords);
    }

    #[test]
    fn gray_roundtrip(coords in coords_strategy(3, 6)) {
        roundtrip_holds(&GrayCurve::new(3, 6), &coords);
    }

    #[test]
    fn scan_roundtrip(coords in coords_strategy(4, 5)) {
        roundtrip_holds(&ScanCurve::new(4, 5), &coords);
        roundtrip_holds(&ScanCurve::snake(4, 5), &coords);
    }

    #[test]
    fn hilbert_step_is_unit(start in 0u32..4000) {
        // Locality property along a random window of the big curve.
        let curve = HilbertCurve::new(2, 6);
        let mut a = [0u32; 2];
        let mut b = [0u32; 2];
        curve.coords_of(start as u128, &mut a);
        curve.coords_of(start as u128 + 1, &mut b);
        let l1 = a[0].abs_diff(b[0]) + a[1].abs_diff(b[1]);
        prop_assert_eq!(l1, 1);
    }

    #[test]
    fn proximity_is_symmetric_bounded(
        ax in 0.0f64..900.0, ay in 0.0f64..900.0,
        aw in 1.0f64..100.0, ah in 1.0f64..100.0,
        bx in 0.0f64..900.0, by in 0.0f64..900.0,
        bw in 1.0f64..100.0, bh in 1.0f64..100.0,
    ) {
        let domain = Rect::new2(0.0, 0.0, 1000.0, 1000.0);
        let a = Rect::new2(ax, ay, ax + aw, ay + ah);
        let b = Rect::new2(bx, by, bx + bw, by + bh);
        let pab = proximity_index(&a, &b, &domain);
        let pba = proximity_index(&b, &a, &domain);
        prop_assert!((pab - pba).abs() < 1e-12);
        prop_assert!(pab > 0.0 && pab <= 1.0);
    }

    #[test]
    fn self_proximity_dominates_translates(
        x in 0.0f64..500.0, y in 0.0f64..500.0,
        w in 10.0f64..100.0, h in 10.0f64..100.0,
        shift in 0.0f64..400.0,
    ) {
        // Moving a copy of the box away never increases proximity.
        let domain = Rect::new2(0.0, 0.0, 1000.0, 1000.0);
        let a = Rect::new2(x, y, x + w, y + h);
        let b = Rect::new2(x + shift, y, x + shift + w, y + h);
        let p_self = proximity_index(&a, &a, &domain);
        let p_b = proximity_index(&a, &b, &domain);
        prop_assert!(p_b <= p_self + 1e-12);
    }

    #[test]
    fn min_distance_le_center_distance(
        ax in 0.0f64..900.0, ay in 0.0f64..900.0,
        bx in 0.0f64..900.0, by in 0.0f64..900.0,
    ) {
        let a = Rect::new2(ax, ay, ax + 50.0, ay + 50.0);
        let b = Rect::new2(bx, by, bx + 50.0, by + 50.0);
        prop_assert!(min_distance(&a, &b) <= center_distance(&a, &b) + 1e-9);
    }

    #[test]
    fn rect_intersection_is_contained(
        ax in 0.0f64..500.0, ay in 0.0f64..500.0,
        bx in 0.0f64..500.0, by in 0.0f64..500.0,
    ) {
        let a = Rect::new2(ax, ay, ax + 300.0, ay + 300.0);
        let b = Rect::new2(bx, by, bx + 300.0, by + 300.0);
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(a.union(&b).contains_rect(&i));
        }
    }

    #[test]
    fn point_distance_triangle_inequality(
        a in prop::array::uniform2(-100.0f64..100.0),
        b in prop::array::uniform2(-100.0f64..100.0),
        c in prop::array::uniform2(-100.0f64..100.0),
    ) {
        let pa = Point::new(&a);
        let pb = Point::new(&b);
        let pc = Point::new(&c);
        prop_assert!(pa.dist(&pc) <= pa.dist(&pb) + pb.dist(&pc) + 1e-9);
    }
}

/// All four curves are bijections on the same small grid.
#[test]
fn all_curves_bijective_8x8() {
    let curves: Vec<Box<dyn SpaceFillingCurve>> = vec![
        Box::new(HilbertCurve::new(2, 3)),
        Box::new(ZOrderCurve::new(2, 3)),
        Box::new(GrayCurve::new(2, 3)),
        Box::new(ScanCurve::new(2, 3)),
        Box::new(ScanCurve::snake(2, 3)),
    ];
    for curve in &curves {
        let mut seen = [false; 64];
        for x in 0..8u32 {
            for y in 0..8u32 {
                let i = curve.index_of(&[x, y]) as usize;
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
