//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p pargrid-bench --bin repro -- all
//! cargo run --release -p pargrid-bench --bin repro -- fig4 table1
//! cargo run --release -p pargrid-bench --bin repro -- table4 --full
//! cargo run --release -p pargrid-bench --bin repro -- all --quick
//! ```
//!
//! Tables print to stdout and are also written as CSV under `results/`.

use pargrid_bench::experiments as exp;
use pargrid_bench::{NamedTable, Params};
use std::process::ExitCode;

const EXPERIMENTS: &[&str] = &[
    "fig2",
    "fig3",
    "fig4",
    "table1",
    "theorems",
    "fig5",
    "fig6",
    "table2",
    "table3",
    "fig7",
    "table4",
    "table5",
    "throughput",
    "tail",
    "degradation",
    "resilience",
    "serving",
    "frontier",
    "rebalance",
    "failover",
    "ablation-curves",
    "ablation-minimax",
    "ablation-cost",
    "ablation-gdm",
    "ablation-robustness",
    "ablation-growth",
    "ablation-query-dist",
    "tracing",
];

fn usage() -> ExitCode {
    eprintln!("usage: repro [--quick] [--full] [--out DIR] <experiment>... | all");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut params = Params::paper();
    let mut out_dir = "results".to_string();
    let mut chosen: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => params = Params::quick(),
            "--full" => params.full_scale = true,
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => params.seed = s,
                None => return usage(),
            },
            "--queries" => match args.next().and_then(|s| s.parse().ok()) {
                Some(q) => params.queries = q,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(d) => out_dir = d,
                None => return usage(),
            },
            "all" => chosen.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            name if EXPERIMENTS.contains(&name) => chosen.push(name.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }
    if chosen.is_empty() {
        return usage();
    }
    chosen.dedup();

    // `table4`/`table5` share one expensive dataset build; if both are
    // requested, run them together.
    if let (Some(i4), Some(_)) = (
        chosen.iter().position(|c| c == "table4"),
        chosen.iter().position(|c| c == "table5"),
    ) {
        chosen.retain(|c| c != "table4" && c != "table5");
        chosen.insert(i4.min(chosen.len()), "tables45".to_string());
    }

    for name in &chosen {
        let t0 = std::time::Instant::now();
        let tables: Vec<NamedTable> = match name.as_str() {
            "fig2" => exp::fig2::run(&params),
            "fig3" => exp::fig3::run(&params),
            "fig4" => exp::fig4::run(&params),
            "table1" => exp::table1::run(&params),
            "theorems" => exp::theorems::run(&params),
            "fig5" => exp::fig5::run(&params),
            "fig6" => exp::fig6::run(&params),
            "table2" => exp::tables23::run_table2(&params),
            "table3" => exp::tables23::run_table3(&params),
            "fig7" => exp::fig7::run(&params),
            "tables45" => exp::tables45::run(&params),
            "table4" | "table5" => exp::tables45::run(&params),
            "throughput" => exp::throughput::run(&params),
            "tail" => exp::tail::run(&params),
            "degradation" => exp::degradation::run(&params),
            "resilience" => exp::resilience::run(&params),
            "serving" => exp::serving::run(&params),
            "frontier" => exp::frontier::run(&params),
            "rebalance" => exp::rebalance::run(&params),
            "failover" => exp::failover::run(&params),
            "ablation-curves" => exp::ablations::run_curves(&params),
            "ablation-minimax" => exp::ablations::run_minimax(&params),
            "ablation-cost" => exp::ablations::run_cost(&params),
            "ablation-gdm" => exp::ablations::run_gdm(&params),
            "ablation-robustness" => exp::ablations::run_robustness(&params),
            "ablation-growth" => exp::growth::run(&params),
            "ablation-query-dist" => exp::ablations::run_query_distribution(&params),
            "tracing" => exp::tracing::run(&params),
            other => {
                eprintln!("unknown experiment: {other}");
                return usage();
            }
        };
        for t in &tables {
            println!("\n## {}\n", t.title);
            print!("{}", t.table.to_text());
            let path = format!("{out_dir}/{}.csv", t.id);
            if let Err(e) = t.table.write_csv(&path) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("[written {path}]");
            }
            if let Some(chart) = &t.chart {
                let path = format!("{out_dir}/{}.svg", t.id);
                if let Err(e) = chart.write_svg(&path) {
                    eprintln!("warning: could not write {path}: {e}");
                } else {
                    println!("[written {path}]");
                }
            }
            if let Some(timeline) = &t.timeline {
                let path = format!("{out_dir}/{}_timeline.svg", t.id);
                if let Err(e) = timeline.write_svg(&path) {
                    eprintln!("warning: could not write {path}: {e}");
                } else {
                    println!("[written {path}]");
                }
            }
        }
        eprintln!("[{name} done in {:.1}s]", t0.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
