//! `benchgate` — the CI regression gate over `BENCH_hotpath.json`.
//!
//! Usage:
//!
//! ```text
//! benchgate <baseline.json> <candidate.json> [--threshold-pct 10]
//! ```
//!
//! Compares every benchmark present in the *baseline* against the
//! candidate by p50 and exits non-zero if any regressed by more than the
//! threshold (default 10%). Benchmarks new in the candidate are reported
//! but never fail the gate (the trajectory is append-friendly); benchmarks
//! missing from the candidate DO fail it — a silently dropped benchmark is
//! how regressions hide.
//!
//! A baseline that is *missing, zero-length, or names no benchmarks* is an
//! unseeded trajectory, not a failure: the gate copies the candidate over
//! it, prints a "seeding baseline" notice, and exits 0 so a fresh branch's
//! first bench run arms the gate instead of failing confusingly. A
//! baseline that exists but fails schema validation still exits 2 —
//! corruption is never silently overwritten.
//!
//! Also re-validates both documents against the schema the pinned suite
//! emits (`schema_version` 1, `suite`, `benchmarks[].{name, mean_ns,
//! p50_ns, samples}`), so a truncated or hand-mangled file fails loudly
//! rather than gating against garbage.

use pargrid_obs::json::{parse, Json};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One benchmark row pulled out of a trajectory document.
struct Entry {
    mean_ns: f64,
    p50_ns: f64,
    samples: u64,
}

/// A baseline document, or the reason it is eligible for seeding.
enum Baseline {
    /// Parsed and populated: gate against it.
    Gated(BTreeMap<String, Entry>),
    /// Missing/empty/unpopulated: seed it from the candidate.
    Seedable(&'static str),
}

/// Loads the baseline, distinguishing "never seeded" from "corrupt".
///
/// Only the three unseeded shapes (no file, zero-length/whitespace file,
/// valid document with an empty `benchmarks` array) are seedable; any
/// other parse or schema failure propagates as a hard error.
fn load_baseline(path: &str) -> Result<Baseline, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Baseline::Seedable("does not exist"));
        }
        Err(e) => return Err(format!("{path}: {e}")),
    };
    if text.trim().is_empty() {
        return Ok(Baseline::Seedable("is empty"));
    }
    let map = parse_doc(path, &text)?;
    if map.is_empty() {
        return Ok(Baseline::Seedable("names no benchmarks"));
    }
    Ok(Baseline::Gated(map))
}

fn load(path: &str) -> Result<BTreeMap<String, Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_doc(path, &text)
}

fn parse_doc(path: &str, text: &str) -> Result<BTreeMap<String, Entry>, String> {
    let doc = parse(text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;

    let version = doc
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{path}: missing schema_version"))?;
    if version != 1.0 {
        return Err(format!("{path}: unsupported schema_version {version}"));
    }
    doc.get("suite")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: missing suite"))?;
    let benches = doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing benchmarks array"))?;

    let mut out = BTreeMap::new();
    for (i, b) in benches.iter().enumerate() {
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: benchmarks[{i}]: missing name"))?;
        let field = |key: &str| {
            b.get(key)
                .and_then(Json::as_num)
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| format!("{path}: benchmarks[{i}] ({name}): bad {key}"))
        };
        let entry = Entry {
            mean_ns: field("mean_ns")?,
            p50_ns: field("p50_ns")?,
            samples: field("samples")? as u64,
        };
        if entry.samples == 0 {
            return Err(format!("{path}: benchmarks[{i}] ({name}): zero samples"));
        }
        if out.insert(name.to_string(), entry).is_some() {
            return Err(format!("{path}: duplicate benchmark {name}"));
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold_pct = 10.0f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threshold-pct" {
            let Some(v) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("benchgate: --threshold-pct needs a number");
                return ExitCode::from(2);
            };
            threshold_pct = v;
            i += 2;
        } else {
            paths.push(args[i].clone());
            i += 1;
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: benchgate <baseline.json> <candidate.json> [--threshold-pct 10]");
        return ExitCode::from(2);
    }

    let candidate = match load(&paths[1]) {
        Ok(c) if !c.is_empty() => c,
        Ok(_) => {
            eprintln!(
                "benchgate: {}: names no benchmarks — did the bench run produce output?",
                paths[1]
            );
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("benchgate: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load_baseline(&paths[0]) {
        Ok(Baseline::Gated(b)) => b,
        Ok(Baseline::Seedable(why)) => {
            println!(
                "benchgate: baseline {} {why} — seeding it from {}",
                paths[0], paths[1]
            );
            if let Err(e) = std::fs::copy(&paths[1], &paths[0]) {
                eprintln!("benchgate: cannot write seed baseline {}: {e}", paths[0]);
                return ExitCode::from(2);
            }
            println!(
                "benchgate: seeded {} benchmark(s); commit {} to arm the gate",
                candidate.len(),
                paths[0]
            );
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("benchgate: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0u32;
    for (name, base) in &baseline {
        match candidate.get(name) {
            None => {
                eprintln!("FAIL {name}: present in baseline, missing from candidate");
                failures += 1;
            }
            Some(cand) => {
                let delta_pct = (cand.p50_ns - base.p50_ns) / base.p50_ns * 100.0;
                let verdict = if delta_pct > threshold_pct {
                    failures += 1;
                    "FAIL"
                } else {
                    "  ok"
                };
                println!(
                    "{verdict} {name}: p50 {:.1} µs -> {:.1} µs ({delta_pct:+.1}%), mean {:.1} µs -> {:.1} µs",
                    base.p50_ns / 1e3,
                    cand.p50_ns / 1e3,
                    base.mean_ns / 1e3,
                    cand.mean_ns / 1e3,
                );
            }
        }
    }
    for name in candidate.keys() {
        if !baseline.contains_key(name) {
            println!(" new {name}: no baseline, not gated");
        }
    }

    if failures > 0 {
        eprintln!("benchgate: {failures} benchmark(s) regressed more than {threshold_pct:.0}%");
        ExitCode::FAILURE
    } else {
        println!(
            "benchgate: all {} benchmark(s) within {threshold_pct:.0}%",
            baseline.len()
        );
        ExitCode::SUCCESS
    }
}
