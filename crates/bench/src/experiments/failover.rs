//! Coordinator failover under load: kill the leader mid-workload and
//! hard-assert that (a) a standby takes over in sub-second time and
//! (b) the client observes **zero divergent replies** — every query
//! answers exactly what a never-killed cluster answers, and every
//! acknowledged insert survives.
//!
//! Methodology: the same seeded operation sequence (range queries mixed
//! with inserts of fresh ids) is run twice against two independent
//! in-process clusters — 2 coordinators + 3 worker processes over
//! loopback TCP each time. The first run is the no-kill **oracle**; the
//! second gets its leader `kill -9`'d (silent, mid-load, no goodbye
//! frames) halfway through. Because one client issues the ops
//! sequentially and an ack means the entry is in every standby's log,
//! the two runs must agree op-for-op; any difference is silent
//! divergence and fails the run. This is the experiment behind
//! `DESIGN.md` §15's failover-timeline claims.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{NamedTable, Params};
use pargrid_cluster::coordinator::EngineBuilder;
use pargrid_cluster::{
    ClusterClient, Coordinator, CoordinatorConfig, PeerSpec, WorkerConfig, WorkerServer,
};
use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_datagen::Dataset;
use pargrid_geom::Rect;
use pargrid_parallel::disk::DiskParams;
use pargrid_parallel::{EngineConfig, ParallelGridFile};
use pargrid_sim::table::ResultTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Engine slots (maps round-robin onto the worker processes).
const SLOTS: usize = 6;
/// Worker processes per cluster.
const WORKERS: usize = 3;
/// First id minted by the insert ops (clear of every dataset id).
const INSERT_BASE: u64 = 1_000_000;

/// One scripted client operation.
enum Op {
    /// Range query `[lo, hi]` in both dimensions.
    Query([f64; 2], [f64; 2]),
    /// Insert a fresh id at a point.
    Insert(u64, [f64; 2]),
}

/// The seeded workload: ~70 % queries, ~30 % inserts of fresh ids.
fn script(domain: &Rect, n_ops: usize, seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa11_07e5);
    let (dlo, dhi) = (domain.lo().coords(), domain.hi().coords());
    let side = [(dhi[0] - dlo[0]) * 0.15, (dhi[1] - dlo[1]) * 0.15];
    let mut next_id = INSERT_BASE;
    (0..n_ops)
        .map(|_| {
            if rng.random_bool(0.7) {
                let lo = [
                    rng.random_range(dlo[0]..dhi[0] - side[0]),
                    rng.random_range(dlo[1]..dhi[1] - side[1]),
                ];
                Op::Query(lo, [lo[0] + side[0], lo[1] + side[1]])
            } else {
                let id = next_id;
                next_id += 1;
                Op::Insert(
                    id,
                    [
                        rng.random_range(dlo[0]..dhi[0]),
                        rng.random_range(dlo[1]..dhi[1]),
                    ],
                )
            }
        })
        .collect()
}

fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let a = l.local_addr().expect("local addr");
    drop(l);
    format!("127.0.0.1:{}", a.port())
}

/// Fast virtual disks: the experiment measures control-plane recovery,
/// not simulated seek time.
fn fast_disks() -> DiskParams {
    DiskParams {
        miss_us: 200,
        sequential_us: 40,
        hit_us: 5,
        cache_pages: 512,
    }
}

fn builder(seed: u64) -> EngineBuilder {
    Box::new(move |gf, backend| {
        let input = DeclusterInput::from_grid_file(&gf);
        let assignment =
            DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, SLOTS, seed);
        let cfg = EngineConfig::default().with_backend(backend);
        Arc::new(ParallelGridFile::build(gf, &assignment, cfg))
    })
}

/// One whole cluster: 3 workers + 2 coordinators, plus a client.
struct Cluster {
    // Field order is drop order: client first, coordinators before the
    // workers they dispatch to.
    client: ClusterClient,
    coords: Vec<Coordinator>,
    _workers: Vec<WorkerServer>,
}

fn start_cluster(ds: &Dataset, seed: u64) -> Cluster {
    let workers: Vec<WorkerServer> = (0..WORKERS)
        .map(|_| {
            let cfg = WorkerConfig {
                disks: 2,
                disk_params: fast_disks(),
                ..WorkerConfig::default()
            };
            WorkerServer::start("127.0.0.1:0", cfg).expect("start worker")
        })
        .collect();
    let worker_addrs: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();
    let addrs: Vec<(String, String)> = (0..2).map(|_| (free_addr(), free_addr())).collect();
    let coords: Vec<Coordinator> = (0..2)
        .map(|i| {
            let mut cfg = CoordinatorConfig::new(i as u32, addrs[i].0.clone(), addrs[i].1.clone());
            let o = 1 - i;
            cfg.peers = vec![PeerSpec {
                id: o as u32,
                peer_addr: addrs[o].1.clone(),
                client_addr: addrs[o].0.clone(),
            }];
            cfg.workers = worker_addrs.clone();
            cfg.seed = seed ^ (i as u64 + 1);
            Coordinator::start(cfg, ds.build_grid_file(), builder(seed)).expect("start coordinator")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while !coords.iter().any(|c| c.is_leader()) {
        assert!(Instant::now() < deadline, "no leader elected in 30 s");
        std::thread::sleep(Duration::from_millis(5));
    }
    let client = ClusterClient::new(vec![addrs[0].0.clone(), addrs[1].0.clone()])
        .with_deadline(Duration::from_secs(30));
    Cluster {
        client,
        coords,
        _workers: workers,
    }
}

/// Replies that must match between the oracle and the failover run: each
/// query's sorted id set (`None` marks an insert op).
type Replies = Vec<Option<Vec<u64>>>;

fn run_ops(
    cluster: &mut Cluster,
    ops: &[Op],
    kill_at: Option<usize>,
) -> (Replies, Option<Duration>, Option<Duration>) {
    let mut replies = Vec::with_capacity(ops.len());
    let mut elected_in = None;
    let mut first_op_in = None;
    let mut killed_at: Option<Instant> = None;
    for (i, op) in ops.iter().enumerate() {
        if kill_at == Some(i) {
            let leader = cluster
                .coords
                .iter()
                .position(|c| c.is_leader())
                .expect("a leader to kill");
            let t0 = Instant::now();
            cluster.coords[leader].kill();
            killed_at = Some(t0);
            let survivor = &cluster.coords[1 - leader];
            while !survivor.is_leader() {
                assert!(
                    t0.elapsed() < Duration::from_secs(30),
                    "survivor did not take over within 30 s"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            elected_in = Some(t0.elapsed());
        }
        match op {
            Op::Query(lo, hi) => {
                let reply = cluster.client.range_query(lo, hi).expect("range query");
                assert!(!reply.incomplete, "no reply may be partial (op {i})");
                let mut ids: Vec<u64> = reply.records.iter().map(|r| r.id).collect();
                ids.sort_unstable();
                replies.push(Some(ids));
            }
            Op::Insert(id, key) => {
                cluster.client.insert(*id, key).expect("insert");
                replies.push(None);
            }
        }
        if let (Some(t0), None) = (killed_at, first_op_in) {
            first_op_in = Some(t0.elapsed());
        }
    }
    (replies, elected_in, first_op_in)
}

/// Runs the failover experiment.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let ds = pargrid_datagen::hot2d(params.seed);
    let n_ops = params.queries.clamp(60, 400);
    let ops = script(&ds.domain, n_ops, params.seed);
    let kill_at = n_ops / 2;
    let inserts_before_kill = ops[..kill_at]
        .iter()
        .filter(|o| matches!(o, Op::Insert(..)))
        .count();

    // Oracle: the same script against a cluster nobody kills.
    let mut oracle = start_cluster(&ds, params.seed);
    let (want, _, _) = run_ops(&mut oracle, &ops, None);
    drop(oracle);

    // Failover run: leader killed silently at the midpoint.
    let mut cluster = start_cluster(&ds, params.seed);
    let (got, elected_in, first_op_in) = run_ops(&mut cluster, &ops, Some(kill_at));
    let elected_in = elected_in.expect("kill happened");
    let first_op_in = first_op_in.expect("ops continued after the kill");
    let survivor_failovers: u64 = cluster
        .coords
        .iter()
        .map(|c| c.failovers())
        .max()
        .unwrap_or(0);

    // Zero silent divergence, op for op.
    let mut divergent = 0usize;
    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        if w != g {
            divergent += 1;
            eprintln!("divergent reply at op {i}");
        }
    }
    assert_eq!(
        divergent, 0,
        "failover run diverged from the no-kill oracle"
    );
    assert!(survivor_failovers >= 1, "survivor must have promoted");
    // Sub-second failover is the release-mode acceptance bound; debug
    // builds pay unoptimized engine construction inside the promotion.
    let bound = if cfg!(debug_assertions) {
        Duration::from_secs(10)
    } else {
        Duration::from_secs(1)
    };
    assert!(
        elected_in < bound,
        "failover took {elected_in:?} (bound {bound:?})"
    );

    let queries = ops.iter().filter(|o| matches!(o, Op::Query(..))).count();
    let mut table = ResultTable::new(vec![
        "ops".to_string(),
        "queries".to_string(),
        "inserts".to_string(),
        "inserts_before_kill".to_string(),
        "failover_ms".to_string(),
        "first_reply_after_kill_ms".to_string(),
        "divergent_replies".to_string(),
    ]);
    table.push_row(vec![
        n_ops.to_string(),
        queries.to_string(),
        (n_ops - queries).to_string(),
        inserts_before_kill.to_string(),
        format!("{:.1}", elected_in.as_secs_f64() * 1e3),
        format!("{:.1}", first_op_in.as_secs_f64() * 1e3),
        divergent.to_string(),
    ]);
    vec![NamedTable::new(
        "failover",
        "Leader kill -9 mid-load: takeover latency and reply divergence vs a no-kill oracle",
        table,
    )]
}
