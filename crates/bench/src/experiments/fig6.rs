//! Figure 6: the five algorithms (DM/D, FX/D, HCAM/D, SSP, MiniMax) on
//! `hot.2d`, `DSMC.3d` and `stock.3d` at r = 0.01.
//!
//! Paper shape: MiniMax consistently lowest (rare exceptions at small M),
//! SSP second, HCAM/D close behind, DM and FX distant fourth and fifth.

use crate::{NamedTable, Params};
use pargrid_core::DeclusterMethod;
use pargrid_datagen::{dsmc3d, hot2d, stock3d};

/// Runs the experiment.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let methods = DeclusterMethod::paper_five();
    [
        (hot2d(params.seed), "left"),
        (dsmc3d(params.seed), "center"),
        (stock3d(params.seed), "right"),
    ]
    .iter()
    .map(|(ds, side)| {
        crate::experiments::response_sweep_table(
            &format!("fig6_{}", ds.name.replace('.', "_")),
            &format!(
                "Figure 6 ({side}): all five algorithms on {}, r=0.01",
                ds.name
            ),
            ds,
            &methods,
            params,
            0.01,
        )
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_tables_five_methods() {
        let mut p = Params::quick();
        p.queries = 40;
        p.disks = vec![4, 16];
        let tables = run(&p);
        assert_eq!(tables.len(), 3);
    }
}
