//! Concurrent query-service throughput: queries/sec versus the in-flight
//! admission window, at several worker counts.
//!
//! The paper evaluates one query at a time; a multi-user front end instead
//! keeps a window of queries in flight, letting each worker service the
//! union of their block requests in one elevator pass. This experiment
//! sweeps `window x workers` on the skewed 2-D dataset, each cell on a
//! fresh engine (cold caches), and reports the aggregate throughput
//! metrics: makespan, queries/sec, speedup over serial admission, mean
//! per-disk utilization, and mean batch size (queue depth).

use crate::{NamedTable, Params};
use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_parallel::{EngineConfig, ParallelGridFile};
use pargrid_sim::plot::{LineChart, Series};
use pargrid_sim::runner::relative_throughput;
use pargrid_sim::table::{fmt2, ResultTable};
use pargrid_sim::QueryWorkload;
use std::sync::Arc;

const WORKERS: [usize; 3] = [4, 8, 16];
const WINDOWS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Runs the window-by-workers throughput sweep.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let ds = pargrid_datagen::hot2d(params.seed);
    let gf = Arc::new(ds.build_grid_file());
    let input = DeclusterInput::from_grid_file(&gf);
    let workload = QueryWorkload::square(&ds.domain, 0.05, params.queries, params.seed);

    let mut table = ResultTable::new(vec![
        "workers",
        "window",
        "queries",
        "makespan (s)",
        "queries/s",
        "speedup vs window 1",
        "mean utilization",
        "mean batch",
        "cache hit rate",
    ]);
    let mut chart = LineChart::new(
        "Throughput of the concurrent query service",
        "in-flight window (queries)",
        "queries per second",
    );

    for &p in &WORKERS {
        let assignment =
            DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, p, params.seed);
        let mut qps_series: Vec<(usize, f64)> = Vec::new();
        let mut rows = Vec::new();
        for &window in &WINDOWS {
            // Fresh engine per cell: every run starts with cold caches so
            // the window is the only variable.
            let engine =
                ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
            let (_, tp) = engine.run_workload_concurrent(&workload, window);
            qps_series.push((window, tp.queries_per_second()));
            rows.push((window, tp));
        }
        let speedups = relative_throughput(&qps_series);
        for ((window, tp), (_, speedup)) in rows.into_iter().zip(speedups) {
            table.push_row(vec![
                p.to_string(),
                window.to_string(),
                tp.queries.to_string(),
                fmt2(tp.makespan_seconds()),
                fmt2(tp.queries_per_second()),
                fmt2(speedup),
                fmt2(tp.mean_utilization()),
                fmt2(tp.mean_batch()),
                fmt2(tp.cache_hits as f64 / tp.total_blocks.max(1) as f64),
            ]);
        }
        chart.push(Series::new(
            format!("{p} workers"),
            qps_series
                .iter()
                .map(|&(w, q)| (w as f64, q))
                .collect::<Vec<_>>(),
        ));
    }

    vec![NamedTable::new(
        "throughput",
        format!(
            "Concurrent service throughput: in-flight window sweep ({} queries, r = 0.05, {})",
            params.queries, ds.name
        ),
        table,
    )
    .with_chart(chart)]
}
