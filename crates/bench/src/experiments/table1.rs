//! Table 1: degree of data balance on `hot.2d` for DM/D, FX/D and HCAM/D
//! over even disk counts.
//!
//! Paper shape: HCAM closest to 1.00, then DM, with FX clearly worst.

use crate::{NamedTable, Params};
use pargrid_core::{ConflictPolicy, DeclusterInput, DeclusterMethod, IndexScheme};
use pargrid_datagen::hot2d;
use pargrid_sim::table::{fmt2, ResultTable};

/// Runs the experiment.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let ds = hot2d(params.seed);
    let gf = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&gf);
    let methods = [
        DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance),
        DeclusterMethod::Index(IndexScheme::FieldwiseXor, ConflictPolicy::DataBalance),
        DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance),
    ];

    let mut header = vec!["method".to_string()];
    header.extend(params.even_disks.iter().map(|m| m.to_string()));
    let mut table = ResultTable::new(header);
    for method in &methods {
        let mut row = vec![method.label()];
        for &m in &params.even_disks {
            let a = method.assign(&input, m, params.seed);
            row.push(fmt2(a.data_balance_degree()));
        }
        table.push_row(row);
    }
    vec![NamedTable::new(
        "table1",
        "Table 1: degree of data balance (B_max * M / B_sum), hot.2d",
        table,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_methods_by_disk_columns() {
        let tables = run(&Params::quick());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].table.n_rows(), 3);
    }
}
