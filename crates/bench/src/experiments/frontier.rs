//! `repro frontier` — the scheme-frontier comparison.
//!
//! Scores the paper's five schemes plus the onion-curve and
//! latin-hypercube newcomers against the adversarial workload suite,
//! reporting each (scheme, workload) cell's distance from the per-query
//! optimality oracle — `response - ceil(|Q|/M)`, in blocks — instead of
//! raw response time. Three artifacts:
//!
//! * `frontier` — the full cell table, one row per scheme x workload,
//!   with mean response, mean bound, mean/p95/max gap and the fraction of
//!   queries answered provably optimally.
//! * `frontier-gap` — the ranking: schemes sorted by mean gap pooled over
//!   every query of every workload, with the per-workload means alongside.
//! * `frontier-serving` — a wall-clock leg: the drifting-hotspot workload
//!   driven through the real TCP server by the open-loop load generator,
//!   with the `pargrid_frontier_gap_blocks` histogram the server exports
//!   read back off the wire.
//!
//! Two hard checks run inside: the oracle's soundness assert (every
//! measured response >= its bound, enforced by [`LowerBound::profile`]),
//! and the frontier claim itself — at least one newcomer must beat the
//! Hilbert-curve allocation on at least one adversarial workload.
//!
//! [`LowerBound::profile`]: pargrid_frontier::LowerBound::profile

use crate::{NamedTable, Params};
use pargrid_core::DeclusterMethod;
use pargrid_frontier::Adversary;
use pargrid_net::{loadgen, LoadQuery, LoadgenConfig, Server, ServerConfig};
use pargrid_obs::names;
use pargrid_parallel::{EngineConfig, ParallelGridFile};
use pargrid_sim::plot::{LineChart, Series};
use pargrid_sim::table::{fmt2, ResultTable};
use std::sync::Arc;
use std::time::Duration;

/// Disk count for the frontier comparison.
const DISKS: usize = 16;
/// The Hilbert entry the newcomers must beat somewhere hostile.
const INCUMBENT: &str = "HCAM/D";
/// Labels of the two schemes this PR introduces.
const NEWCOMERS: [&str; 2] = ["ONION/D", "LATIN/D"];

/// Runs the frontier comparison: 7 schemes x 5 workloads at 16 disks,
/// then the TCP serving leg.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let methods = DeclusterMethod::frontier_set();

    let mut cells = ResultTable::new(vec![
        "scheme",
        "workload",
        "mean_resp",
        "mean_bound",
        "mean_gap",
        "p95_gap",
        "max_gap",
        "optimal_frac",
    ]);
    // Per-scheme mean gap per workload (for the ranking and the frontier
    // claim) and the pooled gap samples across every workload's queries.
    let mut mean_gaps = vec![vec![0.0f64; Adversary::ALL.len()]; methods.len()];
    let mut pooled: Vec<Vec<u64>> = vec![Vec::new(); methods.len()];

    let workload_axis = Adversary::ALL
        .iter()
        .enumerate()
        .map(|(i, a)| format!("{i}={}", a.label()))
        .collect::<Vec<_>>()
        .join(" ");
    let mut mean_chart = LineChart::new(
        format!("Mean additive gap to the ceil(|Q|/M) oracle ({DISKS} disks)"),
        format!("workload ({workload_axis})"),
        "mean additive gap (blocks)",
    );
    let mut p95_chart = LineChart::new(
        format!("p95 additive gap to the ceil(|Q|/M) oracle ({DISKS} disks)"),
        format!("workload ({workload_axis})"),
        "p95 additive gap (blocks)",
    );
    let mut mean_series = vec![Vec::new(); methods.len()];
    let mut p95_series = vec![Vec::new(); methods.len()];

    for (wi, adv) in Adversary::ALL.iter().enumerate() {
        let s = adv.scenario(params.queries, params.seed);
        let oracle = s.oracle(DISKS);
        for (mi, method) in methods.iter().enumerate() {
            let assign = method.assign(&s.input, DISKS, params.seed);
            // profile() hard-asserts response >= bound on every query.
            let profile = oracle.profile(&s.gf, &assign, &s.workload);
            cells.push_row(vec![
                method.label(),
                adv.label().to_string(),
                fmt2(profile.mean_response()),
                fmt2(profile.mean_bound()),
                fmt2(profile.mean_gap()),
                profile.p95_gap().to_string(),
                profile.max_gap().to_string(),
                fmt2(profile.optimal_fraction()),
            ]);
            mean_gaps[mi][wi] = profile.mean_gap();
            pooled[mi].extend(profile.gaps());
            mean_series[mi].push((wi as f64, profile.mean_gap()));
            p95_series[mi].push((wi as f64, profile.p95_gap() as f64));
        }
    }
    for (mi, method) in methods.iter().enumerate() {
        mean_chart.push(Series::new(method.label(), mean_series[mi].clone()));
        p95_chart.push(Series::new(method.label(), p95_series[mi].clone()));
    }

    assert_frontier_claim(&methods, &mean_gaps);

    // Ranking: pooled mean gap over all 5 x queries samples, ascending.
    let pooled_mean = |mi: usize| pooled[mi].iter().sum::<u64>() as f64 / pooled[mi].len() as f64;
    let pooled_p95 = |mi: usize| {
        let mut g = pooled[mi].clone();
        g.sort_unstable();
        let rank = ((0.95 * g.len() as f64).ceil() as usize).clamp(1, g.len());
        g[rank - 1]
    };
    let mut order: Vec<usize> = (0..methods.len()).collect();
    order.sort_by(|&a, &b| pooled_mean(a).total_cmp(&pooled_mean(b)));

    let mut header = vec!["rank".to_string(), "scheme".to_string()];
    header.extend(Adversary::ALL.iter().map(|a| a.label().to_string()));
    header.push("mean_gap".to_string());
    header.push("p95_gap".to_string());
    let mut ranking = ResultTable::new(header);
    for (pos, &mi) in order.iter().enumerate() {
        let mut row = vec![(pos + 1).to_string(), methods[mi].label()];
        row.extend(mean_gaps[mi].iter().map(|&g| fmt2(g)));
        row.push(fmt2(pooled_mean(mi)));
        row.push(pooled_p95(mi).to_string());
        ranking.push_row(row);
    }

    let oracle = pargrid_frontier::LowerBound::new(DISKS, 2);
    vec![
        NamedTable::new(
            "frontier",
            format!(
                "Scheme frontier: additive gap to the per-query oracle, {} schemes x {} workloads, {DISKS} disks, {} queries each",
                methods.len(),
                Adversary::ALL.len(),
                params.queries
            ),
            cells,
        )
        .with_chart(mean_chart),
        NamedTable::new(
            "frontier-gap",
            format!(
                "Scheme ranking by pooled mean additive gap ({DISKS} disks; Doerr existential floor for 2-d: {})",
                fmt2(oracle.discrepancy_floor())
            ),
            ranking,
        )
        .with_chart(p95_chart),
        serving_leg(params),
    ]
}

/// The frontier claim, hard-asserted: some newcomer strictly beats the
/// Hilbert allocation's mean gap on some adversarial workload.
fn assert_frontier_claim(methods: &[DeclusterMethod], mean_gaps: &[Vec<f64>]) {
    let idx = |label: &str| {
        methods
            .iter()
            .position(|m| m.label() == label)
            .unwrap_or_else(|| panic!("{label} missing from the frontier set"))
    };
    let hcam = idx(INCUMBENT);
    let won = NEWCOMERS.iter().any(|n| {
        let mi = idx(n);
        Adversary::ALL
            .iter()
            .enumerate()
            .any(|(wi, adv)| adv.is_adversarial() && mean_gaps[mi][wi] < mean_gaps[hcam][wi])
    });
    assert!(
        won,
        "frontier claim failed: neither {NEWCOMERS:?} beat {INCUMBENT} on any \
         adversarial workload (mean gaps: {mean_gaps:?})"
    );
}

/// Wall-clock leg: the drifting-hotspot workload through the real TCP
/// server, reading the exported gap histogram back off the wire.
fn serving_leg(params: &Params) -> NamedTable {
    /// Wall time the dispatcher charges per response block.
    const PACE_US_PER_BLOCK: u64 = 100;
    const DISPATCHERS: usize = 2;
    const CLIENTS: usize = 4;
    /// Offered load, comfortably below the knee: the leg measures layout
    /// quality (sojourn + wire gap), not admission control.
    const OFFERED_QPS: f64 = 200.0;

    let point_secs = if params.queries >= 1000 { 3.0 } else { 1.0 };
    let s = Adversary::DriftingHotspot.scenario(64, params.seed);
    let queries: Vec<LoadQuery> = s
        .workload
        .queries
        .iter()
        .map(|q| LoadQuery::Range {
            lo: q.lo().coords().to_vec(),
            hi: q.hi().coords().to_vec(),
        })
        .collect();
    let gf = Arc::new(s.gf);

    let mut table = ResultTable::new(vec![
        "scheme",
        "served qps",
        "p95 sojourn (ms)",
        "wire queries",
        "wire mean gap",
    ]);
    for name in ["hcam", "onion", "latin"] {
        let method = DeclusterMethod::parse(name).expect("registry scheme");
        let assignment = method.assign(&s.input, DISKS, params.seed);
        let engine = Arc::new(ParallelGridFile::build(
            Arc::clone(&gf),
            &assignment,
            EngineConfig::default(),
        ));
        let server = Server::start(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                queue_capacity: 16,
                dispatchers: DISPATCHERS,
                pace_us_per_block: PACE_US_PER_BLOCK,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let addr = server.local_addr().to_string();
        let report = loadgen::run(
            &addr,
            &LoadgenConfig {
                clients: CLIENTS,
                rate_per_client: OFFERED_QPS / CLIENTS as f64,
                duration: Duration::from_secs_f64(point_secs),
                queries: queries.clone(),
            },
        )
        .expect("load generation");
        let doc = server.shutdown();
        let count = prom_value(&doc, &format!("{}_count", names::FRONTIER_GAP_BLOCKS));
        let sum = prom_value(&doc, &format!("{}_sum", names::FRONTIER_GAP_BLOCKS));
        assert!(count > 0.0, "server exported no gap samples:\n{doc}");
        table.push_row(vec![
            method.label(),
            fmt2(report.served_qps()),
            fmt2(report.sojourn_quantile_us(0.95) as f64 / 1e3),
            (count as u64).to_string(),
            fmt2(sum / count),
        ]);
    }
    NamedTable::new(
        "frontier-serving",
        format!(
            "Drifting hotspot through the TCP serving layer ({DISPATCHERS} dispatchers, \
             {CLIENTS} clients, {DISKS} disks, {OFFERED_QPS} qps offered) with the wire-exported gap histogram"
        ),
        table,
    )
}

/// Reads the value of a bare `name value` Prometheus line.
fn prom_value(doc: &str, name: &str) -> f64 {
    doc.lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("no {name} in:\n{doc}"))
}
