//! Tables 4 and 5: the shared-nothing SP-2 experiments.
//!
//! The 4-D spatio-temporal DSMC dataset (59 snapshots) is loaded into a
//! parallel grid file declustered with MiniMax over 4, 8 and 16 workers.
//! Table 4 processes the animation workload (r = 0.1 spatial coverage per
//! query, every snapshot swept); Table 5 processes 100 random 4-D range
//! queries at r in {0.01, 0.05, 0.1}.
//!
//! Default scale is 750k records (~1/4 of the paper's 3M) to keep the run
//! in seconds; pass `--full` to `repro` for the paper's 3M records.

use crate::{NamedTable, Params};
use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_datagen::{dsmc4d, dsmc4d_paper_scale};
use pargrid_parallel::{EngineConfig, ParallelGridFile};
use pargrid_sim::table::{fmt2, ResultTable};
use pargrid_sim::QueryWorkload;
use std::sync::Arc;

const PROCS: [usize; 3] = [4, 8, 16];

fn build_dataset(params: &Params) -> pargrid_datagen::Dataset {
    if params.full_scale {
        dsmc4d_paper_scale(params.seed)
    } else {
        dsmc4d(params.seed, 59, 750_000)
    }
}

/// Runs both tables (sharing one dataset build).
pub fn run(params: &Params) -> Vec<NamedTable> {
    let ds = build_dataset(params);
    let gf = Arc::new(ds.build_grid_file());
    let input = DeclusterInput::from_grid_file(&gf);
    let st = gf.stats();
    let subtitle = format!(
        "{} records, {} subspaces in {} buckets ({})",
        st.n_records,
        st.n_cells,
        st.n_buckets,
        st.cells_per_dim
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("x"),
    );

    let mut t4 = ResultTable::new(vec![
        "processors",
        "response (blocks fetched)",
        "communication (s)",
        "elapsed (s)",
        "cache hit rate",
    ]);
    let mut t5 = ResultTable::new(vec![
        "processors",
        "query ratio",
        "response (blocks fetched)",
        "communication (s)",
        "elapsed (s)",
    ]);

    for &p in &PROCS {
        let assignment =
            DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, p, params.seed);

        // Table 4: animation sweep over all snapshots.
        let engine = ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
        let animation = QueryWorkload::animation(&ds.domain, 0.1, 59);
        let stats = engine.run_workload(&animation);
        t4.push_row(vec![
            p.to_string(),
            stats.response_blocks.to_string(),
            fmt2(stats.comm_seconds()),
            fmt2(stats.elapsed_seconds()),
            fmt2(stats.cache_hits as f64 / stats.total_blocks.max(1) as f64),
        ]);

        // Table 5: 100 random range queries per ratio, on a fresh engine so
        // Table 4's warm caches do not leak in.
        for r in [0.01, 0.05, 0.1] {
            let engine =
                ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
            let workload = QueryWorkload::square(&ds.domain, r, 100, params.seed);
            let stats = engine.run_workload(&workload);
            t5.push_row(vec![
                p.to_string(),
                format!("{r}"),
                stats.response_blocks.to_string(),
                fmt2(stats.comm_seconds()),
                fmt2(stats.elapsed_seconds()),
            ]);
        }
    }

    // The full SP-2 of §4: "16 processor SP-2 with 112 disks (seven disks
    // per processor)" — one extra configuration showing what the local disk
    // arrays buy on top of 16-way declustering.
    let mut t4b = ResultTable::new(vec![
        "configuration",
        "response (blocks fetched)",
        "communication (s)",
        "elapsed (s)",
    ]);
    {
        let assignment =
            DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 16, params.seed);
        for (label, config) in [
            ("16 procs x 1 disk", EngineConfig::default()),
            ("16 procs x 7 disks (SP-2)", EngineConfig::sp2_seven_disks()),
        ] {
            let engine = ParallelGridFile::build(Arc::clone(&gf), &assignment, config);
            let animation = QueryWorkload::animation(&ds.domain, 0.1, 59);
            let stats = engine.run_workload(&animation);
            t4b.push_row(vec![
                label.to_string(),
                stats.response_blocks.to_string(),
                fmt2(stats.comm_seconds()),
                fmt2(stats.elapsed_seconds()),
            ]);
        }
    }

    vec![
        NamedTable::new(
            "table4",
            format!("Table 4: animation queries on the SPMD engine ({subtitle})"),
            t4,
        ),
        NamedTable::new(
            "table4b",
            "Table 4b (§4's hardware): 16 workers with one disk vs seven disks each",
            t4b,
        ),
        NamedTable::new(
            "table5",
            format!("Table 5: random 4-D range queries on the SPMD engine ({subtitle})"),
            t5,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale() {
        // Use a tiny dataset through the same code path.
        let ds = dsmc4d(1, 8, 20_000);
        let gf = Arc::new(ds.build_grid_file());
        let input = DeclusterInput::from_grid_file(&gf);
        let a = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 4, 1);
        let engine = ParallelGridFile::build(Arc::clone(&gf), &a, EngineConfig::default());
        let w = QueryWorkload::animation(&ds.domain, 0.1, 8);
        let stats = engine.run_workload(&w);
        assert!(stats.response_blocks > 0);
        assert!(stats.elapsed_seconds() > stats.comm_seconds());
    }
}
