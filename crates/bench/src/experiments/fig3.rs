//! Figure 3: conflict-resolution heuristics on `hot.2d` (r = 0.05).
//!
//! Left graph: HCAM under all four heuristics (response nearly insensitive).
//! Right graph: FX under all four (spread much wider; *data balance* best).

use crate::{NamedTable, Params};
use pargrid_core::{ConflictPolicy, DeclusterMethod, IndexScheme};
use pargrid_datagen::hot2d;

const POLICIES: [ConflictPolicy; 4] = [
    ConflictPolicy::Random,
    ConflictPolicy::MostFrequent,
    ConflictPolicy::DataBalance,
    ConflictPolicy::AreaBalance,
];

/// Runs the experiment.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let ds = hot2d(params.seed);
    let mut out = Vec::new();
    for (scheme, side) in [
        (IndexScheme::Hilbert, "left"),
        (IndexScheme::FieldwiseXor, "right"),
    ] {
        let methods: Vec<DeclusterMethod> = POLICIES
            .iter()
            .map(|&p| DeclusterMethod::Index(scheme, p))
            .collect();
        out.push(crate::experiments::response_sweep_table(
            &format!("fig3_{}", scheme.label().to_lowercase()),
            &format!(
                "Figure 3 ({side}): {} with each conflict-resolution heuristic, hot.2d, r=0.05",
                scheme.label()
            ),
            &ds,
            &methods,
            params,
            0.05,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tables_with_all_policies() {
        let tables = run(&Params::quick());
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.table.n_rows(), Params::quick().disks.len());
        }
    }
}
