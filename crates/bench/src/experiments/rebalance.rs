//! Elastic re-declustering sweep: movement cost and post-rebalance
//! response time of the incremental minimax repair versus a full
//! re-decluster, for cluster resizes around the serving baseline.
//!
//! Starts from the minimax replicated layout on `M = 8` workers (the
//! serving configuration) over a 10-slot universe (2 standby) and plans
//! every transition `8 → M'` for `M' ∈ {6, 7, 9, 10}`. For each target
//! the incremental plan's primary moves are scored against the number of
//! buckets a fresh minimax layout — relabeled to maximally agree with the
//! current one — would relocate, and both layouts are replayed under the
//! same query workload to compare mean response time. The headline
//! acceptance claim lives in the `M = 9` row: the repair moves a bounded
//! fraction of what the full re-decluster moves while giving up almost
//! none of the response time.

use crate::{NamedTable, Params};
use pargrid_core::{Assignment, DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_gridfile::Record;
use pargrid_rebalance::{plan_rebalance, RepairConfig};
use pargrid_sim::plot::{LineChart, Series};
use pargrid_sim::table::{fmt2, ResultTable};
use pargrid_sim::{evaluate, QueryWorkload};

/// The serving baseline the resize starts from.
const M0: usize = 8;
/// Standby slots available for growth.
const STANDBY: usize = 2;
/// Resize targets swept (shrink by 2, shrink by 1, grow by 1, grow by 2).
const TARGETS: [usize; 4] = [6, 7, 9, 10];

/// Projects a slot-space primary vector (inactive slots own nothing) onto
/// a dense `0..m'` disk range so [`evaluate`] can replay it.
fn densify(input: &DeclusterInput, primary: &[u32], active: &[bool]) -> Assignment {
    let mut dense_of = vec![u32::MAX; active.len()];
    let mut next = 0u32;
    for (slot, &a) in active.iter().enumerate() {
        if a {
            dense_of[slot] = next;
            next += 1;
        }
    }
    let disks = primary.iter().map(|&d| dense_of[d as usize]).collect();
    Assignment::new(input, next as usize, disks)
}

/// Runs the resize sweep.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let ds = pargrid_datagen::hot2d(params.seed);
    let gf = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&gf);
    let method = DeclusterMethod::Minimax(EdgeWeight::Proximity);
    let workload = QueryWorkload::square(&ds.domain, 0.05, params.queries, params.seed);

    // The running cluster's layout: replicated minimax on the first M0 of
    // M0 + STANDBY slots, exactly what `pargrid serve --replicate
    // --standby 2` builds.
    let ra = method.assign_replicated(&input, M0, params.seed);
    let primary = ra.primary().disks().to_vec();
    let secondary: Vec<u32> = (0..input.n_buckets()).map(|p| ra.secondary_at(p)).collect();
    let mut active = vec![true; M0];
    active.extend(std::iter::repeat_n(false, STANDBY));

    let cfg = RepairConfig {
        seed: params.seed,
        record_bytes: std::mem::size_of::<Record>(),
        ..RepairConfig::default()
    };

    let mut table = ResultTable::new(vec![
        "target workers",
        "incremental moves",
        "replica moves",
        "full moves",
        "movement %",
        "moved MiB",
        "incremental response",
        "full response",
        "response delta %",
    ]);
    let mut moves_chart = LineChart::new(
        "Data movement: incremental repair vs full re-decluster (hot.2d, 8 -> M')",
        "target workers",
        "primary buckets moved",
    );
    let mut resp_chart = LineChart::new(
        "Post-rebalance response time: incremental vs full (hot.2d, r = 0.05)",
        "target workers",
        "average response time (buckets)",
    );
    let mut resp_table = ResultTable::new(vec![
        "target workers",
        "incremental response",
        "full response",
    ]);
    let mut inc_moves_pts = Vec::new();
    let mut full_moves_pts = Vec::new();
    let mut inc_resp_pts = Vec::new();
    let mut full_resp_pts = Vec::new();

    for &m_target in &TARGETS {
        // Grow activates standby slots in order; shrink drains the
        // highest-numbered active slots (matching the CLI's remove flow).
        let mut target = active.clone();
        if m_target > M0 {
            for slot in target.iter_mut().take(m_target).skip(M0) {
                *slot = true;
            }
        } else {
            for slot in target.iter_mut().take(M0).skip(m_target) {
                *slot = false;
            }
        }

        let plan = plan_rebalance(&input, &primary, Some(&secondary), &target, &cfg);
        let inc_assign = densify(&input, &plan.new_primary, &plan.new_active);
        let inc_stats = evaluate(&gf, &inc_assign, &workload);
        let full_assign = method.assign(&input, m_target, params.seed);
        let full_stats = evaluate(&gf, &full_assign, &workload);
        let delta_pct =
            (inc_stats.mean_response - full_stats.mean_response) / full_stats.mean_response * 100.0;

        table.push_row(vec![
            m_target.to_string(),
            plan.primary_moves.to_string(),
            plan.replica_moves.to_string(),
            plan.full_moves.to_string(),
            fmt2(plan.movement_ratio() * 100.0),
            fmt2(plan.moved_bytes as f64 / (1024.0 * 1024.0)),
            fmt2(inc_stats.mean_response),
            fmt2(full_stats.mean_response),
            fmt2(delta_pct),
        ]);
        resp_table.push_row(vec![
            m_target.to_string(),
            fmt2(inc_stats.mean_response),
            fmt2(full_stats.mean_response),
        ]);
        inc_moves_pts.push((m_target as f64, plan.primary_moves as f64));
        full_moves_pts.push((m_target as f64, plan.full_moves as f64));
        inc_resp_pts.push((m_target as f64, inc_stats.mean_response));
        full_resp_pts.push((m_target as f64, full_stats.mean_response));

        // The PR's acceptance claim, asserted where it applies (M -> M+1):
        // bounded movement, near-baseline quality.
        if m_target == M0 + 1 {
            assert!(
                plan.movement_ratio() <= 0.35,
                "grow-by-one moved {:.0}% of the full re-decluster",
                plan.movement_ratio() * 100.0
            );
            assert!(
                delta_pct <= 10.0,
                "grow-by-one response {:.2} strays {delta_pct:.1}% from full {:.2}",
                inc_stats.mean_response,
                full_stats.mean_response
            );
        }
    }

    moves_chart.push(Series::new("incremental repair", inc_moves_pts));
    moves_chart.push(Series::dashed("full re-decluster", full_moves_pts));
    resp_chart.push(Series::new("incremental repair", inc_resp_pts));
    resp_chart.push(Series::dashed("full re-decluster", full_resp_pts));

    vec![
        NamedTable::new(
            "rebalance",
            format!(
                "Elastic resize 8 -> M': movement cost and quality ({} queries, r = 0.05, {})",
                params.queries, ds.name
            ),
            table,
        )
        .with_chart(moves_chart),
        NamedTable::new(
            "rebalance-response",
            "Post-rebalance response time versus resize target".to_string(),
            resp_table,
        )
        .with_chart(resp_chart),
    ]
}
