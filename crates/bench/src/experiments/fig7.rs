//! Figure 7: effect of the query-size ratio on `stock.3d` — response time
//! (left) and speedup relative to 4 disks (right), HCAM/D vs MiniMax at
//! r in {0.01, 0.05, 0.1}.
//!
//! Paper shape: MiniMax beats HCAM on both metrics at every r, and its
//! advantage grows as queries shrink.

use crate::{NamedTable, Params};
use pargrid_core::{ConflictPolicy, DeclusterInput, DeclusterMethod, IndexScheme};
use pargrid_datagen::stock3d;
use pargrid_sim::table::{fmt2, ResultTable};
use pargrid_sim::{evaluate, QueryWorkload};

const RATIOS: [f64; 3] = [0.01, 0.05, 0.1];

/// Runs the experiment.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let ds = stock3d(params.seed);
    let gf = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&gf);
    let methods = [
        DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance),
        DeclusterMethod::Minimax(pargrid_core::EdgeWeight::Proximity),
    ];

    let mut header = vec!["disks".to_string()];
    for method in &methods {
        for r in RATIOS {
            header.push(format!("{} r={r}", method.label()));
        }
    }
    let mut resp = ResultTable::new(header.clone());
    let mut speedup = ResultTable::new(header);

    // response[method][ratio][disk index]
    let mut series = vec![vec![Vec::new(); RATIOS.len()]; methods.len()];
    for (mi, method) in methods.iter().enumerate() {
        for (ri, &r) in RATIOS.iter().enumerate() {
            let workload = QueryWorkload::square(&ds.domain, r, params.queries, params.seed);
            for &m in &params.disks {
                let a = method.assign(&input, m, params.seed);
                series[mi][ri].push(evaluate(&gf, &a, &workload).mean_response);
            }
        }
    }
    for (di, &m) in params.disks.iter().enumerate() {
        let mut resp_row = vec![m.to_string()];
        let mut sp_row = vec![m.to_string()];
        for per_method in &series {
            for per_ratio in per_method {
                let v = per_ratio[di];
                resp_row.push(fmt2(v));
                sp_row.push(fmt2(per_ratio[0] / v));
            }
        }
        resp.push_row(resp_row);
        speedup.push_row(sp_row);
    }
    // Charts mirroring the two panels of the figure.
    use pargrid_sim::plot::{LineChart, Series};
    let mut resp_chart = LineChart::new(
        "Figure 7 (left): response time, stock.3d",
        "number of disks",
        "average response time (buckets)",
    );
    let mut sp_chart = LineChart::new(
        "Figure 7 (right): speedup vs smallest configuration, stock.3d",
        "number of disks",
        "speedup",
    );
    for (mi, method) in methods.iter().enumerate() {
        for (ri, &r) in RATIOS.iter().enumerate() {
            let label = format!("{} r={r}", method.label());
            let pts: Vec<(f64, f64)> = params
                .disks
                .iter()
                .zip(&series[mi][ri])
                .map(|(&m, &v)| (m as f64, v))
                .collect();
            let sp: Vec<(f64, f64)> = pts
                .iter()
                .map(|&(m, v)| (m, series[mi][ri][0] / v))
                .collect();
            resp_chart.push(Series::new(label.clone(), pts));
            sp_chart.push(Series::new(label, sp));
        }
    }

    vec![
        NamedTable::new(
            "fig7_response",
            "Figure 7 (left): response time vs query ratio, stock.3d",
            resp,
        )
        .with_chart(resp_chart),
        NamedTable::new(
            "fig7_speedup",
            "Figure 7 (right): speedup relative to the smallest disk count, stock.3d",
            speedup,
        )
        .with_chart(sp_chart),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_and_speedup_tables() {
        let mut p = Params::quick();
        p.queries = 30;
        p.disks = vec![4, 16];
        let tables = run(&p);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].table.n_rows(), 2);
    }
}
