//! Ablation experiments (DESIGN.md A1–A7): design choices the paper asserts
//! but does not isolate.
//!
//! * **A1 (cost)** — wall-clock declustering cost vs bucket count: DM/FX/
//!   HCAM are `O(N)`, SSP/MST/MiniMax `O(N^2)` (the complexities §4 quotes).
//! * **A2 (curves)** — HCAM's Hilbert curve vs Z-order, Gray-code and scan
//!   inside the same allocation scheme: the "Hilbert clusters best" claim.
//! * **A3 (minimax internals)** — proximity index vs Euclidean-center edge
//!   weights, seed sensitivity, and the MST/KL alternatives the paper
//!   rejects (balance and response compared).
//! * **A5 (GDM)** — generalized disk modulo: a better constant than DM but
//!   the same saturation, as Theorem 1's argument predicts.
//! * **A6 (robustness)** — heterogeneous disks and the proximity-objective
//!   vs measured-response correlation.
//!
//! A4 (particle tracing) lives in `tracing.rs`; A7 (incremental
//! redeclustering) in `growth.rs`.

use crate::{NamedTable, Params};
use pargrid_core::{ConflictPolicy, DeclusterInput, DeclusterMethod, EdgeWeight, IndexScheme};
use pargrid_datagen::{dsmc3d_sized, hot2d};
use pargrid_sim::table::{fmt2, ResultTable};
use pargrid_sim::{evaluate, QueryWorkload};
use std::time::Instant;

/// A2: linearization choice inside curve allocation, hot.2d, r = 0.05.
pub fn run_curves(params: &Params) -> Vec<NamedTable> {
    let ds = hot2d(params.seed);
    let methods: Vec<DeclusterMethod> = [
        IndexScheme::Hilbert,
        IndexScheme::ZOrder,
        IndexScheme::GrayCode,
        IndexScheme::Scan,
    ]
    .iter()
    .map(|&s| DeclusterMethod::Index(s, ConflictPolicy::DataBalance))
    .collect();
    vec![crate::experiments::response_sweep_table(
        "ablation_curves",
        "Ablation A2: space-filling-curve choice inside curve allocation, hot.2d, r=0.05",
        &ds,
        &methods,
        params,
        0.05,
    )]
}

/// A3: minimax edge weight, seed sensitivity, and rejected alternatives.
pub fn run_minimax(params: &Params) -> Vec<NamedTable> {
    let ds = hot2d(params.seed);
    let gf = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&gf);
    let workload = QueryWorkload::square(&ds.domain, 0.05, params.queries, params.seed);

    // Edge weight + alternatives table.
    let methods = [
        DeclusterMethod::Minimax(EdgeWeight::Proximity),
        DeclusterMethod::Minimax(EdgeWeight::EuclideanCenter),
        DeclusterMethod::Ssp(EdgeWeight::Proximity),
        DeclusterMethod::Mst(EdgeWeight::Proximity),
        DeclusterMethod::KernighanLin(EdgeWeight::Proximity),
    ];
    let mut header = vec!["disks".to_string()];
    for m in &methods {
        header.push(format!("{} resp", m.label()));
        header.push(format!("{} bal", m.label()));
    }
    let mut table = ResultTable::new(header);
    for &m in &params.disks {
        let mut row = vec![m.to_string()];
        for method in &methods {
            let a = method.assign(&input, m, params.seed);
            let s = evaluate(&gf, &a, &workload);
            row.push(fmt2(s.mean_response));
            row.push(fmt2(a.data_balance_degree()));
        }
        table.push_row(row);
    }

    // Seed sensitivity of minimax (random seeding phase).
    let mut seeds_table =
        ResultTable::new(vec!["disks", "seeds", "mean resp", "min resp", "max resp"]);
    for &m in &params.disks {
        let responses: Vec<f64> = (0..5)
            .map(|s| {
                let a = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, m, s);
                evaluate(&gf, &a, &workload).mean_response
            })
            .collect();
        let mean = responses.iter().sum::<f64>() / responses.len() as f64;
        let min = responses.iter().cloned().fold(f64::MAX, f64::min);
        let max = responses.iter().cloned().fold(f64::MIN, f64::max);
        seeds_table.push_row(vec![
            m.to_string(),
            "5".to_string(),
            fmt2(mean),
            fmt2(min),
            fmt2(max),
        ]);
    }

    vec![
        NamedTable::new(
            "ablation_minimax",
            "Ablation A3: minimax edge weights and rejected partitioners (hot.2d, r=0.05)",
            table,
        ),
        NamedTable::new(
            "ablation_minimax_seeds",
            "Ablation A3: minimax sensitivity to the random seeding phase",
            seeds_table,
        ),
    ]
}

/// A5: generalized disk modulo (GDM) — does breaking DM's diagonal symmetry
/// with odd coefficients (1, 3, 5, ...) fix its saturation? (It improves the
/// constant but not the asymptote: the analytic argument of Theorem 1
/// applies to any fixed linear form.)
pub fn run_gdm(params: &Params) -> Vec<NamedTable> {
    use pargrid_datagen::uniform2d;
    let methods = [
        DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance),
        DeclusterMethod::Index(
            IndexScheme::GeneralizedDiskModulo,
            ConflictPolicy::DataBalance,
        ),
        DeclusterMethod::Index(IndexScheme::FieldwiseXor, ConflictPolicy::DataBalance),
        DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance),
    ];
    vec![
        crate::experiments::response_sweep_table(
            "ablation_gdm_uniform",
            "Ablation A5: generalized disk modulo vs DM/FX/HCAM, uniform.2d, r=0.05",
            &uniform2d(params.seed),
            &methods,
            params,
            0.05,
        ),
        crate::experiments::response_sweep_table(
            "ablation_gdm_hot",
            "Ablation A5: generalized disk modulo vs DM/FX/HCAM, hot.2d, r=0.05",
            &hot2d(params.seed),
            &methods,
            params,
            0.05,
        ),
    ]
}

/// A6: robustness and objective validation.
///
/// * **Heterogeneous disks** — the paper's simulator assumes identical
///   per-bucket read time on every disk; re-run Figure 6's comparison with
///   one disk 2x slower and check the ranking survives.
/// * **Objective validation** — the minimax algorithm optimizes intra-disk
///   proximity mass; its use as a stand-in for response time is justified
///   by measuring the correlation between the two across many assignments.
pub fn run_robustness(params: &Params) -> Vec<NamedTable> {
    use pargrid_core::Assignment;
    use pargrid_sim::{evaluate_heterogeneous, intra_disk_proximity};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let ds = hot2d(params.seed);
    let gf = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&gf);
    let workload = QueryWorkload::square(&ds.domain, 0.05, params.queries, params.seed);
    let m = 16usize;

    // Heterogeneous-disk table.
    let mut hetero = ResultTable::new(vec![
        "method",
        "uniform disks",
        "one disk 2x slow",
        "p95 (uniform)",
        "max (uniform)",
    ]);
    let mut slowdown = vec![1.0; m];
    slowdown[0] = 2.0;
    for method in DeclusterMethod::paper_five() {
        let a = method.assign(&input, m, params.seed);
        let s = evaluate(&gf, &a, &workload);
        let h = evaluate_heterogeneous(&gf, &a, &workload, &slowdown);
        hetero.push_row(vec![
            method.label(),
            fmt2(s.mean_response),
            fmt2(h),
            s.p95_response.to_string(),
            s.max_response.to_string(),
        ]);
    }

    // Objective-validation table: proximity mass vs measured response for
    // every method plus random assignments, with the rank correlation.
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for method in DeclusterMethod::paper_five() {
        let a = method.assign(&input, m, params.seed);
        rows.push((
            method.label(),
            intra_disk_proximity(&input, &a),
            evaluate(&gf, &a, &workload).mean_response,
        ));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    for r in 0..5 {
        // Balanced random assignment: shuffle a round-robin vector.
        let mut disks: Vec<u32> = (0..input.n_buckets()).map(|i| (i % m) as u32).collect();
        disks.shuffle(&mut rng);
        let a = Assignment::new(&input, m, disks);
        rows.push((
            format!("random-{r}"),
            intra_disk_proximity(&input, &a),
            evaluate(&gf, &a, &workload).mean_response,
        ));
    }
    let corr = pearson(
        &rows.iter().map(|r| r.1).collect::<Vec<_>>(),
        &rows.iter().map(|r| r.2).collect::<Vec<_>>(),
    );
    let mut objective = ResultTable::new(vec![
        "assignment",
        "intra-disk proximity",
        "measured response",
    ]);
    for (label, prox, resp) in &rows {
        objective.push_row(vec![label.clone(), fmt2(*prox), fmt2(*resp)]);
    }

    vec![
        NamedTable::new(
            "ablation_hetero_disks",
            format!("Ablation A6: response under heterogeneous disks (hot.2d, M = {m}, r=0.05)"),
            hetero,
        ),
        NamedTable::new(
            "ablation_objective",
            format!(
                "Ablation A6: proximity objective vs measured response \
                 (hot.2d, M = {m}; Pearson r = {corr:.3})"
            ),
            objective,
        ),
    ]
}

/// A8: query-distribution sensitivity — rerun the five-algorithm comparison
/// with query centers drawn from the data instead of uniformly. The paper's
/// uniform-center methodology is the optimistic case for index-based
/// schemes (hot regions get no extra query pressure); data-centered queries
/// concentrate load exactly where buckets are densest.
pub fn run_query_distribution(params: &Params) -> Vec<NamedTable> {
    let ds = hot2d(params.seed);
    let gf = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&gf);
    let uniform_w = QueryWorkload::square(&ds.domain, 0.01, params.queries, params.seed);
    let data_w = QueryWorkload::square_data_centered(
        &ds.domain,
        &ds.points,
        0.01,
        params.queries,
        params.seed,
    );
    let mut table = ResultTable::new(vec![
        "disks",
        "method",
        "uniform centers",
        "data centers",
        "data/uniform",
    ]);
    for &m in &params.disks {
        for method in DeclusterMethod::paper_five() {
            let a = method.assign(&input, m, params.seed);
            let u = evaluate(&gf, &a, &uniform_w).mean_response;
            let d = evaluate(&gf, &a, &data_w).mean_response;
            table.push_row(vec![
                m.to_string(),
                method.label(),
                fmt2(u),
                fmt2(d),
                fmt2(d / u),
            ]);
        }
    }
    vec![NamedTable::new(
        "ablation_query_dist",
        "Ablation A8: uniform vs data-centered query workloads (hot.2d, r=0.01)",
        table,
    )]
}

/// Pearson correlation coefficient.
fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    let vy: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}

/// A1: declustering cost vs bucket count (wall clock; the Criterion bench
/// `decluster_cost` measures the same more rigorously).
pub fn run_cost(params: &Params) -> Vec<NamedTable> {
    let mut table = ResultTable::new(vec![
        "buckets",
        "DM/D (ms)",
        "HCAM/D (ms)",
        "SSP (ms)",
        "MiniMax (ms)",
    ]);
    for n_records in [5_000usize, 20_000, 80_000] {
        let ds = dsmc3d_sized(params.seed, n_records);
        let gf = ds.build_grid_file();
        let input = DeclusterInput::from_grid_file(&gf);
        let mut row = vec![input.n_buckets().to_string()];
        for method in [
            DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance),
            DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance),
            DeclusterMethod::Ssp(EdgeWeight::Proximity),
            DeclusterMethod::Minimax(EdgeWeight::Proximity),
        ] {
            let t0 = Instant::now();
            let _ = method.assign(&input, 16, params.seed);
            row.push(fmt2(t0.elapsed().as_secs_f64() * 1e3));
        }
        table.push_row(row);
    }
    vec![NamedTable::new(
        "ablation_cost",
        "Ablation A1: declustering wall-clock cost vs bucket count (M = 16)",
        table,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_ablation_has_four_methods() {
        let mut p = Params::quick();
        p.queries = 30;
        p.disks = vec![8];
        let tables = run_curves(&p);
        assert_eq!(tables.len(), 1);
    }

    #[test]
    fn minimax_ablation_tables() {
        let mut p = Params::quick();
        p.queries = 30;
        p.disks = vec![8];
        let tables = run_minimax(&p);
        assert_eq!(tables.len(), 2);
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;

    #[test]
    fn robustness_tables_fill() {
        let mut p = Params::quick();
        p.queries = 40;
        let tables = run_robustness(&p);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].table.n_rows(), 5);
        assert_eq!(tables[1].table.n_rows(), 10);
    }

    #[test]
    fn gdm_ablation_tables_fill() {
        let mut p = Params::quick();
        p.queries = 30;
        p.disks = vec![8, 32];
        let tables = run_gdm(&p);
        assert_eq!(tables.len(), 2);
    }

    #[test]
    fn pearson_sanity() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-9);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-9);
    }
}
