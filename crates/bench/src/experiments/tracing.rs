//! Particle tracing on the SPMD engine (A4) — the access pattern §4 names
//! as future work ("we will continue to work on various access patterns
//! such as particle tracing"), run on both spatio-temporal datasets the
//! conclusions mention (DSMC and MHD).
//!
//! A trace follows one particle through every snapshot with a small moving
//! window (r = 0.002 of the spatial volume per step). Unlike animation
//! sweeps, traces touch few buckets per step, so declustering quality —
//! whether the consecutive, spatially-adjacent buckets of the trace live on
//! different disks — shows up directly in blocks-per-step.

use crate::{NamedTable, Params};
use pargrid_core::{ConflictPolicy, DeclusterInput, DeclusterMethod, EdgeWeight, IndexScheme};
use pargrid_datagen::{dsmc4d, mhd4d};
use pargrid_parallel::{EngineConfig, ParallelGridFile};
use pargrid_sim::table::{fmt2, ResultTable};
use pargrid_sim::QueryWorkload;
use std::sync::Arc;

const SNAPSHOTS: usize = 40;
const TRACES: usize = 32;

/// Runs the experiment.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let scale = if params.full_scale {
        1_000_000
    } else {
        300_000
    };
    [
        dsmc4d(params.seed, SNAPSHOTS, scale),
        mhd4d(params.seed, SNAPSHOTS, scale),
    ]
    .into_iter()
    .map(|ds| {
        let gf = Arc::new(ds.build_grid_file());
        let input = DeclusterInput::from_grid_file(&gf);
        let methods = [
            DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance),
            DeclusterMethod::Minimax(EdgeWeight::Proximity),
        ];
        let mut table = ResultTable::new(vec![
            "workers",
            "method",
            "blocks/step",
            "comm (ms/step)",
            "elapsed (ms/step)",
            "cache hit",
        ]);
        for &workers in &[4usize, 8, 16] {
            for method in &methods {
                let assignment = method.assign(&input, workers, params.seed);
                let engine =
                    ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
                let mut totals = pargrid_parallel::RunStats::default();
                for t in 0..TRACES {
                    let trace = QueryWorkload::particle_trace(
                        &ds.domain,
                        0.002,
                        SNAPSHOTS,
                        0.03,
                        params.seed + t as u64,
                    );
                    let s = engine.run_workload(&trace);
                    totals.queries += s.queries;
                    totals.response_blocks += s.response_blocks;
                    totals.total_blocks += s.total_blocks;
                    totals.cache_hits += s.cache_hits;
                    totals.comm_us += s.comm_us;
                    totals.elapsed_us += s.elapsed_us;
                }
                let steps = totals.queries as f64;
                table.push_row(vec![
                    workers.to_string(),
                    method.label(),
                    fmt2(totals.response_blocks as f64 / steps),
                    fmt2(totals.comm_us as f64 / steps / 1e3),
                    fmt2(totals.elapsed_us as f64 / steps / 1e3),
                    fmt2(totals.cache_hits as f64 / totals.total_blocks.max(1) as f64),
                ]);
            }
        }
        NamedTable::new(
            format!("tracing_{}", ds.name.replace('.', "_")),
            format!(
                "A4: particle tracing on {} ({} traces x {} steps, r=0.002)",
                ds.name, TRACES, SNAPSHOTS
            ),
            table,
        )
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracing_runs_at_tiny_scale() {
        let ds = dsmc4d(1, 6, 12_000);
        let gf = Arc::new(ds.build_grid_file());
        let input = DeclusterInput::from_grid_file(&gf);
        let a = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 4, 1);
        let engine = ParallelGridFile::build(Arc::clone(&gf), &a, EngineConfig::default());
        let trace = QueryWorkload::particle_trace(&ds.domain, 0.01, 6, 0.05, 3);
        let s = engine.run_workload(&trace);
        assert_eq!(s.queries, 6);
        assert!(s.total_blocks > 0);
    }
}
