//! Analytic study (§2.3): Theorems 1 and 2, closed form vs brute force.
//!
//! Unlike the other experiments these are exact checks, not simulations:
//! the table shows the DM closed form against exhaustive enumeration (they
//! must agree everywhere) and the measured FX scaling ratios against the
//! bound of Theorem 2(iii).

use crate::{NamedTable, Params};
use pargrid_core::analysis::{
    dm_response_2d, dm_response_brute_2d, dm_strictly_optimal_2d, fx_expected_response_2d,
    optimal_response_2d,
};
use pargrid_sim::table::{fmt2, ResultTable};

/// Runs the verification.
pub fn run(_params: &Params) -> Vec<NamedTable> {
    // Theorem 1: DM closed form for a representative query side.
    let mut t1 = ResultTable::new(vec![
        "l",
        "disks",
        "closed form",
        "brute force",
        "optimal",
        "strictly optimal",
    ]);
    let mut mismatches = 0;
    for l in [4u64, 7, 10, 16, 25] {
        for m in [2u64, 4, 6, 8, 10, 12, 16, 24, 32] {
            let closed = dm_response_2d(l, m);
            let brute = dm_response_brute_2d(l, m);
            if closed != brute {
                mismatches += 1;
            }
            t1.push_row(vec![
                l.to_string(),
                m.to_string(),
                closed.to_string(),
                brute.to_string(),
                optimal_response_2d(l, m).to_string(),
                dm_strictly_optimal_2d(l, m).to_string(),
            ]);
        }
    }
    assert_eq!(
        mismatches, 0,
        "Theorem 1 closed form diverged from brute force"
    );

    // Theorem 2: FX expected response and the 3/4 scaling bound.
    let mut t2 = ResultTable::new(vec![
        "query side",
        "disks",
        "E[R_FX]",
        "optimal",
        "R(2m)/R(m)",
        "bound 0.75 holds",
    ]);
    for m_exp in [1u32, 2, 3] {
        let l = 1u64 << m_exp;
        let mut prev: Option<f64> = None;
        for n_exp in 0..=6u32 {
            let m = 1u64 << n_exp;
            let r = fx_expected_response_2d(l, m, 7);
            let ratio = prev.map(|p| r / p);
            t2.push_row(vec![
                l.to_string(),
                m.to_string(),
                fmt2(r),
                fmt2((l * l) as f64 / m as f64),
                ratio.map_or("-".to_string(), fmt2),
                ratio.map_or("-".to_string(), |x| {
                    // Theorem 2(iii) applies once saturated (n > m).
                    if n_exp > m_exp {
                        (x >= 0.75 - 1e-9).to_string()
                    } else {
                        "-".to_string()
                    }
                }),
            ]);
            prev = Some(r);
        }
    }

    vec![
        NamedTable::new(
            "theorem1",
            "Theorem 1: DM response for l x l queries — closed form vs exhaustive enumeration",
            t1,
        ),
        NamedTable::new(
            "theorem2",
            "Theorem 2: FX expected response (128x128 grid) and the 3/4 scaling bound",
            t2,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_agree_and_tables_fill() {
        let tables = run(&Params::quick());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].table.n_rows(), 5 * 9);
        assert_eq!(tables[1].table.n_rows(), 3 * 7);
    }
}
