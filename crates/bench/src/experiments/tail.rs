//! Tail-latency ranking of the declustering methods on the hot-region
//! workload.
//!
//! Mean response time (the paper's metric) hides what a multi-user service
//! actually promises: the *tail*. Two methods with equal means can differ
//! sharply at p99 when one of them occasionally piles a query's buckets on
//! a single disk. This experiment records the per-query response time of
//! every method into a log-bucketed histogram and ranks DM, FX, HCAM,
//! minimax, and SSP by p50/p90/p95/p99/p999 across the disk sweep, plus a
//! traced engine run whose per-disk service timeline is rendered as a
//! Gantt chart (`tail_timeline.svg`).

use crate::{NamedTable, Params};
use pargrid_core::{ConflictPolicy, DeclusterInput, DeclusterMethod, EdgeWeight, IndexScheme};
use pargrid_obs::{Histogram, Recorder, SpanKind};
use pargrid_parallel::{EngineConfig, ParallelGridFile};
use pargrid_sim::metrics::query_response;
use pargrid_sim::plot::{GanttChart, GanttLane, LineChart, Series};
use pargrid_sim::table::{fmt2, ResultTable};
use pargrid_sim::QueryWorkload;
use std::collections::BTreeMap;
use std::sync::Arc;

const QUERY_RATIO: f64 = 0.05;
const TIMELINE_WORKERS: usize = 4;

fn methods() -> Vec<DeclusterMethod> {
    vec![
        DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance),
        DeclusterMethod::Index(IndexScheme::FieldwiseXor, ConflictPolicy::DataBalance),
        DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance),
        DeclusterMethod::Minimax(EdgeWeight::Proximity),
        DeclusterMethod::Ssp(EdgeWeight::Proximity),
    ]
}

/// Runs the tail-percentile sweep and the traced timeline run.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let ds = pargrid_datagen::hot2d(params.seed);
    let gf = Arc::new(ds.build_grid_file());
    let input = DeclusterInput::from_grid_file(&gf);
    let workload = QueryWorkload::square(&ds.domain, QUERY_RATIO, params.queries, params.seed);

    let mut table = ResultTable::new(vec![
        "disks", "method", "mean", "p50", "p90", "p95", "p99", "p999", "max",
    ]);
    let mut chart = LineChart::new(
        format!(
            "p99 response time, hot-region workload (r = {QUERY_RATIO}, {} queries)",
            params.queries
        ),
        "number of disks",
        "p99 response time (buckets)",
    );

    for method in &methods() {
        let mut p99_series: Vec<(f64, f64)> = Vec::new();
        for &m in &params.disks {
            let assignment = method.assign(&input, m, params.seed);
            let mut hist = Histogram::new();
            for q in &workload.queries {
                let (resp, _) = query_response(&gf, &assignment, q);
                hist.record(resp);
            }
            let t = hist.tail_summary();
            table.push_row(vec![
                m.to_string(),
                method.label(),
                fmt2(hist.mean()),
                t.p50.to_string(),
                t.p90.to_string(),
                t.p95.to_string(),
                t.p99.to_string(),
                t.p999.to_string(),
                t.max.to_string(),
            ]);
            p99_series.push((m as f64, t.p99 as f64));
        }
        chart.push(Series::new(method.label(), p99_series));
    }

    let timeline = disk_timeline(&gf, &input, &workload, params);

    vec![NamedTable::new(
        "tail",
        format!(
            "Tail response-time percentiles on {} ({} queries, r = {QUERY_RATIO})",
            ds.name, params.queries
        ),
        table,
    )
    .with_chart(chart)
    .with_timeline(timeline)]
}

/// Runs one traced engine pass and turns its `DiskBatch` spans into a
/// per-disk Gantt chart: each lane is one disk's busy clock, so skew across
/// disks shows up as ragged right edges.
fn disk_timeline(
    gf: &Arc<pargrid_gridfile::GridFile>,
    input: &DeclusterInput,
    workload: &QueryWorkload,
    params: &Params,
) -> GanttChart {
    let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(
        input,
        TIMELINE_WORKERS,
        params.seed,
    );
    let recorder = Arc::new(Recorder::new(TIMELINE_WORKERS));
    // The SP-2 configuration (seven disks per worker) makes the per-disk
    // lanes worth looking at.
    let config = EngineConfig::sp2_seven_disks().obs(|o| o.with_recorder(Arc::clone(&recorder)));
    let disks_per_worker = config.disks_per_worker.max(1);
    let engine = ParallelGridFile::build(Arc::clone(gf), &assignment, config);
    // A modest slice of the workload keeps the figure legible.
    let slice = QueryWorkload {
        queries: workload.queries.iter().take(24).copied().collect(),
    };
    let _ = engine.run_workload_concurrent(&slice, 8);
    drop(engine); // joins the workers so the snapshot is complete

    let snap = recorder.snapshot();
    let mut lanes: BTreeMap<u32, Vec<(f64, f64)>> = BTreeMap::new();
    for ev in snap.events_of(SpanKind::DiskBatch) {
        lanes
            .entry(ev.disk)
            .or_default()
            .push((ev.ts_us as f64, ev.dur_us as f64));
    }
    let mut gantt = GanttChart::new(
        format!(
            "Per-disk service timeline, minimax ({TIMELINE_WORKERS} workers x {disks_per_worker} disks)"
        ),
        "disk busy time (virtual us)",
    );
    for (disk, spans) in lanes {
        let worker = disk as usize / disks_per_worker;
        let local = disk as usize % disks_per_worker;
        gantt.push(GanttLane::new(format!("w{worker}/d{local}"), spans));
    }
    gantt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_runs_at_tiny_scale() {
        let params = Params {
            queries: 40,
            disks: vec![4, 8],
            even_disks: vec![4, 8],
            seed: 3,
            full_scale: false,
        };
        let tables = run(&params);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        // 5 methods x 2 disk counts.
        assert_eq!(t.table.n_rows(), 10);
        let timeline = t.timeline.as_ref().expect("traced run attaches a gantt");
        assert!(!timeline.lanes.is_empty());
        let svg = timeline.to_svg();
        assert!(svg.contains("w0/d0"));
    }

    #[test]
    fn percentiles_are_ordered_in_every_row() {
        let params = Params {
            queries: 60,
            disks: vec![8],
            even_disks: vec![8],
            seed: 7,
            full_scale: false,
        };
        let tables = run(&params);
        for row in tables[0].table.rows() {
            let at = |i: usize| row[i].parse::<u64>().expect("integer percentile");
            let (p50, p90, p95, p99, p999, max) = (at(3), at(4), at(5), at(6), at(7), at(8));
            assert!(p50 <= p90 && p90 <= p95 && p95 <= p99 && p99 <= p999 && p999 <= max);
        }
    }
}
