//! Degraded-mode query service: response time and throughput with 0, 1 or 2
//! failed workers out of 16, replicated versus unreplicated.
//!
//! The paper's engine assumes all processors stay up. This experiment
//! injects fail-stop faults ([`pargrid_parallel::FaultPlan::kill_first`])
//! into a 16-worker engine over the skewed `hot.2d` dataset and measures
//! what a client sees: with chained-declustered replication
//! ([`ParallelGridFile::build_replicated`]) every query still returns the
//! exact answer set from the survivors (response time degrades gracefully —
//! the failed workers' buckets are served by their chained neighbors),
//! while the unreplicated layout can only flag the affected queries as
//! incomplete.

use crate::{NamedTable, Params};
use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_parallel::{EngineConfig, FaultPlan, ParallelGridFile};
use pargrid_sim::plot::{LineChart, Series};
use pargrid_sim::table::{fmt2, ResultTable};
use pargrid_sim::QueryWorkload;
use std::sync::Arc;

const WORKERS: usize = 16;
const FAILURES: [usize; 3] = [0, 1, 2];
const WINDOW: usize = 8;

/// Runs the failed-workers sweep, replicated and unreplicated.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let ds = pargrid_datagen::hot2d(params.seed);
    let gf = Arc::new(ds.build_grid_file());
    let input = DeclusterInput::from_grid_file(&gf);
    let method = DeclusterMethod::Minimax(EdgeWeight::Proximity);
    let workload = QueryWorkload::square(&ds.domain, 0.05, params.queries, params.seed);

    let mut table = ResultTable::new(vec![
        "layout",
        "failed workers",
        "live workers",
        "queries",
        "mean response (ms)",
        "response vs healthy",
        "queries/s",
        "retries",
        "failed-over blocks",
        "incomplete queries",
    ]);
    let mut resp_chart = LineChart::new(
        "Degraded-mode response time (16 workers, hot.2d, r = 0.05)",
        "failed workers",
        "mean response time (ms)",
    );
    let mut qps_chart = LineChart::new(
        "Degraded-mode throughput (16 workers, hot.2d, r = 0.05)",
        "failed workers",
        "queries per second",
    );

    let mut qps_table = ResultTable::new(vec!["layout", "failed workers", "queries/s"]);
    for replicated in [true, false] {
        let layout = if replicated {
            "replicated"
        } else {
            "unreplicated"
        };
        let mut resp_points = Vec::new();
        let mut qps_points = Vec::new();
        let mut healthy_resp = 0.0f64;
        for &k in &FAILURES {
            // Fresh engine per cell (cold caches, fresh fault plan). A short
            // real-time failure-detection timeout keeps the sweep fast; all
            // reported times are virtual and unaffected by it. Failures are
            // spaced around the chain (workers 0 and 8 for k = 2): chained
            // declustering tolerates any set of pairwise non-adjacent
            // failures, while two *adjacent* failures would lose both copies
            // of the buckets between them.
            let mut faults = FaultPlan::none();
            for i in 0..k {
                faults = faults.with_kill(i * WORKERS / k.max(1));
            }
            let config = EngineConfig::default()
                .resilience(|r| r.with_fail_timeout_ms(25).with_faults(faults));
            let engine = if replicated {
                let ra = method.assign_replicated(&input, WORKERS, params.seed);
                ParallelGridFile::build_replicated(Arc::clone(&gf), &ra, config)
            } else {
                let a = method.assign(&input, WORKERS, params.seed);
                ParallelGridFile::build(Arc::clone(&gf), &a, config)
            };
            let (outcomes, tp) = engine.run_workload_concurrent(&workload, WINDOW);
            let mean_resp_ms = outcomes.iter().map(|o| o.elapsed_us).sum::<u64>() as f64
                / outcomes.len().max(1) as f64
                / 1e3;
            if k == 0 {
                healthy_resp = mean_resp_ms;
            }
            let incomplete = outcomes.iter().filter(|o| o.incomplete).count();
            table.push_row(vec![
                layout.to_string(),
                k.to_string(),
                (WORKERS - k).to_string(),
                tp.queries.to_string(),
                fmt2(mean_resp_ms),
                fmt2(mean_resp_ms / healthy_resp.max(f64::EPSILON)),
                fmt2(tp.queries_per_second()),
                tp.retries.to_string(),
                tp.failed_over_blocks.to_string(),
                incomplete.to_string(),
            ]);
            qps_table.push_row(vec![
                layout.to_string(),
                k.to_string(),
                fmt2(tp.queries_per_second()),
            ]);
            resp_points.push((k as f64, mean_resp_ms));
            qps_points.push((k as f64, tp.queries_per_second()));
        }
        resp_chart.push(Series::new(layout, resp_points));
        qps_chart.push(Series::new(layout, qps_points));
    }

    vec![
        NamedTable::new(
            "degradation",
            format!(
                "Degraded-mode service: failed-worker sweep ({} queries, r = 0.05, {})",
                params.queries, ds.name
            ),
            table,
        )
        .with_chart(resp_chart),
        NamedTable::new(
            "degradation-throughput",
            "Degraded-mode throughput versus failed workers".to_string(),
            qps_table,
        )
        .with_chart(qps_chart),
    ]
}
