//! Tables 2 and 3: number of closest bucket pairs assigned to the same disk,
//! for `DSMC.3d` (Table 2) and `stock.3d` (Table 3).
//!
//! Paper shape: DM and FX keep a high, flat count; HCAM/D decays with disks;
//! SSP second lowest; MiniMax at or near zero almost everywhere.

use crate::{NamedTable, Params};
use pargrid_core::{DeclusterInput, DeclusterMethod};
use pargrid_datagen::{dsmc3d, stock3d, Dataset};
use pargrid_sim::metrics::{closest_pairs, count_pairs_on_same_disk};
use pargrid_sim::table::ResultTable;

/// Runs both tables.
pub fn run(params: &Params) -> Vec<NamedTable> {
    vec![
        one_table("table2", "Table 2", &dsmc3d(params.seed), params),
        one_table("table3", "Table 3", &stock3d(params.seed), params),
    ]
}

/// Runs Table 2 only (used by the `table2` subcommand).
pub fn run_table2(params: &Params) -> Vec<NamedTable> {
    vec![one_table("table2", "Table 2", &dsmc3d(params.seed), params)]
}

/// Runs Table 3 only (used by the `table3` subcommand).
pub fn run_table3(params: &Params) -> Vec<NamedTable> {
    vec![one_table(
        "table3",
        "Table 3",
        &stock3d(params.seed),
        params,
    )]
}

fn one_table(id: &str, label: &str, ds: &Dataset, params: &Params) -> NamedTable {
    let gf = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&gf);
    let pairs = closest_pairs(&input);
    let methods = DeclusterMethod::paper_five();

    let mut header = vec!["method".to_string()];
    header.extend(params.even_disks.iter().map(|m| m.to_string()));
    let mut table = ResultTable::new(header);
    for method in &methods {
        let mut row = vec![method.label()];
        for &m in &params.even_disks {
            let a = method.assign(&input, m, params.seed);
            row.push(count_pairs_on_same_disk(&pairs, &a).to_string());
        }
        table.push_row(row);
    }
    NamedTable::new(
        id,
        format!(
            "{label}: closest pairs ({} of {} buckets) on the same disk, {}",
            pairs.len(),
            input.n_buckets(),
            ds.name
        ),
        table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_tables_have_five_method_rows() {
        let mut p = Params::quick();
        p.even_disks = vec![4, 16];
        let tables = run(&p);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.table.n_rows(), 5);
        }
    }
}
