//! A7: incremental redeclustering under dataset growth.
//!
//! The paper's motivating workloads append snapshots over time (§1). After
//! declustering the first half of a dataset with minimax, the second half
//! arrives; compare three policies on the grown file:
//!
//! * **fresh** — rerun minimax from scratch (best quality, `O(N^2)` cost and
//!   full data migration),
//! * **incremental** — keep old placements, place only the new buckets with
//!   the minimax criterion (`O(N_new * N)`, zero migration),
//! * **naive** — keep old placements, deal new buckets round-robin (the
//!   cheapest thing an operator might do).
//!
//! Reported: response time on the grown file, balance, and how many of the
//! old buckets each policy would migrate.

use crate::{NamedTable, Params};
use pargrid_core::incremental::extend_assignment;
use pargrid_core::{Assignment, DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_datagen::hot2d;
use pargrid_gridfile::GridFile;
use pargrid_sim::table::{fmt2, ResultTable};
use pargrid_sim::{evaluate, QueryWorkload};

/// Runs the experiment.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let ds = hot2d(params.seed);
    let half = ds.len() / 2;
    let mut gf = GridFile::new(ds.grid_config());
    for rec in ds.records().take(half) {
        gf.insert(rec);
    }
    let old_input = DeclusterInput::from_grid_file(&gf);
    for rec in ds.records().skip(half) {
        gf.insert(rec);
    }
    let new_input = DeclusterInput::from_grid_file(&gf);
    let workload = QueryWorkload::square(&ds.domain, 0.05, params.queries, params.seed);

    let mut table = ResultTable::new(vec![
        "disks",
        "fresh resp",
        "incremental resp",
        "naive resp",
        "incr balance",
        "migrated (fresh)",
        "migrated (incremental)",
    ]);
    for &m in &params.disks {
        let base =
            DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&old_input, m, params.seed);
        let fresh =
            DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&new_input, m, params.seed);
        let incr = extend_assignment(&old_input, &base, &new_input, EdgeWeight::Proximity);

        // Naive: keep old, deal the rest round-robin.
        let mut naive_disks = vec![u32::MAX; new_input.n_buckets()];
        let mut next = 0u32;
        let old_ids: std::collections::HashMap<u32, u32> = old_input
            .buckets
            .iter()
            .enumerate()
            .map(|(pos, b)| (b.id, base.disk_at(pos)))
            .collect();
        for (pos, b) in new_input.buckets.iter().enumerate() {
            naive_disks[pos] = match old_ids.get(&b.id) {
                Some(&d) => d,
                None => {
                    let d = next % m as u32;
                    next += 1;
                    d
                }
            };
        }
        let naive = Assignment::new(&new_input, m, naive_disks);

        let migrated = |a: &Assignment| {
            old_input
                .buckets
                .iter()
                .enumerate()
                .filter(|(pos, b)| base.disk_at(*pos) != a.disk_of_id(b.id))
                .count()
        };

        table.push_row(vec![
            m.to_string(),
            fmt2(evaluate(&gf, &fresh, &workload).mean_response),
            fmt2(evaluate(&gf, &incr, &workload).mean_response),
            fmt2(evaluate(&gf, &naive, &workload).mean_response),
            fmt2(incr.data_balance_degree()),
            migrated(&fresh).to_string(),
            migrated(&incr).to_string(),
        ]);
    }
    vec![NamedTable::new(
        "ablation_growth",
        format!(
            "Ablation A7: dataset growth {} -> {} buckets (hot.2d, r=0.05): \
             fresh vs incremental vs naive placement",
            old_input.n_buckets(),
            new_input.n_buckets()
        ),
        table,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_table_fills_and_incremental_never_migrates() {
        let mut p = Params::quick();
        p.queries = 40;
        p.disks = vec![8];
        let tables = run(&p);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].table.n_rows(), 1);
        // "migrated (incremental)" column is 0 by construction.
        let csv = tables[0].table.to_csv();
        let last_field = csv.lines().nth(1).expect("data row").split(',').next_back();
        assert_eq!(last_field, Some("0"));
    }
}
