//! Hostile-environment resilience sweep: fault intensity versus response
//! time and answer completeness, replicated versus unreplicated.
//!
//! Each cell runs the same workload under a seeded chaos schedule
//! ([`pargrid_parallel::FaultPlan::chaos`]) of increasing intensity (number
//! of injected fault events: message drops/duplicates/delays/reorders,
//! block corruption, straggler disks, poisons, one fail-stop). The
//! replicated engine's full defense stack is armed — retransmits, checksum
//! scrub-repair, hedged reads, a real-time deadline — and every outcome is
//! checked against a fault-free oracle: an answer either matches it
//! byte-for-byte (complete) or is explicitly flagged incomplete. The
//! *completeness* column is the paper-style headline: with chained
//! replication the answer stays exact under the whole schedule, while the
//! unreplicated layout can only confess what it lost.

use crate::{NamedTable, Params};
use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_parallel::{EngineConfig, FaultPlan, ParallelGridFile, QueryOutcome};
use pargrid_sim::plot::{LineChart, Series};
use pargrid_sim::table::{fmt2, ResultTable};
use pargrid_sim::QueryWorkload;
use std::sync::Arc;

const WORKERS: usize = 16;
const WINDOW: usize = 8;
/// Injected fault events per schedule (0 = healthy baseline; 24 is the
/// chaos soak's default intensity).
const INTENSITIES: [usize; 5] = [0, 8, 16, 24, 48];

/// Runs the fault-intensity sweep, replicated and unreplicated.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let ds = pargrid_datagen::hot2d(params.seed);
    let gf = Arc::new(ds.build_grid_file());
    let input = DeclusterInput::from_grid_file(&gf);
    let method = DeclusterMethod::Minimax(EdgeWeight::Proximity);
    let workload = QueryWorkload::square(&ds.domain, 0.05, params.queries, params.seed);

    // Fault-free truth for the completeness check.
    let oracle: Vec<QueryOutcome> = {
        let a = method.assign(&input, WORKERS, params.seed);
        let engine = ParallelGridFile::build(Arc::clone(&gf), &a, EngineConfig::default());
        workload.queries.iter().map(|q| engine.query(q)).collect()
    };

    let mut table = ResultTable::new(vec![
        "layout",
        "fault events",
        "queries",
        "complete",
        "completeness %",
        "mean response (ms)",
        "retries",
        "retransmits",
        "hedges",
        "scrubbed blocks",
        "deadline expired",
        "live workers",
    ]);
    let mut completeness_chart = LineChart::new(
        "Answer completeness vs fault intensity (16 workers, hot.2d, r = 0.05)",
        "injected fault events",
        "complete-and-exact answers (%)",
    );
    let mut resp_chart = LineChart::new(
        "Response time vs fault intensity (16 workers, hot.2d, r = 0.05)",
        "injected fault events",
        "mean response time (ms)",
    );
    let mut resp_table = ResultTable::new(vec!["layout", "fault events", "mean response (ms)"]);

    for replicated in [true, false] {
        let layout = if replicated {
            "replicated"
        } else {
            "unreplicated"
        };
        let mut comp_points = Vec::new();
        let mut resp_points = Vec::new();
        for &events in &INTENSITIES {
            // Fresh engine per cell: cold caches, fresh fault schedule. The
            // short failure-detection timeout and the 2 s deadline are real
            // time; every reported response time is virtual.
            let faults = FaultPlan::chaos(
                params.seed ^ events as u64,
                WORKERS,
                params.queries as u64,
                events,
            );
            let config = EngineConfig::default()
                .resilience(|r| r.with_fail_timeout_ms(15).with_faults(faults))
                .latency(|l| l.with_deadline_us(2_000_000).with_hedging(3.0));
            let engine = if replicated {
                let ra = method.assign_replicated(&input, WORKERS, params.seed);
                ParallelGridFile::build_replicated(Arc::clone(&gf), &ra, config)
            } else {
                let a = method.assign(&input, WORKERS, params.seed);
                ParallelGridFile::build(Arc::clone(&gf), &a, config)
            };
            let (outcomes, tp) = engine.run_workload_concurrent(&workload, WINDOW);
            let complete = outcomes
                .iter()
                .zip(&oracle)
                .filter(|(o, t)| !o.incomplete && o.records == t.records)
                .count();
            // The safety contract behind the completeness column: an
            // answer the engine did not flag is byte-identical to the
            // oracle's. Loss is allowed only when confessed.
            let silent = outcomes
                .iter()
                .zip(&oracle)
                .filter(|(o, t)| !o.incomplete && o.records != t.records)
                .count();
            assert_eq!(
                silent, 0,
                "{layout}/{events}: silent divergence under faults"
            );
            let completeness = complete as f64 * 100.0 / outcomes.len().max(1) as f64;
            let mean_resp_ms = outcomes.iter().map(|o| o.elapsed_us).sum::<u64>() as f64
                / outcomes.len().max(1) as f64
                / 1e3;
            let stats = engine.stats();
            table.push_row(vec![
                layout.to_string(),
                events.to_string(),
                tp.queries.to_string(),
                complete.to_string(),
                fmt2(completeness),
                fmt2(mean_resp_ms),
                tp.retries.to_string(),
                tp.retransmits.to_string(),
                tp.hedges.to_string(),
                tp.scrubbed.to_string(),
                stats.deadline_expired.to_string(),
                stats.live_workers().to_string(),
            ]);
            resp_table.push_row(vec![
                layout.to_string(),
                events.to_string(),
                fmt2(mean_resp_ms),
            ]);
            comp_points.push((events as f64, completeness));
            resp_points.push((events as f64, mean_resp_ms));
        }
        completeness_chart.push(Series::new(layout, comp_points));
        resp_chart.push(Series::new(layout, resp_points));
    }

    vec![
        NamedTable::new(
            "resilience",
            format!(
                "Hostile-environment resilience: fault-intensity sweep ({} queries, r = 0.05, {})",
                params.queries, ds.name
            ),
            table,
        )
        .with_chart(completeness_chart),
        NamedTable::new(
            "resilience-response",
            "Response time versus fault intensity".to_string(),
            resp_table,
        )
        .with_chart(resp_chart),
    ]
}
