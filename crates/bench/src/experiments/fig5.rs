//! Figure 5: spatial distribution of records in `DSMC.3d` and `stock.3d`.
//!
//! The paper plots a molecule-population histogram per fixed cell volume for
//! DSMC.3d and a (stock id, price slice) diagram for stock.3d. We print the
//! corresponding marginal histograms and a coarse (id, price) occupancy map.

use crate::{NamedTable, Params};
use pargrid_datagen::{dsmc3d, stock3d, Dataset};
use pargrid_sim::table::ResultTable;

const BINS: usize = 16;

/// Runs the experiment.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let dsmc = dsmc3d(params.seed);
    let stock = stock3d(params.seed);
    let mut out = vec![
        marginals("fig5_dsmc3d_marginals", &dsmc),
        marginals("fig5_stock3d_marginals", &stock),
    ];
    out.push(slice_map(&stock));
    out
}

fn marginals(id: &str, ds: &Dataset) -> NamedTable {
    let mut header = vec!["bin".to_string()];
    header.extend((0..ds.dim()).map(|k| format!("dim{k}")));
    let mut table = ResultTable::new(header);
    let hists: Vec<Vec<usize>> = (0..ds.dim())
        .map(|k| ds.marginal_histogram(k, BINS))
        .collect();
    for b in 0..BINS {
        let mut row = vec![b.to_string()];
        for h in &hists {
            row.push(h[b].to_string());
        }
        table.push_row(row);
    }
    NamedTable::new(
        id,
        format!(
            "Figure 5: marginal record distribution of {} ({} records)",
            ds.name,
            ds.len()
        ),
        table,
    )
}

/// The (stock id, price) slice as an ASCII density map: the per-stock price
/// bands the paper's right diagram shows.
fn slice_map(ds: &Dataset) -> NamedTable {
    let hist = ds.slice_histogram(0, 1, 32);
    let max = hist.iter().flatten().copied().max().unwrap_or(1).max(1);
    let mut table = ResultTable::new(vec!["price_bin_rows_high_to_low".to_string()]);
    // Render transposed: rows = price bins (descending), cols = id bins.
    for price_bin in (0..32).rev() {
        let mut line = String::with_capacity(32);
        for column in &hist {
            let v = column[price_bin];
            let shade = b" .:-=+*#%@"[(v * 9).div_ceil(max).min(9)];
            line.push(shade as char);
        }
        table.push_row(vec![line]);
    }
    NamedTable::new(
        "fig5_stock3d_slice",
        "Figure 5 (right): stock id (x) vs price (y) occupancy of stock.3d",
        table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histograms_cover_all_records() {
        let tables = run(&Params::quick());
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].table.n_rows(), BINS);
        assert_eq!(tables[2].table.n_rows(), 32);
    }
}
