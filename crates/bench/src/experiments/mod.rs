//! One module per paper artifact (figure/table) plus ablations.

pub mod ablations;
pub mod degradation;
pub mod failover;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod frontier;
pub mod growth;
pub mod rebalance;
pub mod resilience;
pub mod serving;
pub mod table1;
pub mod tables23;
pub mod tables45;
pub mod tail;
pub mod theorems;
pub mod throughput;
pub mod tracing;

use crate::{NamedTable, Params};
use pargrid_core::{DeclusterInput, DeclusterMethod};
use pargrid_datagen::Dataset;
use pargrid_sim::plot::{LineChart, Series};
use pargrid_sim::table::{fmt2, ResultTable};
use pargrid_sim::{evaluate, QueryWorkload};

/// Runs `methods` over `params.disks` on one dataset and formats the
/// response-time figure both as a table (one row per disk count, one column
/// per method, plus the paper's optimal-response column) and as an SVG line
/// chart mirroring the paper's figure.
pub fn response_sweep_table(
    id: &str,
    title: &str,
    ds: &Dataset,
    methods: &[DeclusterMethod],
    params: &Params,
    r: f64,
) -> NamedTable {
    let gf = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&gf);
    let workload = QueryWorkload::square(&ds.domain, r, params.queries, params.seed);

    let mut header = vec!["disks".to_string()];
    header.extend(methods.iter().map(|m| m.label()));
    header.push("optimal".to_string());
    let mut table = ResultTable::new(header);
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); methods.len()];
    let mut optimal_series = Vec::new();

    for &m in &params.disks {
        let mut row = vec![m.to_string()];
        let mut optimal = 0.0;
        for (mi, method) in methods.iter().enumerate() {
            let assignment = method.assign(&input, m, params.seed);
            let stats = evaluate(&gf, &assignment, &workload);
            row.push(fmt2(stats.mean_response));
            series[mi].push((m as f64, stats.mean_response));
            optimal = stats.mean_optimal;
        }
        row.push(fmt2(optimal));
        optimal_series.push((m as f64, optimal));
        table.push_row(row);
    }

    let mut chart = LineChart::new(title, "number of disks", "average response time (buckets)");
    for (method, points) in methods.iter().zip(series) {
        chart.push(Series::new(method.label(), points));
    }
    chart.push(Series::dashed("optimal", optimal_series));
    NamedTable::new(id, title, table).with_chart(chart)
}

/// Formats a grid file's summary statistics as a one-row table.
pub fn grid_stats_row(ds: &Dataset) -> Vec<String> {
    let gf = ds.build_grid_file();
    let st = gf.stats();
    vec![
        ds.name.clone(),
        st.n_records.to_string(),
        st.cells_per_dim
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("x"),
        st.n_cells.to_string(),
        st.n_buckets.to_string(),
        st.n_merged_buckets.to_string(),
        fmt2(st.avg_occupancy),
        st.oversize_buckets.to_string(),
    ]
}
