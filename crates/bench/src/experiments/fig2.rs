//! Figure 2: the sample grid files for `uniform.2d`, `hot.2d`, `correl.2d`.
//!
//! The paper shows the grid partitions as pictures; we report the structural
//! statistics the caption quotes (cells, buckets, merged buckets) plus an
//! ASCII rendering of each file's bucket layout.

use crate::experiments::grid_stats_row;
use crate::{NamedTable, Params};
use pargrid_datagen::{correl2d, hot2d, uniform2d, Dataset};
use pargrid_gridfile::GridFile;
use pargrid_sim::table::ResultTable;

/// Runs the experiment.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let sets = [
        uniform2d(params.seed),
        hot2d(params.seed),
        correl2d(params.seed),
    ];
    let mut stats = ResultTable::new(vec![
        "dataset",
        "records",
        "grid",
        "cells",
        "buckets",
        "merged",
        "occupancy",
        "oversize",
    ]);
    for ds in &sets {
        stats.push_row(grid_stats_row(ds));
    }
    let mut out = vec![NamedTable::new(
        "fig2_stats",
        "Figure 2: grid files generated for the 2-D datasets \
         (paper: 252/4, 241/169, 242/164 buckets/merged)",
        stats,
    )];
    for ds in &sets {
        out.push(render_ascii(ds));
    }
    out
}

/// Renders the bucket layout as ASCII art: each grid cell prints a character
/// identifying its bucket, so merged regions show up as repeated characters.
fn render_ascii(ds: &Dataset) -> NamedTable {
    let gf = ds.build_grid_file();
    let mut table = ResultTable::new(vec!["row".to_string()]);
    for line in ascii_grid(&gf) {
        table.push_row(vec![line]);
    }
    NamedTable::new(
        format!("fig2_render_{}", ds.name.replace('.', "_")),
        format!("Figure 2 rendering: bucket map of {}", ds.name),
        table,
    )
}

/// One line per grid row (dimension 1 descending), one char per cell.
fn ascii_grid(gf: &GridFile) -> Vec<String> {
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    let cells = gf.cells_per_dim();
    assert_eq!(cells.len(), 2, "ASCII rendering is 2-D only");
    let (nx, ny) = (cells[0] as usize, cells[1] as usize);
    let mut lines = Vec::with_capacity(ny);
    for y in (0..ny).rev() {
        let mut line = String::with_capacity(nx);
        for x in 0..nx {
            let b = gf.directory().bucket_at(&[x as u32, y as u32]);
            line.push(GLYPHS[b as usize % GLYPHS.len()] as char);
        }
        lines.push(line);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_stats_and_renders() {
        let tables = run(&Params::quick());
        assert_eq!(tables.len(), 4);
        assert_eq!(tables[0].table.n_rows(), 3);
        // Renders have one line per grid row.
        assert!(tables[1].table.n_rows() >= 8);
    }

    #[test]
    fn ascii_grid_dimensions_match() {
        let ds = pargrid_datagen::uniform2d(1);
        let gf = ds.build_grid_file();
        let lines = ascii_grid(&gf);
        let cells = gf.cells_per_dim();
        assert_eq!(lines.len(), cells[1] as usize);
        assert!(lines.iter().all(|l| l.chars().count() == cells[0] as usize));
    }
}
