//! Offered-load sweep through the real TCP serving layer.
//!
//! Unlike every other experiment — which measures virtual time inside the
//! simulator — this one runs an actual `pargrid-net` server on a loopback
//! socket and drives it with the open-loop load generator. The bridge
//! between the two time domains is the server's *pacing* knob: each
//! dispatcher sleeps `pace_us_per_block ×` a query's `response_blocks`
//! (blocks on the busiest disk — the paper's response-time metric, and
//! independent of cache state) of wall time after answering it. A
//! declustering method that halves response blocks literally doubles the
//! wall-clock capacity of the server, and the throughput knee of each
//! method lands at a different offered load.
//!
//! The per-block price is calibrated once, against the *first* method in
//! the sweep, so that its mean query costs [`TARGET_SERVICE_US`] of wall
//! time per dispatcher; the same price is then used for every method,
//! keeping the wall-time budget bounded while preserving the methods'
//! relative costs. Offered load sweeps fixed multiples of the first
//! method's nominal capacity, through the knee and out to 2× overload,
//! where admission control must shed rather than stall.

use crate::{NamedTable, Params};
use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_net::{loadgen, LoadQuery, LoadgenConfig, Server, ServerConfig};
use pargrid_parallel::{EngineConfig, ParallelGridFile};
use pargrid_sim::plot::{LineChart, Series};
use pargrid_sim::table::{fmt2, ResultTable};
use pargrid_sim::QueryWorkload;
use std::sync::Arc;
use std::time::Duration;

/// Calibrated mean wall service time per query per dispatcher.
const TARGET_SERVICE_US: f64 = 2500.0;
/// Dispatcher threads — the server's parallelism in wall time.
const DISPATCHERS: usize = 2;
/// Small admission queue so overload sheds promptly instead of building a
/// deep backlog. Must be smaller than [`CLIENTS`]: each load-generator
/// connection is synchronous, so at most `CLIENTS` requests are ever in
/// flight, and a queue that seats them all would never overflow.
const QUEUE_CAPACITY: usize = 4;
/// Concurrent load-generator connections.
const CLIENTS: usize = 8;
/// Offered load as multiples of the calibrated nominal capacity.
const LOAD_POINTS: [f64; 6] = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0];

/// Runs the serving sweep: three declustering methods, offered load from
/// far below to 2× nominal capacity.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let methods = [
        DeclusterMethod::Index(
            pargrid_core::IndexScheme::DiskModulo,
            pargrid_core::ConflictPolicy::DataBalance,
        ),
        DeclusterMethod::Index(
            pargrid_core::IndexScheme::Hilbert,
            pargrid_core::ConflictPolicy::DataBalance,
        ),
        DeclusterMethod::Minimax(EdgeWeight::Proximity),
        DeclusterMethod::Index(
            pargrid_core::IndexScheme::Onion,
            pargrid_core::ConflictPolicy::DataBalance,
        ),
        DeclusterMethod::Index(
            pargrid_core::IndexScheme::LatinHypercube,
            pargrid_core::ConflictPolicy::DataBalance,
        ),
    ];
    let disks = 8;
    // Wall time per load point. Short windows are noisy — the knee's
    // method ordering only stabilizes with a few thousand arrivals per
    // point — so paper scale buys precision with real seconds.
    let point_secs = if params.queries >= 1000 { 4.0 } else { 1.0 };

    let ds = pargrid_datagen::hot2d(params.seed);
    let gf = Arc::new(ds.build_grid_file());
    let input = DeclusterInput::from_grid_file(&gf);
    let workload = QueryWorkload::square(&ds.domain, 0.05, 64, params.seed);
    let queries: Vec<LoadQuery> = workload
        .queries
        .iter()
        .map(|q| LoadQuery::Range {
            lo: q.lo().coords().to_vec(),
            hi: q.hi().coords().to_vec(),
        })
        .collect();

    // Calibrate pacing on the first method: mean response blocks (blocks
    // on the busiest disk, the paper's response-time metric) over a probe
    // run, scaled so one dispatcher spends TARGET_SERVICE_US of wall time
    // per mean query *of the first method*. Better methods have fewer
    // response blocks per query, so the same per-block price buys them a
    // genuinely higher wall-clock capacity.
    let probe_assignment = methods[0].assign(&input, disks, params.seed);
    let probe =
        ParallelGridFile::build(Arc::clone(&gf), &probe_assignment, EngineConfig::default());
    let mut probe_session = probe.session();
    let mean_response_blocks = workload
        .queries
        .iter()
        .map(|q| probe_session.query(q).response_blocks.max(1))
        .sum::<u64>() as f64
        / workload.len() as f64;
    let _ = probe_session.close();
    drop(probe);
    let pace_us_per_block = (TARGET_SERVICE_US / mean_response_blocks).round().max(1.0) as u64;
    let capacity_qps = DISPATCHERS as f64 * 1e6 / TARGET_SERVICE_US;

    let mut table = ResultTable::new(vec![
        "method",
        "offered (x capacity)",
        "offered qps",
        "served qps",
        "shed rate",
        "p50 sojourn (ms)",
        "p95 sojourn (ms)",
        "p99 sojourn (ms)",
    ]);
    let mut chart = LineChart::new(
        "Served throughput vs offered load through the TCP serving layer",
        "offered load (queries/s)",
        "served queries/s",
    );

    for method in &methods {
        let assignment = method.assign(&input, disks, params.seed);
        let mut series = Vec::new();
        for &mult in &LOAD_POINTS {
            // Fresh engine + server per point: cold caches, zeroed
            // counters, a clean admission queue.
            let engine = Arc::new(ParallelGridFile::build(
                Arc::clone(&gf),
                &assignment,
                EngineConfig::default(),
            ));
            let server = Server::start(
                Arc::clone(&engine),
                "127.0.0.1:0",
                ServerConfig {
                    queue_capacity: QUEUE_CAPACITY,
                    dispatchers: DISPATCHERS,
                    pace_us_per_block,
                    ..ServerConfig::default()
                },
            )
            .expect("bind loopback");
            let addr = server.local_addr().to_string();

            let offered_qps = capacity_qps * mult;
            let report = loadgen::run(
                &addr,
                &LoadgenConfig {
                    clients: CLIENTS,
                    rate_per_client: offered_qps / CLIENTS as f64,
                    duration: Duration::from_secs_f64(point_secs),
                    queries: queries.clone(),
                },
            )
            .expect("load generation");
            server.shutdown();

            table.push_row(vec![
                method.label(),
                fmt2(mult),
                fmt2(report.offered as f64 / report.elapsed.as_secs_f64()),
                fmt2(report.served_qps()),
                fmt2(report.shed_rate()),
                fmt2(report.sojourn_quantile_us(0.50) as f64 / 1e3),
                fmt2(report.sojourn_quantile_us(0.95) as f64 / 1e3),
                fmt2(report.sojourn_quantile_us(0.99) as f64 / 1e3),
            ]);
            series.push((offered_qps, report.served_qps()));
        }
        chart.push(Series::new(method.label(), series));
    }

    vec![NamedTable::new(
        "serving",
        format!(
            "TCP serving layer under offered load ({} dispatchers, queue {QUEUE_CAPACITY}, {CLIENTS} clients, {disks} disks, {})",
            DISPATCHERS, ds.name
        ),
        table,
    )
    .with_chart(chart)]
}
