//! Figure 4: DM/D vs FX/D vs HCAM/D vs optimal on the three 2-D datasets
//! (r = 0.05, data-balance conflict resolution).

use crate::{NamedTable, Params};
use pargrid_core::{ConflictPolicy, DeclusterMethod, IndexScheme};
use pargrid_datagen::{correl2d, hot2d, uniform2d};

/// Runs the experiment.
pub fn run(params: &Params) -> Vec<NamedTable> {
    let methods = [
        DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance),
        DeclusterMethod::Index(IndexScheme::FieldwiseXor, ConflictPolicy::DataBalance),
        DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance),
    ];
    [
        (uniform2d(params.seed), "left"),
        (hot2d(params.seed), "center"),
        (correl2d(params.seed), "right"),
    ]
    .iter()
    .map(|(ds, side)| {
        crate::experiments::response_sweep_table(
            &format!("fig4_{}", ds.name.replace('.', "_")),
            &format!(
                "Figure 4 ({side}): index-based declustering on {}, r=0.05",
                ds.name
            ),
            ds,
            &methods,
            params,
            0.05,
        )
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_dataset_tables() {
        let tables = run(&Params::quick());
        assert_eq!(tables.len(), 3);
        assert!(tables[0].id.contains("uniform"));
    }
}
