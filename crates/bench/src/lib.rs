//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment module builds its datasets, runs the paper's methodology
//! (1,000 random square queries per configuration unless stated otherwise)
//! and returns [`NamedTable`]s that the `repro` binary prints and writes to
//! `results/*.csv`. The experiment ids (`fig4`, `table2`, ...) match the
//! paper's numbering; `DESIGN.md` §4 maps each to its modules and expected
//! shape, `EXPERIMENTS.md` records paper-vs-measured.

#![warn(missing_docs)]

pub mod experiments;

use pargrid_sim::plot::{GanttChart, LineChart};
use pargrid_sim::table::ResultTable;

/// A titled result table produced by an experiment, optionally paired with
/// the figure it plots.
pub struct NamedTable {
    /// Stable id; also the CSV/SVG file stem (`fig4_hot2d`).
    pub id: String,
    /// Human-readable title printed above the table.
    pub title: String,
    /// The data.
    pub table: ResultTable,
    /// The rendered figure, for experiments that are figures in the paper.
    pub chart: Option<LineChart>,
    /// A per-disk timeline (`{id}_timeline.svg`), for traced runs.
    pub timeline: Option<GanttChart>,
}

impl NamedTable {
    /// Creates a named table without a chart.
    pub fn new(id: impl Into<String>, title: impl Into<String>, table: ResultTable) -> Self {
        NamedTable {
            id: id.into(),
            title: title.into(),
            table,
            chart: None,
            timeline: None,
        }
    }

    /// Attaches a chart.
    pub fn with_chart(mut self, chart: LineChart) -> Self {
        self.chart = Some(chart);
        self
    }

    /// Attaches a per-disk timeline.
    pub fn with_timeline(mut self, timeline: GanttChart) -> Self {
        self.timeline = Some(timeline);
        self
    }
}

/// Global experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Queries per configuration (the paper uses 1,000).
    pub queries: usize,
    /// Disk counts to sweep (the paper uses 4..=32).
    pub disks: Vec<usize>,
    /// Even disk counts only (Table 1 prints those).
    pub even_disks: Vec<usize>,
    /// Master seed for dataset generation and workloads.
    pub seed: u64,
    /// Run the SP-2 reproduction at the paper's full 3M-record scale.
    pub full_scale: bool,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Params {
            queries: 1000,
            disks: (2..=16).map(|i| i * 2).collect(), // 4, 6, ..., 32
            even_disks: (2..=16).map(|i| i * 2).collect(),
            seed: 42,
            full_scale: false,
        }
    }

    /// A scaled-down configuration for smoke tests and CI.
    pub fn quick() -> Self {
        Params {
            queries: 150,
            disks: vec![4, 8, 16, 32],
            even_disks: vec![4, 8, 16, 32],
            seed: 42,
            full_scale: false,
        }
    }
}
