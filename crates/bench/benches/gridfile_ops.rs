//! Core grid-file operation throughput: bulk loading, point lookups, range
//! queries and partial-match queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pargrid_datagen::{hot2d, uniform2d};
use pargrid_geom::Rect;
use pargrid_sim::QueryWorkload;
use std::hint::black_box;

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("gridfile_bulk_load");
    group.sample_size(10);
    for (name, ds) in [("uniform.2d", uniform2d(42)), ("hot.2d", hot2d(42))] {
        group.throughput(Throughput::Elements(ds.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &ds, |b, ds| {
            b.iter(|| black_box(ds.build_grid_file()))
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let ds = hot2d(42);
    let gf = ds.build_grid_file();
    let mut group = c.benchmark_group("gridfile_queries");
    for r in [0.01, 0.05, 0.1] {
        let w = QueryWorkload::square(&ds.domain, r, 256, 7);
        group.throughput(Throughput::Elements(w.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("range_buckets", r),
            &w,
            |b, w: &QueryWorkload| {
                b.iter(|| {
                    let mut total = 0usize;
                    for q in &w.queries {
                        total += gf.range_query_buckets(black_box(q)).len();
                    }
                    black_box(total)
                })
            },
        );
    }
    // Full record retrieval.
    let q = Rect::new2(500.0, 500.0, 1500.0, 1500.0);
    group.bench_function("range_records_25pct", |b| {
        b.iter(|| black_box(gf.range_query(black_box(&q))))
    });
    // Point lookups.
    group.bench_function("lookup_hit", |b| {
        let p = ds.points[1234];
        b.iter(|| black_box(gf.lookup(black_box(&p))))
    });
    // Partial match.
    group.bench_function("partial_match", |b| {
        b.iter(|| black_box(gf.partial_match_buckets(black_box(&[Some(1000.0), None]))))
    });
    group.finish();
}

criterion_group!(benches, bench_bulk_load, bench_queries);
criterion_main!(benches);
