//! Space-filling-curve mapping throughput: the inner loop of HCAM-style
//! declustering and the justification for the paper's O(N) cost claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pargrid_geom::{GrayCurve, HilbertCurve, ScanCurve, SpaceFillingCurve, ZOrderCurve};
use std::hint::black_box;

const N: u64 = 4096;

fn bench_index_of(c: &mut Criterion) {
    let curves: Vec<(&str, Box<dyn SpaceFillingCurve>)> = vec![
        ("hilbert", Box::new(HilbertCurve::new(3, 10))),
        ("zorder", Box::new(ZOrderCurve::new(3, 10))),
        ("gray", Box::new(GrayCurve::new(3, 10))),
        ("scan", Box::new(ScanCurve::new(3, 10))),
    ];
    let coords: Vec<[u32; 3]> = (0..N)
        .map(|i| {
            let x = i.wrapping_mul(2654435761);
            [
                (x % 1024) as u32,
                ((x >> 10) % 1024) as u32,
                ((x >> 20) % 1024) as u32,
            ]
        })
        .collect();
    let mut group = c.benchmark_group("curve_index_of");
    group.throughput(Throughput::Elements(N));
    for (name, curve) in &curves {
        group.bench_with_input(BenchmarkId::from_parameter(name), curve, |b, curve| {
            b.iter(|| {
                let mut acc = 0u128;
                for cs in &coords {
                    acc ^= curve.index_of(black_box(cs));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_coords_of(c: &mut Criterion) {
    let curve = HilbertCurve::new(3, 10);
    let mut group = c.benchmark_group("curve_coords_of");
    group.throughput(Throughput::Elements(N));
    group.bench_function("hilbert_3d", |b| {
        let mut out = [0u32; 3];
        b.iter(|| {
            for i in 0..N as u128 {
                curve.coords_of(black_box(i * 524287 % curve.len()), &mut out);
            }
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_index_of, bench_coords_of);
criterion_main!(benches);
