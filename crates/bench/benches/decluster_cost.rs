//! Ablation A1: declustering cost scaling (the complexities §4 quotes:
//! DM/FX/HCAM are O(N), SSP/MST/minimax O(N^2)).
//!
//! Run with `cargo bench -p pargrid-bench --bench decluster_cost`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pargrid_core::minimax::{minimax_assign, minimax_assign_parallel};
use pargrid_core::{ConflictPolicy, DeclusterInput, DeclusterMethod, EdgeWeight, IndexScheme};
use pargrid_datagen::dsmc3d_sized;
use std::hint::black_box;

fn inputs() -> Vec<(usize, DeclusterInput)> {
    [4_000usize, 16_000, 64_000]
        .iter()
        .map(|&n| {
            let ds = dsmc3d_sized(42, n);
            let gf = ds.build_grid_file();
            let input = DeclusterInput::from_grid_file(&gf);
            (input.n_buckets(), input)
        })
        .collect()
}

fn bench_decluster_cost(c: &mut Criterion) {
    let inputs = inputs();
    let methods = [
        DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance),
        DeclusterMethod::Index(IndexScheme::FieldwiseXor, ConflictPolicy::DataBalance),
        DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance),
        DeclusterMethod::Ssp(EdgeWeight::Proximity),
        DeclusterMethod::Minimax(EdgeWeight::Proximity),
    ];
    let mut group = c.benchmark_group("decluster_cost");
    group.sample_size(10);
    for (n_buckets, input) in &inputs {
        for method in &methods {
            group.bench_with_input(
                BenchmarkId::new(method.label(), n_buckets),
                input,
                |b, input| b.iter(|| black_box(method.assign(black_box(input), 16, 42))),
            );
        }
    }
    group.finish();
}

/// Serial vs multithreaded minimax on the largest instance.
fn bench_minimax_parallel(c: &mut Criterion) {
    let ds = dsmc3d_sized(42, 64_000);
    let gf = ds.build_grid_file();
    let input = DeclusterInput::from_grid_file(&gf);
    let mut group = c.benchmark_group("minimax_threads");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            black_box(minimax_assign(
                black_box(&input),
                16,
                EdgeWeight::Proximity,
                42,
            ))
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(minimax_assign_parallel(
                        black_box(&input),
                        16,
                        EdgeWeight::Proximity,
                        42,
                        threads,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decluster_cost, bench_minimax_parallel);
criterion_main!(benches);
