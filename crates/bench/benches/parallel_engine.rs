//! SPMD engine throughput (Tables 4–5 at reduced scale): query latency
//! through the coordinator/worker protocol at 4, 8 and 16 workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_datagen::dsmc4d;
use pargrid_parallel::{EngineConfig, ParallelGridFile};
use pargrid_sim::QueryWorkload;
use std::hint::black_box;
use std::sync::Arc;

fn bench_engine(c: &mut Criterion) {
    let ds = dsmc4d(42, 16, 60_000);
    let gf = Arc::new(ds.build_grid_file());
    let input = DeclusterInput::from_grid_file(&gf);
    let workload = QueryWorkload::square(&ds.domain, 0.01, 64, 7);

    let mut group = c.benchmark_group("parallel_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload.len() as u64));
    for workers in [4usize, 8, 16] {
        let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, workers, 1);
        group.bench_with_input(
            BenchmarkId::new("random_queries", workers),
            &workload,
            |b, w| {
                // Engine construction outside the measured loop; caches are
                // reused across iterations, as a long-lived server's would be.
                let mut engine =
                    ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
                b.iter(|| black_box(engine.run_workload(w)))
            },
        );
    }

    // Animation workload: the cache-friendly access pattern of Table 4.
    let animation = QueryWorkload::animation(&ds.domain, 0.1, 16);
    group.throughput(Throughput::Elements(animation.len() as u64));
    let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 8, 1);
    group.bench_with_input(BenchmarkId::new("animation", 8), &animation, |b, w| {
        let mut engine =
            ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
        b.iter(|| black_box(engine.run_workload(w)))
    });

    // Pipelined execution: up to 8 queries in flight.
    group.throughput(Throughput::Elements(workload.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("pipelined_window8", 8),
        &workload,
        |b, w| {
            let mut engine =
                ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
            b.iter(|| black_box(engine.run_workload_pipelined(w, 8)))
        },
    );

    // The SP-2 seven-disks-per-processor configuration.
    group.bench_with_input(BenchmarkId::new("seven_disks", 8), &workload, |b, w| {
        let mut engine = ParallelGridFile::build(
            Arc::clone(&gf),
            &assignment,
            EngineConfig::sp2_seven_disks(),
        );
        b.iter(|| black_box(engine.run_workload(w)))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
