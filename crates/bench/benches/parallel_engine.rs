//! SPMD engine throughput (Tables 4–5 at reduced scale): query latency
//! through the coordinator/worker protocol at 4, 8 and 16 workers, plus the
//! concurrent query service's window sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_datagen::dsmc4d;
use pargrid_parallel::{EngineConfig, ParallelGridFile};
use pargrid_sim::QueryWorkload;
use std::hint::black_box;
use std::sync::Arc;

fn bench_engine(c: &mut Criterion) {
    let ds = dsmc4d(42, 16, 60_000);
    let gf = Arc::new(ds.build_grid_file());
    let input = DeclusterInput::from_grid_file(&gf);
    let workload = QueryWorkload::square(&ds.domain, 0.01, 64, 7);

    let mut group = c.benchmark_group("parallel_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload.len() as u64));
    for workers in [4usize, 8, 16] {
        let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, workers, 1);
        group.bench_with_input(
            BenchmarkId::new("random_queries", workers),
            &workload,
            |b, w| {
                // Engine construction outside the measured loop; caches are
                // reused across iterations, as a long-lived server's would be.
                let engine =
                    ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
                b.iter(|| black_box(engine.run_workload(w)))
            },
        );
    }

    // Animation workload: the cache-friendly access pattern of Table 4.
    let animation = QueryWorkload::animation(&ds.domain, 0.1, 16);
    group.throughput(Throughput::Elements(animation.len() as u64));
    let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 8, 1);
    group.bench_with_input(BenchmarkId::new("animation", 8), &animation, |b, w| {
        let engine = ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
        b.iter(|| black_box(engine.run_workload(w)))
    });

    // Concurrent service: sweep the in-flight window at 8 workers. Measures
    // the real coordinator overhead of round admission + batched replies.
    group.throughput(Throughput::Elements(workload.len() as u64));
    for window in [1usize, 4, 8, 16, 32] {
        group.bench_with_input(
            BenchmarkId::new("concurrent_window", window),
            &workload,
            |b, w| {
                let engine =
                    ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
                b.iter(|| black_box(engine.run_workload_concurrent(w, window)))
            },
        );
    }

    // Shared-session service: 4 client threads querying one engine at once.
    group.bench_with_input(BenchmarkId::new("shared_sessions", 4), &workload, |b, w| {
        let engine = ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
        b.iter(|| {
            std::thread::scope(|scope| {
                for chunk in w.queries.chunks(w.queries.len().div_ceil(4)) {
                    let engine = &engine;
                    scope.spawn(move || {
                        let mut session = engine.session();
                        for q in chunk {
                            black_box(session.query(q));
                        }
                    });
                }
            })
        })
    });

    // The SP-2 seven-disks-per-processor configuration.
    group.bench_with_input(BenchmarkId::new("seven_disks", 8), &workload, |b, w| {
        let engine = ParallelGridFile::build(
            Arc::clone(&gf),
            &assignment,
            EngineConfig::sp2_seven_disks(),
        );
        b.iter(|| black_box(engine.run_workload(w)))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
