//! One Criterion bench per paper figure/table, at reduced scale: these keep
//! the cost of regenerating every experiment visible in CI. The `repro`
//! binary produces the full-scale tables; `DESIGN.md` §4 maps ids to paper
//! artifacts.

use criterion::{criterion_group, criterion_main, Criterion};
use pargrid_bench::experiments as exp;
use pargrid_bench::Params;
use std::hint::black_box;

fn tiny_params() -> Params {
    let mut p = Params::quick();
    p.queries = 60;
    p.disks = vec![4, 16];
    p.even_disks = vec![4, 16];
    p
}

fn bench_figures(c: &mut Criterion) {
    let p = tiny_params();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig2_grid_builds", |b| {
        b.iter(|| black_box(exp::fig2::run(&p)))
    });
    group.bench_function("fig3_conflict_resolution", |b| {
        b.iter(|| black_box(exp::fig3::run(&p)))
    });
    group.bench_function("fig4_index_schemes", |b| {
        b.iter(|| black_box(exp::fig4::run(&p)))
    });
    group.bench_function("table1_data_balance", |b| {
        b.iter(|| black_box(exp::table1::run(&p)))
    });
    group.bench_function("theorems_analytic", |b| {
        b.iter(|| black_box(exp::theorems::run(&p)))
    });
    group.bench_function("fig5_distributions", |b| {
        b.iter(|| black_box(exp::fig5::run(&p)))
    });
    group.finish();

    // The heavier sweeps get their own group with fewer samples.
    let mut heavy = c.benchmark_group("figures_heavy");
    heavy.sample_size(10);
    heavy.bench_function("fig6_five_algorithms", |b| {
        b.iter(|| black_box(exp::fig6::run(&p)))
    });
    heavy.bench_function("tables23_closest_pairs", |b| {
        b.iter(|| black_box(exp::tables23::run(&p)))
    });
    heavy.bench_function("fig7_query_ratio", |b| {
        b.iter(|| black_box(exp::fig7::run(&p)))
    });
    heavy.bench_function("ablation_curves", |b| {
        b.iter(|| black_box(exp::ablations::run_curves(&p)))
    });
    heavy.bench_function("ablation_minimax", |b| {
        b.iter(|| black_box(exp::ablations::run_minimax(&p)))
    });
    heavy.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
