//! The pinned hot-path suite behind `BENCH_hotpath.json`.
//!
//! Every benchmark here is named in the repo-root trajectory file and
//! guarded by the CI `bench-smoke` job (`benchgate` fails the build on
//! any regression past 10% of the committed baseline). Three of the
//! groups are before/after pairs around this PR's hot-path work, kept
//! so the win stays visible and regressions stay loud:
//!
//! * `dispatch/ring` vs `dispatch/channel` — a 256-message burst through
//!   the worker transport: the sharded
//!   [`pargrid_parallel::RequestRing`] vs the legacy channel
//!   ([`DispatchMode::Channel`]).
//! * `frame_encode/zero_copy` vs `frame_encode/copy` — response framing
//!   via [`pargrid_net::FrameBuilder`] (payload serialized straight into
//!   the frame buffer) vs the encode-then-copy path.
//! * `store_read/pooled` vs `store_read/alloc` — file-backed block reads
//!   through the recycled buffer pool vs an owned `Vec` per read.
//!
//! Plus the end-to-end view of the transport A/B (`query_e2e/ring` vs
//! `query_e2e/channel`) and three single-sided trajectory points:
//! `elevator/read_batch` (worker disk-batch throughput),
//! `frame_decode/records`, and `bulk_load/grid_file`.
//!
//! Regenerate the trajectory file with:
//!
//! ```text
//! CRITERION_OUTPUT_JSON=BENCH_hotpath.json \
//!     cargo bench -p pargrid-bench --bench hotpath
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crossbeam::channel::unbounded;
use pargrid_core::{ConflictPolicy, DeclusterInput, DeclusterMethod, IndexScheme};
use pargrid_datagen::dsmc3d_sized;
use pargrid_gridfile::Record;
use pargrid_net::frame::encode_frame;
use pargrid_net::{read_frame, RecordsReply, Response};
use pargrid_parallel::{
    BlockStore, DiskModel, DiskParams, DispatchMode, EngineConfig, ParallelGridFile, RequestRing,
};
use pargrid_sim::QueryWorkload;
use std::hint::black_box;
use std::sync::{mpsc, Arc};

/// The coordinator→worker dispatch hop itself: a 256-message burst pushed
/// into the worker's transport while a consumer thread drains it, acking
/// each completed burst. This is where the ring's lock-free publication
/// shows — the channel takes a mutex per send (and contends with the
/// draining consumer), the ring publishes with a CAS + release store and
/// only pays a wake when the consumer actually parked.
fn bench_dispatch(c: &mut Criterion) {
    const BURST: u64 = 256;

    let mut group = c.benchmark_group("dispatch");
    group.sample_size(300);
    group.throughput(Throughput::Elements(BURST));

    group.bench_function("ring", |b| {
        let ring: Arc<RequestRing<u64>> = Arc::new(RequestRing::with_capacity(1024));
        let (ack_tx, ack_rx) = mpsc::channel::<()>();
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while let Some(v) = ring.recv() {
                    n += v;
                    if n.is_multiple_of(BURST) && ack_tx.send(()).is_err() {
                        break;
                    }
                }
            })
        };
        b.iter(|| {
            for _ in 0..BURST {
                ring.push(1u64).expect("ring open");
            }
            ack_rx.recv().expect("burst ack")
        });
        ring.close();
        consumer.join().expect("consumer exits");
    });

    group.bench_function("channel", |b| {
        let (tx, rx) = unbounded::<u64>();
        let (ack_tx, ack_rx) = mpsc::channel::<()>();
        let consumer = std::thread::spawn(move || {
            let mut n = 0u64;
            while let Ok(v) = rx.recv() {
                n += v;
                if n.is_multiple_of(BURST) && ack_tx.send(()).is_err() {
                    break;
                }
            }
        });
        b.iter(|| {
            for _ in 0..BURST {
                tx.send(1u64).expect("channel open");
            }
            ack_rx.recv().expect("burst ack")
        });
        drop(tx);
        consumer.join().expect("consumer exits");
    });
    group.finish();
}

/// End-to-end query latency through the full engine, ring vs channel
/// transport, on a small fully cached file: the trajectory view of the
/// same A/B, with worker scheduling and reply collection included.
fn bench_query_e2e(c: &mut Criterion) {
    let ds = dsmc3d_sized(42, 1_000);
    let gf = Arc::new(ds.build_grid_file());
    let input = DeclusterInput::from_grid_file(&gf);
    let assignment = DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance)
        .assign(&input, 2, 42);
    let workload = QueryWorkload::square(&ds.domain, 0.005, 64, 7);

    let mut group = c.benchmark_group("query_e2e");
    group.sample_size(400);
    for (label, mode) in [
        ("ring", DispatchMode::Ring),
        ("channel", DispatchMode::Channel),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &workload, |b, w| {
            let engine = ParallelGridFile::build(
                Arc::clone(&gf),
                &assignment,
                EngineConfig::default().with_dispatch(mode),
            );
            let mut session = engine.session();
            let mut i = 0usize;
            b.iter(|| {
                let q = &w.queries[i % w.queries.len()];
                i += 1;
                black_box(session.query(q))
            })
        });
    }
    group.finish();
}

/// Worker elevator pass: one sorted sweep over a shuffled block batch.
fn bench_elevator(c: &mut Criterion) {
    const BATCH: usize = 4_096;
    let template: Vec<u32> = (0..BATCH as u64)
        .map(|i| (i.wrapping_mul(2654435761) % 65_536) as u32)
        .collect();

    let mut group = c.benchmark_group("elevator");
    group.sample_size(100);
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("read_batch", |b| {
        let mut disk = DiskModel::new(DiskParams::default());
        let mut blocks = template.clone();
        b.iter(|| {
            blocks.copy_from_slice(&template);
            black_box(disk.read_batch(&mut blocks))
        })
    });
    group.finish();
}

fn records_response(n: usize) -> Response {
    let records = (0..n as u64)
        .map(|i| {
            let x = i as f64 * 0.001;
            Record::new(i, pargrid_geom::Point::new3(x, x + 0.5, x + 1.0))
        })
        .collect();
    Response::Records(RecordsReply {
        incomplete: false,
        elapsed_us: 1_234,
        comm_us: 56,
        response_blocks: 7,
        total_blocks: 21,
        cache_hits: 3,
        records,
    })
}

/// Response framing: serialize-into-frame (`encode_frame`) vs
/// encode-then-copy, plus the decode side.
fn bench_frame(c: &mut Criterion) {
    let resp = records_response(512);

    let mut group = c.benchmark_group("frame_encode");
    group.sample_size(200);
    group.bench_function("zero_copy", |b| {
        b.iter(|| black_box(resp.encode_frame().unwrap()))
    });
    group.bench_function("copy", |b| {
        b.iter(|| {
            let (t, p) = resp.encode();
            black_box(encode_frame(t, &p).unwrap())
        })
    });
    group.finish();

    let bytes = resp.encode_frame().unwrap();
    let mut group = c.benchmark_group("frame_decode");
    group.sample_size(200);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("records", |b| {
        b.iter(|| black_box(read_frame(&mut bytes.as_slice()).expect("valid frame")))
    });
    group.finish();
}

/// File-backed block reads: pooled `BlockBuf` vs an owned `Vec` per read.
fn bench_store_read(c: &mut Criterion) {
    const BLOCKS: u32 = 256;
    const BLOCK_BYTES: usize = 4_096;
    let path = std::env::temp_dir().join(format!("pargrid_hotpath_{}.blocks", std::process::id()));
    let mut store = BlockStore::file(&path, BLOCK_BYTES).expect("create block file");
    for blk in 0..BLOCKS {
        let bytes: Vec<u8> = (0..BLOCK_BYTES)
            .map(|i| (i as u32).wrapping_mul(blk + 1) as u8)
            .collect();
        store.put(blk, bytes).expect("put block");
    }

    let mut group = c.benchmark_group("store_read");
    group.sample_size(300);
    group.throughput(Throughput::Bytes(BLOCK_BYTES as u64));
    let mut i = 0u32;
    group.bench_function("pooled", |b| {
        b.iter(|| {
            let blk = i % BLOCKS;
            i += 1;
            black_box(store.read_block(blk).expect("read").len())
        })
    });
    let mut i = 0u32;
    group.bench_function("alloc", |b| {
        b.iter(|| {
            let blk = i % BLOCKS;
            i += 1;
            black_box(store.get(blk).expect("read").len())
        })
    });
    group.finish();

    drop(store);
    let _ = std::fs::remove_file(&path);
}

/// Sorted bulk load of a 20k-record DSMC snapshot into a grid file.
fn bench_bulk_load(c: &mut Criterion) {
    let ds = dsmc3d_sized(7, 20_000);
    let mut group = c.benchmark_group("bulk_load");
    group.sample_size(20);
    group.throughput(Throughput::Elements(ds.len() as u64));
    group.bench_function("grid_file", |b| b.iter(|| black_box(ds.build_grid_file())));
    group.finish();
}

criterion_group!(
    benches,
    bench_dispatch,
    bench_query_e2e,
    bench_elevator,
    bench_frame,
    bench_store_read,
    bench_bulk_load
);
criterion_main!(benches);
