//! End-to-end tests for the `benchgate` binary's baseline handling
//! (bugfix satellite): an unseeded trajectory — missing, zero-length, or
//! naming no benchmarks — must seed itself from the candidate and exit 0
//! with an actionable message, while corruption and real regressions keep
//! failing loudly.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn doc(rows: &[(&str, f64)]) -> String {
    let benches: Vec<String> = rows
        .iter()
        .map(|(name, p50)| {
            format!(
                "{{\"name\": \"{name}\", \"mean_ns\": {p50}, \"p50_ns\": {p50}, \"samples\": 50}}"
            )
        })
        .collect();
    format!(
        "{{\"schema_version\": 1, \"suite\": \"hotpath\", \"benchmarks\": [{}]}}",
        benches.join(", ")
    )
}

/// Fresh scratch directory per test (parallel test threads share a tmpdir).
fn scratch(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pargrid-benchgate-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

fn run_gate(baseline: &Path, candidate: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_benchgate"))
        .arg(baseline)
        .arg(candidate)
        .output()
        .expect("spawn benchgate")
}

fn assert_seeded(dir: &Path, out: &Output) {
    let baseline = dir.join("baseline.json");
    let candidate = dir.join("candidate.json");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "seeding must exit 0, got {:?}\nstdout: {stdout}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("seeding it from"),
        "must print the seeding notice, got: {stdout}"
    );
    assert!(
        stdout.contains("commit"),
        "message must say what to do next, got: {stdout}"
    );
    assert_eq!(
        std::fs::read_to_string(&baseline).expect("seed written"),
        std::fs::read_to_string(&candidate).unwrap(),
        "seed must be a byte copy of the candidate"
    );
}

#[test]
fn missing_baseline_seeds_from_candidate() {
    let dir = scratch("missing");
    let baseline = dir.join("baseline.json");
    let candidate = dir.join("candidate.json");
    std::fs::write(&candidate, doc(&[("dispatch/ring", 100.0)])).unwrap();
    let out = run_gate(&baseline, &candidate);
    assert_seeded(&dir, &out);

    // Second run gates against the freshly seeded file and passes.
    let out = run_gate(&baseline, &candidate);
    assert!(out.status.success(), "re-run against the seed must pass");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("within"),
        "re-run must actually gate, not re-seed"
    );
}

#[test]
fn zero_length_baseline_seeds_from_candidate() {
    let dir = scratch("empty-file");
    let baseline = dir.join("baseline.json");
    let candidate = dir.join("candidate.json");
    std::fs::write(&baseline, "").unwrap();
    std::fs::write(&candidate, doc(&[("dispatch/ring", 100.0)])).unwrap();
    assert_seeded(&dir, &run_gate(&baseline, &candidate));
}

#[test]
fn empty_benchmarks_array_seeds_from_candidate() {
    let dir = scratch("empty-array");
    let baseline = dir.join("baseline.json");
    let candidate = dir.join("candidate.json");
    std::fs::write(&baseline, doc(&[])).unwrap();
    std::fs::write(&candidate, doc(&[("dispatch/ring", 100.0)])).unwrap();
    assert_seeded(&dir, &run_gate(&baseline, &candidate));
}

#[test]
fn corrupt_baseline_is_not_overwritten() {
    let dir = scratch("corrupt");
    let baseline = dir.join("baseline.json");
    let candidate = dir.join("candidate.json");
    std::fs::write(&baseline, "{\"schema_version\": 1, truncated garba").unwrap();
    std::fs::write(&candidate, doc(&[("dispatch/ring", 100.0)])).unwrap();
    let out = run_gate(&baseline, &candidate);
    assert_eq!(out.status.code(), Some(2), "corruption must exit 2");
    assert_eq!(
        std::fs::read_to_string(&baseline).unwrap(),
        "{\"schema_version\": 1, truncated garba",
        "a corrupt baseline must never be silently replaced"
    );
}

#[test]
fn empty_candidate_never_seeds_the_baseline() {
    let dir = scratch("empty-candidate");
    let baseline = dir.join("baseline.json");
    let candidate = dir.join("candidate.json");
    std::fs::write(&candidate, doc(&[])).unwrap();
    let out = run_gate(&baseline, &candidate);
    assert_eq!(out.status.code(), Some(2), "empty candidate must exit 2");
    assert!(!baseline.exists(), "no seed may be written from nothing");
}

#[test]
fn populated_baseline_still_gates_regressions() {
    let dir = scratch("regress");
    let baseline = dir.join("baseline.json");
    let candidate = dir.join("candidate.json");
    std::fs::write(&baseline, doc(&[("dispatch/ring", 100.0)])).unwrap();
    std::fs::write(&candidate, doc(&[("dispatch/ring", 150.0)])).unwrap();
    let out = run_gate(&baseline, &candidate);
    assert_eq!(out.status.code(), Some(1), "a 50% regression must fail");
}
