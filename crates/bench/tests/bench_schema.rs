//! Schema validation for the committed `BENCH_hotpath.json` trajectory
//! file (satellite of the hot-path PR): the file the CI `bench-smoke` job
//! gates against must stay parseable, complete, and must keep recording a
//! ring-beats-channel dispatch win.

use pargrid_obs::json::{parse, Json};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Every benchmark the pinned suite (`benches/hotpath.rs`) must pin.
const REQUIRED: &[&str] = &[
    "dispatch/ring",
    "dispatch/channel",
    "query_e2e/ring",
    "query_e2e/channel",
    "elevator/read_batch",
    "frame_encode/zero_copy",
    "frame_encode/copy",
    "frame_decode/records",
    "store_read/pooled",
    "store_read/alloc",
    "bulk_load/grid_file",
];

fn trajectory_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json")
}

fn load() -> BTreeMap<String, (f64, f64, u64)> {
    let path = trajectory_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (regenerate with CRITERION_OUTPUT_JSON)",
            path.display()
        )
    });
    let doc = parse(&text).expect("trajectory file is valid JSON");

    assert_eq!(
        doc.get("schema_version").and_then(Json::as_num),
        Some(1.0),
        "schema_version must be 1"
    );
    assert_eq!(
        doc.get("suite").and_then(Json::as_str),
        Some("hotpath"),
        "suite must be the pinned hotpath suite"
    );

    let mut out = BTreeMap::new();
    for b in doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .expect("benchmarks array")
    {
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .expect("name")
            .to_string();
        let mean = b.get("mean_ns").and_then(Json::as_num).expect("mean_ns");
        let p50 = b.get("p50_ns").and_then(Json::as_num).expect("p50_ns");
        let samples = b.get("samples").and_then(Json::as_num).expect("samples") as u64;
        assert!(
            mean.is_finite() && mean > 0.0,
            "{name}: mean_ns must be positive"
        );
        assert!(
            p50.is_finite() && p50 > 0.0,
            "{name}: p50_ns must be positive"
        );
        assert!(samples > 0, "{name}: samples must be positive");
        assert!(
            out.insert(name.clone(), (mean, p50, samples)).is_none(),
            "duplicate {name}"
        );
    }
    out
}

#[test]
fn trajectory_file_matches_schema_and_names_every_pinned_benchmark() {
    let benches = load();
    assert!(
        benches.len() >= 6,
        "trajectory must pin at least 6 benchmarks, found {}",
        benches.len()
    );
    for name in REQUIRED {
        assert!(
            benches.contains_key(*name),
            "missing pinned benchmark {name}"
        );
    }
}

#[test]
fn committed_trajectory_records_ring_beating_channel_on_p50() {
    let benches = load();
    let ring = benches["dispatch/ring"].1;
    let channel = benches["dispatch/channel"].1;
    assert!(
        ring < channel,
        "dispatch/ring p50 ({ring} ns) must beat dispatch/channel p50 ({channel} ns)"
    );
}
