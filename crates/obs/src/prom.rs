//! Prometheus text-exposition exporter and line-format validator.
//!
//! Histograms export in the standard cumulative form — `_bucket{le="..."}`
//! lines at octave boundaries plus `+Inf`, then `_sum` and `_count` —
//! and counters/gauges as single samples. [`validate_prometheus`] is a
//! hand-rolled checker for exposition-format line rules (no regex crate in
//! this workspace) used by tests and the CI smoke step.

use crate::hist::Histogram;

/// Builder for a Prometheus text-exposition document.
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        PromWriter::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Emits a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Emits a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Emits one gauge family with one sample per `(label value, value)`
    /// pair — e.g. per-worker ownership as
    /// `name{worker="3"} 12`. A single HELP/TYPE header covers the family,
    /// as the exposition format requires.
    pub fn gauge_per_label(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        values: &[(String, f64)],
    ) {
        self.header(name, help, "gauge");
        for (lv, v) in values {
            self.out
                .push_str(&format!("{name}{{{label}=\"{lv}\"}} {v}\n"));
        }
    }

    /// Emits a histogram in cumulative `le` form with buckets at powers of
    /// two spanning the recorded range (16 lines max keeps scrapes small
    /// while the log-bucketing keeps each `le` exact, not interpolated).
    pub fn histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        self.header(name, help, "histogram");
        if h.count() > 0 {
            let mut bound = 1u64.max(h.min().next_power_of_two());
            let mut bounds = Vec::new();
            while bound < h.max() && bounds.len() < 15 {
                bounds.push(bound);
                bound = bound.saturating_mul(4);
            }
            for b in bounds {
                self.out.push_str(&format!(
                    "{name}_bucket{{le=\"{b}\"}} {}\n",
                    h.cumulative_le(b)
                ));
            }
        }
        self.out
            .push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        self.out.push_str(&format!("{name}_sum {}\n", h.sum()));
        self.out.push_str(&format!("{name}_count {}\n", h.count()));
    }

    /// The finished exposition document.
    pub fn finish(self) -> String {
        self.out
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_labels(s: &str) -> bool {
    // s is the text between '{' and '}': label="value",...
    if s.is_empty() {
        return true;
    }
    for pair in s.split(',') {
        let Some((name, value)) = pair.split_once('=') else {
            return false;
        };
        if !valid_metric_name(name) {
            return false;
        }
        if !(value.len() >= 2 && value.starts_with('"') && value.ends_with('"')) {
            return false;
        }
    }
    true
}

fn valid_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok()
}

/// Checks every line of a Prometheus text-exposition document: comments
/// must be `# HELP`/`# TYPE`, samples must be
/// `name[{labels}] value [timestamp]` with a valid metric name, label
/// syntax, and numeric value. Returns the first offending line.
pub fn validate_prometheus(doc: &str) -> Result<(), String> {
    for (lineno, line) in doc.lines().enumerate() {
        let err = |why: &str| Err(format!("line {}: {why}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ")) {
                return err("comment is not HELP or TYPE");
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find('{') {
            Some(open) => {
                let Some(close) = line.rfind('}') else {
                    return err("unclosed label braces");
                };
                if !valid_labels(&line[open + 1..close]) {
                    return err("bad label syntax");
                }
                (&line[..open], line[close + 1..].trim_start())
            }
            None => match line.split_once(' ') {
                Some((n, r)) => (n, r.trim_start()),
                None => return err("sample has no value"),
            },
        };
        if !valid_metric_name(name_part) {
            return err("bad metric name");
        }
        let mut fields = rest.split_whitespace();
        let Some(value) = fields.next() else {
            return err("sample has no value");
        };
        if !valid_value(value) {
            return err("bad sample value");
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return err("bad timestamp");
            }
        }
        if fields.next().is_some() {
            return err("trailing fields after timestamp");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_export_is_valid_and_cumulative() {
        let mut h = Histogram::new();
        for v in [10u64, 100, 1000, 10_000, 100_000] {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.counter("pargrid_queries_total", "Queries served.", 5);
        w.gauge("pargrid_workers_alive", "Live workers.", 4.0);
        w.histogram("pargrid_query_us", "Query latency (virtual us).", &h);
        let doc = w.finish();
        validate_prometheus(&doc).expect("exporter output must validate");

        assert!(doc.contains("# TYPE pargrid_query_us histogram"));
        assert!(doc.contains("pargrid_query_us_bucket{le=\"+Inf\"} 5"));
        assert!(doc.contains("pargrid_query_us_count 5"));
        assert!(doc.contains("pargrid_query_us_sum 111110"));

        // Cumulative counts never decrease across buckets.
        let mut last = 0u64;
        for line in doc.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone bucket line {line}");
            last = v;
        }
    }

    #[test]
    fn labeled_gauge_family_validates() {
        let mut w = PromWriter::new();
        w.gauge_per_label(
            "pargrid_net_worker_buckets",
            "Primary buckets per worker.",
            "worker",
            &[("0".into(), 12.0), ("1".into(), 11.0)],
        );
        let doc = w.finish();
        validate_prometheus(&doc).expect("labeled gauges must validate");
        assert!(doc.contains("pargrid_net_worker_buckets{worker=\"0\"} 12"));
        assert!(doc.contains("pargrid_net_worker_buckets{worker=\"1\"} 11"));
        // One header for the whole family.
        assert_eq!(doc.matches("# TYPE pargrid_net_worker_buckets").count(), 1);
    }

    #[test]
    fn empty_histogram_still_exports() {
        let mut w = PromWriter::new();
        w.histogram("pargrid_empty_us", "Nothing recorded.", &Histogram::new());
        let doc = w.finish();
        validate_prometheus(&doc).unwrap();
        assert!(doc.contains("pargrid_empty_us_bucket{le=\"+Inf\"} 0"));
        assert!(doc.contains("pargrid_empty_us_count 0"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus("# random comment\n").is_err());
        assert!(validate_prometheus("9bad_name 1\n").is_err());
        assert!(validate_prometheus("name{le=\"1\" 2\n").is_err());
        assert!(validate_prometheus("name{le=1} 2\n").is_err());
        assert!(validate_prometheus("name notanumber\n").is_err());
        assert!(validate_prometheus("name 1 2 3\n").is_err());
        assert!(validate_prometheus("name\n").is_err());
        assert!(validate_prometheus("ok_name{le=\"+Inf\"} 3 1700000000\n").is_ok());
        assert!(validate_prometheus("ok:name 2.5\n").is_ok());
    }
}
