//! Canonical metric names shared by every exporter in the workspace.
//!
//! The engine, the network server, and CI smoke tests all refer to the same
//! Prometheus series; keeping the strings here means a rename is a one-line
//! change and a `grep` in CI can never drift from the code.

/// Total queries admitted by the engine (counter).
pub const ENGINE_QUERIES_TOTAL: &str = "pargrid_queries_total";
/// Workers currently alive (gauge).
pub const ENGINE_WORKERS_ALIVE: &str = "pargrid_workers_alive";
/// Per-query virtual latency (histogram, microseconds).
pub const ENGINE_QUERY_US: &str = "pargrid_query_us";

/// TCP connections accepted since the server started (counter).
pub const NET_CONNECTIONS_TOTAL: &str = "pargrid_net_connections_total";
/// TCP connections currently open (gauge).
pub const NET_CONNECTIONS_ACTIVE: &str = "pargrid_net_connections_active";
/// Wire requests decoded, of any type (counter).
pub const NET_REQUESTS_TOTAL: &str = "pargrid_net_requests_total";
/// Query requests answered with records (counter).
pub const NET_SERVED_TOTAL: &str = "pargrid_net_served_total";
/// Insert/delete requests applied (counter).
pub const NET_MUTATIONS_TOTAL: &str = "pargrid_net_mutations_total";
/// Query requests rejected with `Overloaded` by admission control (counter).
pub const NET_SHED_TOTAL: &str = "pargrid_net_shed_total";
/// Frames rejected as malformed — bad magic, CRC, version, length, or
/// payload (counter).
pub const NET_MALFORMED_TOTAL: &str = "pargrid_net_malformed_total";
/// Admission-queue depth at this instant (gauge).
pub const NET_QUEUE_DEPTH: &str = "pargrid_net_queue_depth";
/// High-water mark of the admission queue since start (gauge).
pub const NET_QUEUE_HWM: &str = "pargrid_net_queue_depth_hwm";
/// End-to-end sojourn time: enqueue to reply written (histogram,
/// microseconds of wall clock).
pub const NET_SOJOURN_US: &str = "pargrid_net_sojourn_us";
/// Bytes read off client sockets (counter).
pub const NET_BYTES_IN_TOTAL: &str = "pargrid_net_bytes_in_total";
/// Bytes written back to client sockets (counter).
pub const NET_BYTES_OUT_TOTAL: &str = "pargrid_net_bytes_out_total";
/// Wire rebalance requests honored, dry runs included (counter).
pub const NET_REBALANCE_TOTAL: &str = "pargrid_net_rebalance_total";
/// Bucket copies migrated by rebalances over this engine's lifetime
/// (counter).
pub const NET_REBALANCE_MOVES_TOTAL: &str = "pargrid_net_rebalance_moves_total";
/// Page bytes copied by rebalance migrations (counter).
pub const NET_REBALANCE_BYTES_TOTAL: &str = "pargrid_net_rebalance_bytes_total";
/// Primary buckets owned per worker slot (gauge, label `worker`).
pub const NET_WORKER_BUCKETS: &str = "pargrid_net_worker_buckets";
/// Worker-process liveness as seen by the coordinator's remote backend:
/// 1 while the proxy's connection + heartbeats are healthy, 0 once the
/// worker is declared dead (gauge, label `worker`).
pub const NET_WORKER_ALIVE: &str = "pargrid_net_worker_alive";
/// Per-query additive gap from the declustering lower bound: blocks on
/// the busiest worker minus `ceil(total_blocks / live_workers)`, the
/// frontier oracle's `ceil(|Q|/M)` pigeonhole bound (histogram, blocks).
/// Zero means the live layout answered the query with provably optimal
/// parallelism; a drifting mean is a layout-quality alarm.
pub const FRONTIER_GAP_BLOCKS: &str = "pargrid_frontier_gap_blocks";
/// The coordinator's current election term — also the fencing epoch its
/// dispatches carry (gauge).
pub const CLUSTER_LEADER_TERM: &str = "pargrid_cluster_leader_term";
/// 1 if this coordinator currently leads, 0 on a standby (gauge).
pub const CLUSTER_IS_LEADER: &str = "pargrid_cluster_is_leader";
/// Leadership promotions this process has performed (counter; >0 on a
/// node that took over from a failed leader).
pub const CLUSTER_FAILOVERS_TOTAL: &str = "pargrid_cluster_failovers_total";
/// Highest replicated-metadata-log index known committed (gauge).
pub const CLUSTER_COMMIT_INDEX: &str = "pargrid_cluster_commit_index";
/// Epoch of the most recent lease granted to this leader by its workers
/// (gauge; trails `pargrid_cluster_leader_term` only transiently).
pub const CLUSTER_LEASE_EPOCH: &str = "pargrid_cluster_lease_epoch";
/// Standby coordinators currently online in the leader's replication
/// set (gauge). 0 with standbys configured means degraded durability:
/// mutations are either refused (a joined standby went dark) or
/// unreplicated (the regime was promoted over dead peers) — alert on it.
pub const CLUSTER_ONLINE_STANDBYS: &str = "pargrid_cluster_online_standbys";
