//! Lock-free span recorder for the parallel engine.
//!
//! A [`Recorder`] owns one [`EventRing`] for the coordinator plus one per
//! worker thread. Recording an event is a single `fetch_add` on the ring
//! cursor followed by relaxed stores into the claimed slot — no locks, no
//! allocation, wait-free. Rings do **not** wrap: once a ring is full,
//! further events bump a `dropped` counter instead of overwriting history,
//! so a snapshot is always a prefix-accurate trace and the drop counter
//! bounds what was lost.
//!
//! Timestamps are *virtual microseconds* from the engine's simulated disk /
//! network clocks, not wall time: the engine advances [`Recorder::clock`]
//! with `fetch_max` as workers publish their cumulative busy time, and
//! per-disk events carry that disk's own busy-clock interval so the
//! exported timeline matches the cost model exactly.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::hist::AtomicHistogram;

/// What a recorded span or instant represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// Query admitted into the in-flight window (instant, coordinator).
    Admit = 0,
    /// Query planned: buckets mapped to disks/workers (span, coordinator).
    Plan = 1,
    /// Sub-queries dispatched to workers (instant, coordinator).
    Dispatch = 2,
    /// One elevator batch serviced on one disk (span, per-disk track).
    DiskBatch = 3,
    /// Cache probes for a batch: `detail` packs hits<<32 | probes (instant).
    CacheProbe = 4,
    /// A sub-query was re-sent after a worker failure (instant).
    Retry = 5,
    /// Chained-declustering failover re-route (instant, coordinator).
    Failover = 6,
    /// Query reply completed; `dur` is the query latency (span).
    Reply = 7,
    /// A straggling primary triggered a speculative replica dispatch
    /// (instant, coordinator): `detail` carries the primary's service time.
    Hedge = 8,
    /// A corrupt block was repaired from its replica (instant, coordinator):
    /// `detail` carries the number of blocks scrubbed.
    Scrub = 9,
}

impl SpanKind {
    /// All kinds, for iteration in exporters.
    pub const ALL: [SpanKind; 10] = [
        SpanKind::Admit,
        SpanKind::Plan,
        SpanKind::Dispatch,
        SpanKind::DiskBatch,
        SpanKind::CacheProbe,
        SpanKind::Retry,
        SpanKind::Failover,
        SpanKind::Reply,
        SpanKind::Hedge,
        SpanKind::Scrub,
    ];

    /// Stable lowercase name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Admit => "admit",
            SpanKind::Plan => "plan",
            SpanKind::Dispatch => "dispatch",
            SpanKind::DiskBatch => "disk_batch",
            SpanKind::CacheProbe => "cache_probe",
            SpanKind::Retry => "retry",
            SpanKind::Failover => "failover",
            SpanKind::Reply => "reply",
            SpanKind::Hedge => "hedge",
            SpanKind::Scrub => "scrub",
        }
    }

    fn from_u8(v: u8) -> SpanKind {
        match v {
            0 => SpanKind::Admit,
            1 => SpanKind::Plan,
            2 => SpanKind::Dispatch,
            3 => SpanKind::DiskBatch,
            4 => SpanKind::CacheProbe,
            5 => SpanKind::Retry,
            6 => SpanKind::Failover,
            8 => SpanKind::Hedge,
            9 => SpanKind::Scrub,
            _ => SpanKind::Reply,
        }
    }
}

/// Sentinel for "no worker / no disk" in an [`Event`].
pub const NO_ID: u32 = 0xFFFF;

/// One recorded trace event, decoded from a ring slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual-microsecond start timestamp (track-local for disk events).
    pub ts_us: u64,
    /// Span duration in virtual microseconds (0 for instants).
    pub dur_us: u64,
    /// Query id this event belongs to (`u64::MAX` when not query-scoped).
    pub query_id: u64,
    /// Event kind.
    pub kind: SpanKind,
    /// Worker id or [`NO_ID`].
    pub worker: u32,
    /// Disk id (engine-global) or [`NO_ID`].
    pub disk: u32,
    /// Kind-specific payload (blocks serviced, hits<<32|probes, ...).
    pub detail: u64,
}

/// Event not associated with a specific query.
pub const NO_QUERY: u64 = u64::MAX;

const SLOT_WORDS: usize = 5;

/// A fixed-capacity, non-wrapping MPSC event buffer.
///
/// Writers claim a slot with one `fetch_add`; events past capacity are
/// counted in `dropped` rather than overwriting older events. Reads are
/// exact once writers are quiescent (the engine joins its workers before
/// snapshotting).
pub struct EventRing {
    slots: Vec<[AtomicU64; SLOT_WORDS]>,
    cursor: AtomicUsize,
    dropped: AtomicU64,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.slots.len())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventRing {
    /// A ring holding up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            slots: (0..capacity)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            cursor: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records an event; counts it as dropped if the ring is full.
    pub fn push(&self, ev: &Event) {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        if idx >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[idx];
        slot[0].store(ev.ts_us, Ordering::Relaxed);
        slot[1].store(ev.dur_us, Ordering::Relaxed);
        slot[2].store(ev.query_id, Ordering::Relaxed);
        let packed = (ev.kind as u64)
            | ((ev.worker as u64 & 0xFFFF) << 8)
            | ((ev.disk as u64 & 0xFFFF) << 24);
        slot[3].store(packed, Ordering::Relaxed);
        slot[4].store(ev.detail, Ordering::Relaxed);
    }

    /// Number of events stored (at most capacity).
    pub fn len(&self) -> usize {
        self.cursor.load(Ordering::Relaxed).min(self.slots.len())
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Decodes the stored events in record order.
    pub fn events(&self) -> Vec<Event> {
        (0..self.len())
            .map(|i| {
                let slot = &self.slots[i];
                let packed = slot[3].load(Ordering::Relaxed);
                let worker = ((packed >> 8) & 0xFFFF) as u32;
                let disk = ((packed >> 24) & 0xFFFF) as u32;
                Event {
                    ts_us: slot[0].load(Ordering::Relaxed),
                    dur_us: slot[1].load(Ordering::Relaxed),
                    query_id: slot[2].load(Ordering::Relaxed),
                    kind: SpanKind::from_u8((packed & 0xFF) as u8),
                    worker,
                    disk,
                    detail: slot[4].load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

/// Default per-ring capacity (events). Coordinator traffic is ~4 events per
/// query; workers see one event per elevator batch per disk.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// The engine-wide trace recorder: one coordinator ring, one ring per
/// worker, a shared virtual clock, and the standard latency histograms.
pub struct Recorder {
    coordinator: EventRing,
    workers: Vec<EventRing>,
    clock: AtomicU64,
    /// End-to-end query latency in virtual µs.
    pub query_us: AtomicHistogram,
    /// Per-query communication (network) cost in virtual µs.
    pub comm_us: AtomicHistogram,
    /// Per-batch wall service time (slowest disk + CPU), virtual µs.
    pub batch_wall_us: AtomicHistogram,
    /// Blocks returned per query.
    pub response_blocks: AtomicHistogram,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("workers", &self.workers.len())
            .field("clock_us", &self.now())
            .finish()
    }
}

impl Recorder {
    /// A recorder for `workers` worker threads with the default ring size.
    pub fn new(workers: usize) -> Self {
        Recorder::with_capacity(workers, DEFAULT_RING_CAPACITY)
    }

    /// A recorder with `capacity` events per ring.
    pub fn with_capacity(workers: usize, capacity: usize) -> Self {
        Recorder {
            coordinator: EventRing::new(capacity),
            workers: (0..workers).map(|_| EventRing::new(capacity)).collect(),
            clock: AtomicU64::new(0),
            query_us: AtomicHistogram::new(),
            comm_us: AtomicHistogram::new(),
            batch_wall_us: AtomicHistogram::new(),
            response_blocks: AtomicHistogram::new(),
        }
    }

    /// Number of worker rings.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Records an event on the coordinator track.
    pub fn record(&self, ev: Event) {
        self.coordinator.push(&ev);
    }

    /// Records an event on worker `w`'s track (coordinator track if out of
    /// range, so late-configured engines never panic).
    pub fn record_worker(&self, w: usize, ev: Event) {
        match self.workers.get(w) {
            Some(ring) => ring.push(&ev),
            None => self.coordinator.push(&ev),
        }
    }

    /// Current virtual time in µs.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advances the virtual clock to at least `t_us` (monotone).
    pub fn advance_clock(&self, t_us: u64) {
        self.clock.fetch_max(t_us, Ordering::Relaxed);
    }

    /// Immutable, decoded view of everything recorded so far. Exact when
    /// worker threads are quiescent.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            coordinator: self.coordinator.events(),
            workers: self.workers.iter().map(EventRing::events).collect(),
            dropped: self.coordinator.dropped()
                + self.workers.iter().map(EventRing::dropped).sum::<u64>(),
            clock_us: self.now(),
        }
    }
}

/// Decoded trace: per-track event lists plus loss accounting.
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    /// Coordinator-track events in record order.
    pub coordinator: Vec<Event>,
    /// Per-worker event tracks in record order.
    pub workers: Vec<Vec<Event>>,
    /// Total events rejected across all rings (0 ⇒ lossless trace).
    pub dropped: u64,
    /// Final virtual-clock reading in µs.
    pub clock_us: u64,
}

impl TraceSnapshot {
    /// Total events captured across all tracks.
    pub fn len(&self) -> usize {
        self.coordinator.len() + self.workers.iter().map(Vec::len).sum::<usize>()
    }

    /// True when no track holds any event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All events from every track, with their track's worker index
    /// (`None` for the coordinator).
    pub fn all_events(&self) -> impl Iterator<Item = (Option<usize>, &Event)> {
        self.coordinator.iter().map(|e| (None, e)).chain(
            self.workers
                .iter()
                .enumerate()
                .flat_map(|(w, evs)| evs.iter().map(move |e| (Some(w), e))),
        )
    }

    /// Events of one kind across all tracks.
    pub fn events_of(&self, kind: SpanKind) -> Vec<Event> {
        self.all_events()
            .filter(|(_, e)| e.kind == kind)
            .map(|(_, e)| *e)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, ts: u64) -> Event {
        Event {
            ts_us: ts,
            dur_us: 3,
            query_id: 7,
            kind,
            worker: 1,
            disk: 2,
            detail: 42,
        }
    }

    #[test]
    fn roundtrip_through_ring() {
        let ring = EventRing::new(8);
        let e = ev(SpanKind::DiskBatch, 100);
        ring.push(&e);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.events()[0], e);
    }

    #[test]
    fn full_ring_counts_drops_without_overwrite() {
        let ring = EventRing::new(2);
        for i in 0..5 {
            ring.push(&ev(SpanKind::Reply, i));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let evs = ring.events();
        assert_eq!(evs[0].ts_us, 0);
        assert_eq!(evs[1].ts_us, 1);
    }

    #[test]
    fn sentinel_ids_survive_packing() {
        let ring = EventRing::new(1);
        ring.push(&Event {
            ts_us: 0,
            dur_us: 0,
            query_id: NO_QUERY,
            kind: SpanKind::Admit,
            worker: NO_ID,
            disk: NO_ID,
            detail: 0,
        });
        let e = ring.events()[0];
        assert_eq!(e.worker, NO_ID);
        assert_eq!(e.disk, NO_ID);
        assert_eq!(e.query_id, NO_QUERY);
    }

    #[test]
    fn recorder_routes_tracks_and_clock() {
        let r = Recorder::with_capacity(2, 16);
        r.record(ev(SpanKind::Admit, 0));
        r.record_worker(0, ev(SpanKind::DiskBatch, 10));
        r.record_worker(5, ev(SpanKind::DiskBatch, 20)); // out of range → coordinator
        r.advance_clock(100);
        r.advance_clock(50); // monotone: no effect
        assert_eq!(r.now(), 100);
        let snap = r.snapshot();
        assert_eq!(snap.coordinator.len(), 2);
        assert_eq!(snap.workers[0].len(), 1);
        assert_eq!(snap.workers[1].len(), 0);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events_of(SpanKind::DiskBatch).len(), 2);
    }
}
