//! `pargrid-obs`: zero-dependency observability for the parallel grid file.
//!
//! Three pieces, all engine-agnostic:
//!
//! * [`hist`] — HDR-style log-bucketed latency histograms (~1.6% relative
//!   error) with mergeable snapshots, a concurrent [`hist::AtomicHistogram`]
//!   variant, and the workspace-wide [`hist::nearest_rank_index`] quantile
//!   definition.
//! * [`span`] — a lock-free, non-wrapping per-track ring-buffer
//!   [`span::Recorder`] capturing query lifecycle events in virtual
//!   microseconds.
//! * exporters — [`prom`] (Prometheus text exposition + line validator),
//!   [`chrome`] (Chrome `trace_event` JSON for Perfetto), and [`json`]
//!   (the minimal parser that proves traces round-trip).
//!
//! The crate deliberately has no dependencies so `pargrid-parallel` can
//! feature-gate it without dragging anything onto the disabled path.

#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod json;
pub mod names;
pub mod prom;
pub mod span;

pub use chrome::to_chrome_trace;
pub use hist::{nearest_rank_index, AtomicHistogram, Histogram, TailSummary};
pub use prom::{validate_prometheus, PromWriter};
pub use span::{Event, EventRing, Recorder, SpanKind, TraceSnapshot, NO_ID, NO_QUERY};
