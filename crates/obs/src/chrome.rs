//! Chrome `trace_event` JSON exporter.
//!
//! Produces the "JSON Object Format" understood by `chrome://tracing` and
//! Perfetto: a `traceEvents` array of `"X"` (complete span), `"i"`
//! (instant) and `"M"` (metadata) events. Tracks map to thread ids:
//! tid 0 is the coordinator, tid `1 + w` is worker `w`, and tid
//! `1000 + d` is disk `d` (disk-batch spans are timestamped in that
//! disk's own busy clock, so each disk lane reads as a Gantt row).

use crate::json::escape;
use crate::span::{Event, SpanKind, TraceSnapshot, NO_ID, NO_QUERY};

const COORD_TID: u64 = 0;
const WORKER_TID_BASE: u64 = 1;
const DISK_TID_BASE: u64 = 1000;

fn tid_for(track_worker: Option<usize>, ev: &Event) -> u64 {
    if ev.kind == SpanKind::DiskBatch && ev.disk != NO_ID {
        return DISK_TID_BASE + ev.disk as u64;
    }
    match track_worker {
        None => COORD_TID,
        Some(w) => WORKER_TID_BASE + w as u64,
    }
}

fn push_meta(out: &mut Vec<String>, tid: u64, name: &str, sort: u64) {
    out.push(format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    ));
    out.push(format!(
        "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
         \"args\":{{\"sort_index\":{sort}}}}}"
    ));
}

fn event_json(track_worker: Option<usize>, ev: &Event) -> String {
    let tid = tid_for(track_worker, ev);
    let ph = if ev.dur_us > 0 { "X" } else { "i" };
    let mut args = Vec::new();
    if ev.query_id != NO_QUERY {
        args.push(format!("\"query\":{}", ev.query_id));
    }
    if ev.worker != NO_ID {
        args.push(format!("\"worker\":{}", ev.worker));
    }
    if ev.disk != NO_ID {
        args.push(format!("\"disk\":{}", ev.disk));
    }
    match ev.kind {
        SpanKind::CacheProbe => {
            args.push(format!("\"hits\":{}", ev.detail >> 32));
            args.push(format!("\"probes\":{}", ev.detail & 0xFFFF_FFFF));
        }
        _ if ev.detail != 0 => args.push(format!("\"detail\":{}", ev.detail)),
        _ => {}
    }
    let mut fields = vec![
        format!("\"name\":\"{}\"", ev.kind.name()),
        format!("\"ph\":\"{ph}\""),
        format!("\"ts\":{}", ev.ts_us),
        "\"pid\":0".to_string(),
        format!("\"tid\":{tid}"),
        format!("\"args\":{{{}}}", args.join(",")),
    ];
    if ev.dur_us > 0 {
        fields.insert(3, format!("\"dur\":{}", ev.dur_us));
    } else {
        fields.push("\"s\":\"t\"".to_string());
    }
    format!("{{{}}}", fields.join(","))
}

/// Renders a snapshot as a Chrome `trace_event` JSON document.
///
/// Timestamps are virtual microseconds (the `trace_event` native unit), so
/// the timeline in Perfetto reads directly in simulated time.
pub fn to_chrome_trace(snap: &TraceSnapshot) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(snap.len() + 16);

    push_meta(&mut parts, COORD_TID, "coordinator", 0);
    for w in 0..snap.workers.len() {
        push_meta(
            &mut parts,
            WORKER_TID_BASE + w as u64,
            &format!("worker {w}"),
            10 + w as u64,
        );
    }
    let mut disks: Vec<u32> = snap
        .all_events()
        .filter(|(_, e)| e.kind == SpanKind::DiskBatch && e.disk != NO_ID)
        .map(|(_, e)| e.disk)
        .collect();
    disks.sort_unstable();
    disks.dedup();
    for d in &disks {
        push_meta(
            &mut parts,
            DISK_TID_BASE + *d as u64,
            &format!("disk {d}"),
            1000 + *d as u64,
        );
    }

    for (track, ev) in snap.all_events() {
        parts.push(event_json(track, ev));
    }

    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\",\
         \"otherData\":{{\"dropped_events\":{},\"virtual_clock_us\":{}}}}}\n",
        parts.join(",\n"),
        snap.dropped,
        snap.clock_us
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::span::Recorder;

    #[test]
    fn export_round_trips_through_parser() {
        let r = Recorder::with_capacity(2, 64);
        r.record(Event {
            ts_us: 0,
            dur_us: 0,
            query_id: 1,
            kind: SpanKind::Admit,
            worker: NO_ID,
            disk: NO_ID,
            detail: 0,
        });
        r.record_worker(
            0,
            Event {
                ts_us: 10,
                dur_us: 40,
                query_id: 1,
                kind: SpanKind::DiskBatch,
                worker: 0,
                disk: 3,
                detail: 8,
            },
        );
        r.record_worker(
            1,
            Event {
                ts_us: 5,
                dur_us: 0,
                query_id: 1,
                kind: SpanKind::CacheProbe,
                worker: 1,
                disk: NO_ID,
                detail: (2 << 32) | 9,
            },
        );
        r.record(Event {
            ts_us: 0,
            dur_us: 55,
            query_id: 1,
            kind: SpanKind::Reply,
            worker: NO_ID,
            disk: NO_ID,
            detail: 12,
        });
        let doc = to_chrome_trace(&r.snapshot());
        let parsed = json::parse(&doc).expect("exported trace must be valid JSON");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();

        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        let batch = spans
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("disk_batch"))
            .unwrap();
        assert_eq!(batch.get("tid").unwrap().as_num(), Some(1003.0));
        assert_eq!(batch.get("dur").unwrap().as_num(), Some(40.0));
        assert_eq!(
            batch.get("args").unwrap().get("disk").unwrap().as_num(),
            Some(3.0)
        );

        let probe = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("cache_probe"))
            .unwrap();
        assert_eq!(
            probe.get("args").unwrap().get("hits").unwrap().as_num(),
            Some(2.0)
        );
        assert_eq!(
            probe.get("args").unwrap().get("probes").unwrap().as_num(),
            Some(9.0)
        );

        // Thread metadata present for coordinator, both workers, and the disk.
        let names: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert!(names.contains(&"coordinator".to_string()));
        assert!(names.contains(&"worker 0".to_string()));
        assert!(names.contains(&"worker 1".to_string()));
        assert!(names.contains(&"disk 3".to_string()));
    }
}
