//! Minimal JSON reader used to validate exported traces.
//!
//! The workspace has no serde; this is a small recursive-descent parser
//! that accepts the JSON the Chrome-trace exporter emits (objects, arrays,
//! strings with `\uXXXX`/standard escapes, numbers, booleans, null). It
//! exists so tests and the CLI can prove a trace round-trips through a real
//! parse, not to be a general-purpose JSON library.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as f64; trace fields are small integers).
    Num(f64),
    /// String with escapes resolved.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (sorted keys; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Where and why a parse failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable reason.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not emitted by our exporter;
                            // map unpaired ones to U+FFFD rather than fail.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_shaped_documents() {
        let doc = r#"{"traceEvents":[{"name":"reply","ph":"X","ts":12,"dur":3,"pid":0,"tid":1,"args":{"query":7}}],"displayTimeUnit":"ms"}"#;
        let v = parse(doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("reply"));
        assert_eq!(events[0].get("ts").unwrap().as_num(), Some(12.0));
        assert_eq!(
            events[0]
                .get("args")
                .unwrap()
                .get("query")
                .unwrap()
                .as_num(),
            Some(7.0)
        );
    }

    #[test]
    fn parses_scalars_arrays_escapes() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            parse(r#"[1, "a\nb", {"k": []}]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Str("a\nb".into()),
                Json::Obj([("k".to_string(), Json::Arr(vec![]))].into_iter().collect()),
            ])
        );
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Json::Str(nasty.to_string()));
    }
}
