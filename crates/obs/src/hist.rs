//! Log-bucketed latency histograms (HDR-style).
//!
//! Values are bucketed with 6 significand bits: 0..=63 exactly, then 64
//! sub-buckets per power of two, so the relative quantization error is at
//! most `1/64 ≈ 1.6%` — within the ~2% budget the recorder advertises —
//! while the whole `u64` range fits in [`N_BUCKETS`] fixed counters.
//! Histograms are mergeable (buckets add), and [`AtomicHistogram`] offers
//! the same bucketing behind relaxed atomics for `&self` recording from
//! many threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Significand bits kept per bucket (64 sub-buckets per octave).
const SUB_BITS: u32 = 6;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;

/// Total number of buckets covering the whole `u64` range.
pub const N_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Bucket index of a value.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let h = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
        let shift = h - SUB_BITS;
        let sub = (v >> shift) & (SUB - 1);
        ((h - SUB_BITS + 1) as u64 * SUB + sub) as usize
    }
}

/// Inclusive `(lo, hi)` value bounds of bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUB {
        (idx, idx)
    } else {
        let shift = (idx / SUB - 1) as u32;
        let sub = idx % SUB;
        let lo = (SUB + sub) << shift;
        let width = 1u64 << shift;
        (lo, lo + (width - 1))
    }
}

/// Nearest-rank index of quantile `q` among `n` sorted samples: the smallest
/// index `i` such that at least `ceil(q·n)` samples are `<= sample[i]`.
///
/// This is the one shared definition of "percentile" across the workspace
/// (the simulator's `p95_response`, the recorder's histograms, the `repro
/// tail` experiment), replacing per-call-site ceil/clamp arithmetic.
pub fn nearest_rank_index(n: usize, q: f64) -> usize {
    assert!(n > 0, "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of [0, 1]: {q}");
    ((q * n as f64).ceil() as usize).clamp(1, n) - 1
}

/// A plain (single-threaded) log-bucketed histogram snapshot.
///
/// Obtained directly via [`Histogram::new`] + [`Histogram::record`], or as
/// an [`AtomicHistogram::snapshot`]. Merging two histograms adds their
/// buckets, so per-shard histograms aggregate exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_of(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket holding
    /// the target rank, clamped into `[min, max]`. Exact for values < 128;
    /// within one bucket (~1.6% relative) above. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = nearest_rank_index(self.count as usize, q) as u64 + 1;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(idx);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterates non-empty buckets as `(lo, hi, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter_map(|(i, &c)| {
            if c == 0 {
                None
            } else {
                let (lo, hi) = bucket_bounds(i);
                Some((lo, hi, c))
            }
        })
    }

    /// Cumulative count of values `<= bound` as bucketed (counts every
    /// bucket whose upper edge is `<= bound`). Exact when `bound` is a
    /// bucket boundary — the Prometheus exporter only asks at powers of two.
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        let mut total = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c != 0 && bucket_bounds(i).1 <= bound {
                total += c;
            }
        }
        total
    }

    /// The standard tail summary: `(p50, p90, p95, p99, p999, max)`.
    pub fn tail_summary(&self) -> TailSummary {
        TailSummary {
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }
}

/// The percentile bundle every tail-latency report prints.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TailSummary {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum.
    pub max: u64,
}

/// A log-bucketed histogram recordable through `&self` from any thread.
///
/// All counters are relaxed atomics: recording is wait-free and never
/// blocks a worker; [`AtomicHistogram::snapshot`] is exact once recording
/// threads are quiescent (joined or idle), which is when exports run.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (wait-free, relaxed ordering).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Plain snapshot (exact when recorders are quiescent).
    pub fn snapshot(&self) -> Histogram {
        Histogram {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..128u64 {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert_eq!((lo, hi), (v, v), "value {v}");
        }
    }

    #[test]
    fn bounds_partition_the_u64_range() {
        // Consecutive buckets tile the range with no gap or overlap.
        let mut expected_lo = 0u64;
        for idx in 0..N_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "bucket {idx}");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(idx, N_BUCKETS - 1);
                return;
            }
            expected_lo = hi + 1;
        }
        panic!("never reached u64::MAX");
    }

    #[test]
    fn bucket_of_matches_bounds() {
        for &v in &[
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            123_456,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_of(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn relative_error_within_two_percent() {
        let mut v = 128u64;
        while v < u64::MAX / 3 {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            let err = (hi - lo) as f64 / lo as f64;
            assert!(err <= 0.02, "bucket [{lo}, {hi}] error {err}");
            v = v.saturating_mul(3) / 2 + 17;
        }
    }

    #[test]
    fn quantiles_match_exact_ranks_on_small_values() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(0.95), 95);
        assert_eq!(h.quantile(0.99), 99);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 50.5);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.tail_summary(), TailSummary::default());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..1000u64 {
            let v = i * i % 7919;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let ah = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [0u64, 5, 99, 64, 100_000, 12_345_678] {
            ah.record(v);
            h.record(v);
        }
        assert_eq!(ah.snapshot(), h);
        assert_eq!(ah.count(), 6);
    }

    #[test]
    fn cumulative_le_counts_whole_buckets() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 200, 300, 5000] {
            h.record(v);
        }
        assert_eq!(h.cumulative_le(3), 3);
        assert_eq!(h.cumulative_le(1024), 5);
        assert_eq!(h.cumulative_le(u64::MAX), 6);
    }

    #[test]
    fn nearest_rank_matches_textbook_cases() {
        assert_eq!(nearest_rank_index(1, 0.95), 0);
        assert_eq!(nearest_rank_index(100, 0.95), 94);
        assert_eq!(nearest_rank_index(100, 0.0), 0);
        assert_eq!(nearest_rank_index(100, 1.0), 99);
        assert_eq!(nearest_rank_index(10, 0.95), 9);
        assert_eq!(nearest_rank_index(3, 0.5), 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn nearest_rank_rejects_empty() {
        nearest_rank_index(0, 0.5);
    }
}
