//! Property tests for the log-bucketed histogram: bucketing invariants,
//! merge-equals-combined-record, quantile monotonicity, and the quantile
//! staying within one bucket of the exact nearest-rank value.

use pargrid_obs::hist::{bucket_bounds, bucket_of, nearest_rank_index};
use pargrid_obs::Histogram;
use proptest::prelude::*;

/// Values spanning all regimes: exact (<64), log-bucketed, and huge.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..64, 64u64..100_000, 100_000u64..u64::MAX / 2]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn value_falls_in_its_bucket(v in 0u64..=u64::MAX) {
        let (lo, hi) = bucket_bounds(bucket_of(v));
        prop_assert!(lo <= v && v <= hi, "v={v} bucket=[{lo},{hi}]");
    }

    #[test]
    fn merge_matches_combined_recording(
        a in prop::collection::vec(value_strategy(), 0..200),
        b in prop::collection::vec(value_strategy(), 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha, hall);
    }

    #[test]
    fn quantiles_are_monotone_in_q(vs in prop::collection::vec(value_strategy(), 1..300)) {
        let mut h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0];
        let mut last = 0u64;
        for &q in &qs {
            let val = h.quantile(q);
            prop_assert!(val >= last, "quantile({q}) = {val} < {last}");
            prop_assert!(val >= h.min() && val <= h.max());
            last = val;
        }
    }

    #[test]
    fn quantile_within_one_bucket_of_exact_rank(
        vs in prop::collection::vec(value_strategy(), 1..300),
        qi in 0usize..5,
    ) {
        let q = [0.5, 0.9, 0.95, 0.99, 1.0][qi];
        let mut h = Histogram::new();
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        for &v in &vs {
            h.record(v);
        }
        let exact = sorted[nearest_rank_index(sorted.len(), q)];
        let est = h.quantile(q);
        // The estimate must land in (or at the clamped edge of) the exact
        // value's bucket: within one bucket of the true nearest-rank value.
        let (lo, hi) = bucket_bounds(bucket_of(exact));
        prop_assert!(
            est >= lo.max(h.min()) && est <= hi.min(h.max()),
            "q={q} exact={exact} bucket=[{lo},{hi}] est={est}"
        );
    }

    #[test]
    fn quantile_relative_error_bounded(
        vs in prop::collection::vec(64u64..10_000_000, 1..300),
        qi in 0usize..5,
    ) {
        let q = [0.5, 0.9, 0.95, 0.99, 1.0][qi];
        let mut h = Histogram::new();
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        for &v in &vs {
            h.record(v);
        }
        let exact = sorted[nearest_rank_index(sorted.len(), q)] as f64;
        let est = h.quantile(q) as f64;
        let rel = (est - exact).abs() / exact;
        prop_assert!(rel <= 0.02, "q={q} exact={exact} est={est} rel={rel}");
    }

    #[test]
    fn count_sum_minmax_track_inputs(vs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        prop_assert_eq!(h.count(), vs.len() as u64);
        prop_assert_eq!(h.sum(), vs.iter().sum::<u64>());
        prop_assert_eq!(h.min(), *vs.iter().min().unwrap());
        prop_assert_eq!(h.max(), *vs.iter().max().unwrap());
    }
}
