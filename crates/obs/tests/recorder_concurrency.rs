//! Concurrency tests for the recorder: N threads × M events with no loss
//! below ring capacity, and a bounded drop counter above it.

use std::sync::Arc;
use std::thread;

use pargrid_obs::{Event, EventRing, Recorder, SpanKind, NO_ID};

fn ev(thread_id: u64, seq: u64) -> Event {
    Event {
        ts_us: seq,
        dur_us: 1,
        query_id: (thread_id << 32) | seq,
        kind: SpanKind::Reply,
        worker: thread_id as u32,
        disk: NO_ID,
        detail: seq,
    }
}

#[test]
fn no_loss_below_ring_capacity() {
    const THREADS: u64 = 8;
    const EVENTS: u64 = 500;
    let ring = Arc::new(EventRing::new((THREADS * EVENTS) as usize));

    thread::scope(|scope| {
        for t in 0..THREADS {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for i in 0..EVENTS {
                    ring.push(&ev(t, i));
                }
            });
        }
    });

    assert_eq!(ring.len() as u64, THREADS * EVENTS);
    assert_eq!(ring.dropped(), 0);

    // Every (thread, seq) pair arrived exactly once, intact.
    let mut ids: Vec<u64> = ring.events().iter().map(|e| e.query_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, THREADS * EVENTS);
    for e in ring.events() {
        assert_eq!(e.detail, e.query_id & 0xFFFF_FFFF);
        assert_eq!(e.worker as u64, e.query_id >> 32);
    }
}

#[test]
fn overflow_drops_are_counted_exactly() {
    const THREADS: u64 = 8;
    const EVENTS: u64 = 400;
    const CAPACITY: usize = 1000; // < THREADS * EVENTS
    let ring = Arc::new(EventRing::new(CAPACITY));

    thread::scope(|scope| {
        for t in 0..THREADS {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for i in 0..EVENTS {
                    ring.push(&ev(t, i));
                }
            });
        }
    });

    // Stored + dropped always accounts for every push; the ring never
    // overwrites, so exactly CAPACITY events survive.
    assert_eq!(ring.len(), CAPACITY);
    assert_eq!(ring.dropped(), THREADS * EVENTS - CAPACITY as u64);
    let mut ids: Vec<u64> = ring.events().iter().map(|e| e.query_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        CAPACITY,
        "surviving events are distinct and intact"
    );
}

#[test]
fn recorder_tracks_are_independent_and_histograms_complete() {
    const WORKERS: usize = 4;
    const EVENTS: u64 = 300;
    let rec = Arc::new(Recorder::with_capacity(WORKERS, EVENTS as usize));

    thread::scope(|scope| {
        for w in 0..WORKERS {
            let rec = Arc::clone(&rec);
            scope.spawn(move || {
                for i in 0..EVENTS {
                    rec.record_worker(w, ev(w as u64, i));
                    rec.query_us.record(i + 1);
                    rec.advance_clock(i);
                }
            });
        }
    });

    let snap = rec.snapshot();
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.clock_us, EVENTS - 1);
    for track in &snap.workers {
        assert_eq!(track.len() as u64, EVENTS);
    }
    assert_eq!(rec.query_us.count(), WORKERS as u64 * EVENTS);
    let h = rec.query_us.snapshot();
    assert_eq!(h.min(), 1);
    assert_eq!(h.max(), EVENTS);
}
