//! Dedup across worker reconnect: a proxy that loses its TCP connection
//! mid-round-trip reconnects and *retransmits* the same `Dispatch` seq.
//! The worker must answer it once — byte-identically, from the reply
//! cache — and must not re-execute the query. This is the wire-level
//! twin of the engine's seen-seq dedup window.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;

use pargrid_cluster::{WorkerConfig, WorkerServer};
use pargrid_geom::{Point, Rect};
use pargrid_gridfile::page::encode_page;
use pargrid_gridfile::Record;
use pargrid_net::cluster_proto::{ClusterRequest, ClusterResponse};
use pargrid_net::frame::{read_frame, write_frame};

const PAGE_BYTES: usize = 256;

/// One raw-frame connection speaking the worker plane in lockstep.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect to worker");
        stream.set_nodelay(true).unwrap();
        Conn {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: BufWriter::new(stream),
        }
    }

    fn round_trip(&mut self, req: &ClusterRequest) -> ClusterResponse {
        let (t, p) = req.encode();
        write_frame(&mut self.writer, t, &p).expect("write frame");
        self.writer.flush().expect("flush");
        let frame = read_frame(&mut self.reader).expect("read frame");
        ClusterResponse::decode(frame.msg_type, &frame.payload).expect("decode response")
    }
}

fn page(records: &[(u64, [f64; 2])]) -> Vec<u8> {
    let records: Vec<Record> = records
        .iter()
        .map(|(id, key)| Record::new(*id, Point::new(key)))
        .collect();
    encode_page(&records, 2, 0, PAGE_BYTES)
}

fn join(epoch: u64) -> ClusterRequest {
    ClusterRequest::WorkerJoin {
        slot: 0,
        epoch,
        payload_bytes: 0,
        seen_seq_window: 64,
    }
}

fn dispatch(seq: u64) -> ClusterRequest {
    ClusterRequest::Dispatch {
        epoch: 1,
        query_id: 7,
        seq,
        priority: 0,
        rect: Rect::new(Point::new(&[0.0, 0.0]), Point::new(&[1.0, 1.0])),
        blocks: vec![0, 1],
    }
}

#[test]
fn retransmit_after_reconnect_is_answered_once() {
    let mut worker = WorkerServer::start("127.0.0.1:0", WorkerConfig::default()).expect("start");
    let addr = worker.local_addr().to_string();

    // First connection: join, upload two pages, dispatch seq 42.
    let mut conn = Conn::open(&addr);
    let welcome = conn.round_trip(&join(1));
    assert!(
        matches!(welcome, ClusterResponse::Welcome { epoch: 1, .. }),
        "{welcome:?}"
    );
    let blocks = vec![
        (
            0u32,
            page(&[(1, [0.1, 0.1]), (2, [0.5, 0.5]), (3, [0.9, 0.2])]),
        ),
        (1u32, page(&[(4, [0.3, 0.8]), (5, [0.7, 0.4])])),
    ];
    let ack = conn.round_trip(&ClusterRequest::WriteBlocks { epoch: 1, blocks });
    assert_eq!(
        ack,
        ClusterResponse::BlocksAck {
            epoch: 1,
            written: 2
        }
    );
    let first = conn.round_trip(&dispatch(42));
    let ClusterResponse::WorkerReply(reply) = &first else {
        panic!("expected a reply, got {first:?}");
    };
    assert_eq!(reply.seq, 42);
    let mut ids: Vec<u64> = reply.records.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    assert_eq!(worker.executed(), 1);
    assert_eq!(worker.deduped(), 0);

    // The connection dies mid-flight (the proxy never saw the reply).
    drop(conn);

    // Reconnect at the *same* epoch: slot state survives, including the
    // uploaded pages and the reply cache.
    let mut conn = Conn::open(&addr);
    let welcome = conn.round_trip(&join(1));
    assert!(
        matches!(
            welcome,
            ClusterResponse::Welcome {
                epoch: 1,
                blocks_held: 2,
                ..
            }
        ),
        "pages must survive a same-epoch rejoin: {welcome:?}"
    );

    // The retransmitted dispatch is answered from the cache: identical
    // bytes, no second execution.
    let again = conn.round_trip(&dispatch(42));
    assert_eq!(again, first, "retransmit must be answered byte-identically");
    assert_eq!(worker.executed(), 1, "retransmit must not re-execute");
    assert_eq!(worker.deduped(), 1);

    // A genuinely new seq still executes normally on the new connection.
    let fresh = conn.round_trip(&dispatch(43));
    assert!(
        matches!(fresh, ClusterResponse::WorkerReply(_)),
        "{fresh:?}"
    );
    assert_eq!(worker.executed(), 2);
    assert_eq!(worker.deduped(), 1);

    // A rejoin at a *higher* epoch resets the slot: the old regime's
    // pages and reply cache are gone, so nothing stale can be served.
    let mut conn2 = Conn::open(&addr);
    let welcome = conn2.round_trip(&join(2));
    assert!(
        matches!(
            welcome,
            ClusterResponse::Welcome {
                epoch: 2,
                blocks_held: 0,
                ..
            }
        ),
        "a higher-epoch join must reset the slot: {welcome:?}"
    );
    // ...and the deposed epoch's frames are fenced on sight.
    let fenced = conn2.round_trip(&dispatch(44));
    assert_eq!(fenced, ClusterResponse::Fenced { epoch: 2 });

    worker.shutdown();
}
