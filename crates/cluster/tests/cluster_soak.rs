//! Seeded process-level chaos soak (ISSUE acceptance: worker kill +
//! leader kill + partitions, 3 seeds, ≥ 99 % of queries complete, zero
//! silent divergence).
//!
//! Each scenario runs a seeded query/insert mix against a 2-coordinator,
//! 3-worker-process cluster built *replicated* (chained declustering), so
//! a killed worker process is masked by replica failover rather than
//! degrading service. Every complete reply is checked against a computed
//! oracle — the deterministic dataset plus all acknowledged inserts — and
//! any mismatch is silent divergence, which fails the soak outright.
//! Incomplete replies (honest degradation during a detection window) only
//! count against the 99 % completion budget.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pargrid_cluster::coordinator::EngineBuilder;
use pargrid_cluster::prelude::*;
use pargrid_cluster::worker::ChaosDrop;
use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_datagen::Dataset;
use pargrid_geom::{Point, Rect};
use pargrid_gridfile::GridFile;
use pargrid_parallel::disk::DiskParams;
use pargrid_parallel::{EngineConfig, ParallelGridFile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dataset points (jittered diagonal, oracle-computable).
const N: usize = 500;
/// Engine slots, striped over the 3 worker processes.
const SLOTS: usize = 6;
/// Ops per scenario.
const N_OPS: usize = 60;
/// First id minted by inserts (clear of the dataset's 0..N).
const INSERT_BASE: u64 = 1_000_000;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Chaos {
    /// `kill -9` one of the three worker processes at the midpoint.
    WorkerKill,
    /// `kill -9` the leading coordinator at the midpoint.
    LeaderKill,
    /// Every worker silently drops ~1 % of inbound frames all run long.
    Partition,
}

fn tiny_grid() -> GridFile {
    let domain = Rect::new2(0.0, 0.0, 1000.0, 1000.0);
    let points: Vec<Point> = (0..N)
        .map(|i| {
            let t = i as f64 / N as f64 * 1000.0;
            Point::new2(t, (t * 7.0 + 13.0) % 1000.0)
        })
        .collect();
    Dataset::new("soak", points, domain, 1024, 16).build_grid_file()
}

/// Dataset ids inside `[lo, hi]`.
fn base_ids(lo: [f64; 2], hi: [f64; 2]) -> Vec<u64> {
    (0..N as u64)
        .filter(|&i| {
            let t = i as f64 / N as f64 * 1000.0;
            let y = (t * 7.0 + 13.0) % 1000.0;
            t >= lo[0] && t <= hi[0] && y >= lo[1] && y <= hi[1]
        })
        .collect()
}

fn fast_disks() -> DiskParams {
    DiskParams {
        miss_us: 200,
        sequential_us: 40,
        hit_us: 5,
        cache_pages: 512,
    }
}

/// Replicated build: every bucket has a chained-declustered secondary on
/// a different slot, so losing one worker process keeps service complete.
fn replicated_builder() -> EngineBuilder {
    Box::new(|gf, backend| {
        let input = DeclusterInput::from_grid_file(&gf);
        let ra =
            DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(&input, SLOTS, 42);
        let cfg = EngineConfig::default().with_backend(backend);
        Arc::new(ParallelGridFile::build_replicated(gf, &ra, cfg))
    })
}

fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let a = l.local_addr().expect("local addr");
    drop(l);
    format!("127.0.0.1:{}", a.port())
}

struct SoakCluster {
    client: ClusterClient,
    coords: Vec<Coordinator>,
    workers: Vec<WorkerServer>,
}

fn start_cluster(chaos: Chaos, seed: u64) -> SoakCluster {
    let workers: Vec<WorkerServer> = (0..3)
        .map(|i| {
            let cfg = WorkerConfig {
                disks: 2,
                disk_params: fast_disks(),
                chaos: (chaos == Chaos::Partition).then_some(ChaosDrop {
                    seed: seed ^ (i as u64 + 1),
                    rate: 0.01,
                }),
                ..WorkerConfig::default()
            };
            WorkerServer::start("127.0.0.1:0", cfg).expect("start worker")
        })
        .collect();
    let worker_addrs: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();
    let addrs: Vec<(String, String)> = (0..2).map(|_| (free_addr(), free_addr())).collect();
    let coords: Vec<Coordinator> = (0..2)
        .map(|i| {
            let mut cfg = CoordinatorConfig::new(i as u32, addrs[i].0.clone(), addrs[i].1.clone());
            let o = 1 - i;
            cfg.peers = vec![PeerSpec {
                id: o as u32,
                peer_addr: addrs[o].1.clone(),
                client_addr: addrs[o].0.clone(),
            }];
            cfg.workers = worker_addrs.clone();
            cfg.seed = seed ^ (i as u64 + 1);
            Coordinator::start(cfg, tiny_grid(), replicated_builder()).expect("start coordinator")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while !coords.iter().any(|c| c.is_leader()) {
        assert!(Instant::now() < deadline, "no leader elected in 30 s");
        std::thread::sleep(Duration::from_millis(5));
    }
    let client = ClusterClient::new(vec![addrs[0].0.clone(), addrs[1].0.clone()])
        .with_deadline(Duration::from_secs(60));
    SoakCluster {
        client,
        coords,
        workers,
    }
}

/// Per-scenario tallies, aggregated across the whole soak.
#[derive(Default)]
struct Tally {
    queries: usize,
    complete: usize,
    divergent: usize,
}

fn run_scenario(chaos: Chaos, seed: u64, tally: &mut Tally) {
    let mut cluster = start_cluster(chaos, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x50a4_c8a0);
    // Acknowledged inserts (certain: in the oracle). An insert whose ack
    // was lost is *maybe applied*: its id is excluded from comparison on
    // both sides instead of guessing.
    let mut certain: Vec<(u64, [f64; 2])> = Vec::new();
    let mut maybe: Vec<u64> = Vec::new();
    let mut next_id = INSERT_BASE;

    for i in 0..N_OPS {
        if i == N_OPS / 2 {
            match chaos {
                Chaos::WorkerKill => cluster.workers[2].kill(),
                Chaos::LeaderKill => {
                    let leader = cluster
                        .coords
                        .iter()
                        .position(|c| c.is_leader())
                        .expect("a leader to kill");
                    cluster.coords[leader].kill();
                    let survivor = &cluster.coords[1 - leader];
                    let t0 = Instant::now();
                    while !survivor.is_leader() {
                        assert!(
                            t0.elapsed() < Duration::from_secs(30),
                            "survivor did not take over"
                        );
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
                Chaos::Partition => {}
            }
        }
        if rng.random_bool(0.75) {
            // Query: a random 15 %-side square, checked against the oracle.
            let lo = [rng.random_range(0.0..850.0), rng.random_range(0.0..850.0)];
            let hi = [lo[0] + 150.0, lo[1] + 150.0];
            tally.queries += 1;
            let reply = match cluster.client.range_query(&lo, &hi) {
                Ok(r) => r,
                Err(_) => continue, // not completed; counted against the budget
            };
            if reply.incomplete {
                continue;
            }
            tally.complete += 1;
            let mut got: Vec<u64> = reply.records.iter().map(|r| r.id).collect();
            let n_raw = got.len();
            got.sort_unstable();
            got.dedup();
            let duplicated = got.len() != n_raw;
            got.retain(|id| !maybe.contains(id));
            let mut want = base_ids(lo, hi);
            want.extend(certain.iter().filter_map(|(id, p)| {
                (p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1]).then_some(*id)
            }));
            want.sort_unstable();
            if duplicated || got != want {
                tally.divergent += 1;
                eprintln!("[{chaos:?} seed {seed}] divergent reply at op {i}: got {got:?} want {want:?} (dup={duplicated})");
            }
        } else {
            let id = next_id;
            next_id += 1;
            let p = [rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)];
            match cluster.client.insert(id, &p) {
                Ok(_) => certain.push((id, p)),
                Err(_) => maybe.push(id),
            }
        }
    }
    drop(cluster);
}

#[test]
fn chaos_soak_three_seeds() {
    let mut tally = Tally::default();
    for (chaos, seed) in [
        (Chaos::WorkerKill, 11u64),
        (Chaos::LeaderKill, 12),
        (Chaos::Partition, 13),
    ] {
        let before = (tally.queries, tally.complete);
        run_scenario(chaos, seed, &mut tally);
        eprintln!(
            "[{chaos:?} seed {seed}] {}/{} queries complete, {} divergent so far",
            tally.complete - before.1,
            tally.queries - before.0,
            tally.divergent
        );
    }
    assert_eq!(tally.divergent, 0, "silent divergence in the chaos soak");
    assert!(
        tally.complete * 100 >= tally.queries * 99,
        "completion {}/{} below 99 %",
        tally.complete,
        tally.queries
    );
}
