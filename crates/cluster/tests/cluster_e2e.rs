//! End-to-end cluster tests, in-process but over real TCP: worker
//! processes as `WorkerServer`s, coordinators as `Coordinator`s, clients
//! as `ClusterClient`s. Everything a deployment does — joins, uploads,
//! dispatches, elections, replication, failover — happens over loopback
//! sockets here.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pargrid_cluster::coordinator::EngineBuilder;
use pargrid_cluster::prelude::*;
use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_datagen::Dataset;
use pargrid_geom::{Point, Rect};
use pargrid_gridfile::GridFile;
use pargrid_parallel::disk::DiskParams;
use pargrid_parallel::{EngineConfig, ParallelGridFile};

/// A small deterministic dataset: `n` points on a jittered diagonal so
/// every id's position is computable in the oracle.
fn tiny_grid(n: usize) -> GridFile {
    let domain = Rect::new2(0.0, 0.0, 1000.0, 1000.0);
    let points: Vec<Point> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64 * 1000.0;
            Point::new2(t, (t * 7.0 + 13.0) % 1000.0)
        })
        .collect();
    Dataset::new("e2e", points, domain, 1024, 16).build_grid_file()
}

/// Expected ids for a range query against [`tiny_grid`].
fn oracle_ids(n: usize, lo: [f64; 2], hi: [f64; 2]) -> Vec<u64> {
    let mut ids: Vec<u64> = (0..n as u64)
        .filter(|&i| {
            let t = i as f64 / n as f64 * 1000.0;
            let y = (t * 7.0 + 13.0) % 1000.0;
            t >= lo[0] && t <= hi[0] && y >= lo[1] && y <= hi[1]
        })
        .collect();
    ids.sort_unstable();
    ids
}

/// Fast virtual disks so tests aren't dominated by simulated seek time.
fn fast_disks() -> DiskParams {
    DiskParams {
        miss_us: 200,
        sequential_us: 40,
        hit_us: 5,
        cache_pages: 512,
    }
}

fn test_builder() -> EngineBuilder {
    Box::new(|gf, backend| {
        let input = DeclusterInput::from_grid_file(&gf);
        let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 4, 42);
        let cfg = EngineConfig::default().with_backend(backend);
        Arc::new(ParallelGridFile::build(gf, &assignment, cfg))
    })
}

/// Grabs a free loopback port (bind 0, read, release).
fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let a = l.local_addr().expect("local addr");
    drop(l);
    format!("127.0.0.1:{}", a.port())
}

fn wait_for<F: FnMut() -> bool>(what: &str, timeout: Duration, mut f: F) {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

fn worker_cfg() -> WorkerConfig {
    WorkerConfig {
        disks: 2,
        disk_params: fast_disks(),
        ..WorkerConfig::default()
    }
}

#[test]
fn single_coordinator_serves_over_remote_workers() {
    let n = 600;
    let gf = tiny_grid(n);
    let w1 = WorkerServer::start("127.0.0.1:0", worker_cfg()).expect("worker 1");
    let w2 = WorkerServer::start("127.0.0.1:0", worker_cfg()).expect("worker 2");
    let mut cfg = CoordinatorConfig::new(0, free_addr(), free_addr());
    cfg.workers = vec![w1.local_addr().to_string(), w2.local_addr().to_string()];
    let coord = Coordinator::start(cfg, gf, test_builder()).expect("coordinator");
    wait_for("leadership", Duration::from_secs(10), || coord.is_leader());

    let mut client = ClusterClient::new(vec![coord.client_addr().to_string()]);
    // Queries match the oracle exactly.
    for (lo, hi) in [
        ([0.0, 0.0], [1000.0, 1000.0]),
        ([100.0, 0.0], [400.0, 900.0]),
        ([700.0, 200.0], [950.0, 750.0]),
    ] {
        let reply = client.range_query(&lo, &hi).expect("range query");
        assert!(!reply.incomplete, "no worker should have failed");
        let got: Vec<u64> = reply.records.iter().map(|r| r.id).collect();
        assert_eq!(got, oracle_ids(n, lo, hi), "query [{lo:?}..{hi:?}]");
    }
    // Both worker processes actually executed dispatches.
    assert!(w1.executed() > 0, "worker 1 saw traffic");
    assert!(w2.executed() > 0, "worker 2 saw traffic");

    // Mutations round-trip: insert then read-your-write, delete, gone.
    client.insert(9_001, &[123.0, 456.0]).expect("insert");
    let reply = client
        .range_query(&[122.0, 455.0], &[124.0, 457.0])
        .expect("query inserted");
    assert!(reply.records.iter().any(|r| r.id == 9_001));
    client.delete(9_001, &[123.0, 456.0]).expect("delete");
    let reply = client
        .range_query(&[122.0, 455.0], &[124.0, 457.0])
        .expect("query deleted");
    assert!(!reply.records.iter().any(|r| r.id == 9_001));

    // The metrics document carries the cluster gauges (satellite 2).
    let stats = client.stats().expect("stats");
    assert!(stats.contains("pargrid_cluster_leader_term"), "{stats}");
    assert!(stats.contains("pargrid_cluster_is_leader 1"), "{stats}");
    assert!(
        stats.contains("pargrid_net_worker_alive{worker="),
        "{stats}"
    );
    drop(coord);
}

#[test]
fn failover_preserves_acknowledged_writes() {
    let n = 400;
    let gf = tiny_grid(n);
    let workers: Vec<WorkerServer> = (0..3)
        .map(|_| WorkerServer::start("127.0.0.1:0", worker_cfg()).expect("worker"))
        .collect();
    let worker_addrs: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();

    let (c0_client, c0_peer) = (free_addr(), free_addr());
    let (c1_client, c1_peer) = (free_addr(), free_addr());
    let mk_cfg = |id: u32, client: &str, peer: &str, other: PeerSpec, seed: u64| {
        let mut cfg = CoordinatorConfig::new(id, client.to_string(), peer.to_string());
        cfg.peers = vec![other];
        cfg.workers = worker_addrs.clone();
        cfg.seed = seed;
        cfg
    };
    let c0 = Coordinator::start(
        mk_cfg(
            0,
            &c0_client,
            &c0_peer,
            PeerSpec {
                id: 1,
                peer_addr: c1_peer.clone(),
                client_addr: c1_client.clone(),
            },
            1,
        ),
        gf.clone(),
        test_builder(),
    )
    .expect("coordinator 0");
    let c1 = Coordinator::start(
        mk_cfg(
            1,
            &c1_client,
            &c1_peer,
            PeerSpec {
                id: 0,
                peer_addr: c0_peer.clone(),
                client_addr: c0_client.clone(),
            },
            2,
        ),
        gf,
        test_builder(),
    )
    .expect("coordinator 1");

    wait_for("a leader", Duration::from_secs(10), || {
        let a = c0.is_leader();
        let b = c1.is_leader();
        a || b
    });
    // Give the loser a beat to settle into follower; exactly one leads.
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        c0.is_leader() ^ c1.is_leader(),
        "exactly one leader (c0={}, c1={})",
        c0.is_leader(),
        c1.is_leader()
    );

    let mut client = ClusterClient::new(vec![c0_client.clone(), c1_client.clone()]);
    // Write through the leader; the ack means both logs have it.
    for i in 0..20u64 {
        client
            .insert(10_000 + i, &[500.0 + i as f64, 500.0])
            .expect("insert before failover");
    }
    let before = client
        .range_query(&[499.0, 499.0], &[521.0, 501.0])
        .expect("query before failover");
    let mut ids: Vec<u64> = before.records.iter().map(|r| r.id).collect();
    ids.retain(|&id| id >= 10_000);
    assert_eq!(ids.len(), 20, "all 20 inserts visible before failover");

    // Kill the leader the hard way.
    let (dead, survivor) = if c0.is_leader() {
        (&c0, &c1)
    } else {
        (&c1, &c0)
    };
    let killed_at = Instant::now();
    dead.kill();

    wait_for("failover", Duration::from_secs(30), || survivor.is_leader());
    let elected_in = killed_at.elapsed();

    // Read-your-write across the failover: every acknowledged insert is
    // visible through the new leader.
    let after = client
        .range_query(&[499.0, 499.0], &[521.0, 501.0])
        .expect("query after failover");
    let mut ids: Vec<u64> = after.records.iter().map(|r| r.id).collect();
    ids.retain(|&id| id >= 10_000);
    ids.sort_unstable();
    assert_eq!(
        ids,
        (10_000..10_020).collect::<Vec<u64>>(),
        "acknowledged writes survive failover"
    );
    // New regime keeps serving ordinary queries correctly.
    let reply = client
        .range_query(&[0.0, 0.0], &[250.0, 1000.0])
        .expect("query after failover");
    let got: Vec<u64> = reply
        .records
        .iter()
        .map(|r| r.id)
        .filter(|&id| id < 10_000)
        .collect();
    assert_eq!(got, oracle_ids(n, [0.0, 0.0], [250.0, 1000.0]));
    // Debug builds are slow; the release-mode experiment asserts the
    // sub-second bound. Here just sanity-bound it.
    assert!(
        elected_in < Duration::from_secs(20),
        "failover took {elected_in:?}"
    );
    assert!(survivor.failovers() >= 1);
    assert!(survivor.term() > 0);
}

#[test]
fn mutations_refused_when_a_joined_standby_goes_dark() {
    // A standby that was replicating this term and then goes dark must
    // flip the leader from replicated to *refusing* — never to silently
    // unreplicated acks (a network blip would otherwise convert every
    // ack into zero-replica durability, lost on the next leader crash).
    // Reads keep serving throughout; refused inserts never surface.
    let n = 300;
    let gf = tiny_grid(n);
    let w1 = WorkerServer::start("127.0.0.1:0", worker_cfg()).expect("worker 1");
    let w2 = WorkerServer::start("127.0.0.1:0", worker_cfg()).expect("worker 2");
    let worker_addrs = vec![w1.local_addr().to_string(), w2.local_addr().to_string()];
    let (c0_client, c0_peer) = (free_addr(), free_addr());
    let (c1_client, c1_peer) = (free_addr(), free_addr());
    let mk_cfg = |id: u32, client: &str, peer: &str, other: PeerSpec, seed: u64| {
        let mut cfg = CoordinatorConfig::new(id, client.to_string(), peer.to_string());
        cfg.peers = vec![other];
        cfg.workers = worker_addrs.clone();
        cfg.seed = seed;
        cfg
    };
    let c0 = Coordinator::start(
        mk_cfg(
            0,
            &c0_client,
            &c0_peer,
            PeerSpec {
                id: 1,
                peer_addr: c1_peer.clone(),
                client_addr: c1_client.clone(),
            },
            11,
        ),
        gf.clone(),
        test_builder(),
    )
    .expect("coordinator 0");
    let c1 = Coordinator::start(
        mk_cfg(
            1,
            &c1_client,
            &c1_peer,
            PeerSpec {
                id: 0,
                peer_addr: c0_peer.clone(),
                client_addr: c0_client.clone(),
            },
            12,
        ),
        gf,
        test_builder(),
    )
    .expect("coordinator 1");
    wait_for("a leader", Duration::from_secs(15), || {
        c0.is_leader() || c1.is_leader()
    });
    std::thread::sleep(Duration::from_millis(300));
    let (leader, standby) = if c0.is_leader() {
        (&c0, &c1)
    } else {
        (&c1, &c0)
    };

    let mut client = ClusterClient::new(vec![leader.client_addr().to_string()])
        .with_deadline(Duration::from_millis(900));
    // Replicated inserts while the standby is up: the standby joins the
    // regime's replication set.
    for i in 0..3u64 {
        client
            .insert(20_000 + i, &[400.0, 400.0 + i as f64])
            .expect("replicated insert");
    }

    // The standby goes dark (silent, like a partition — not deposed).
    standby.kill();

    // Every insert from here on must fail: indeterminate while the
    // standby burns its strikes, then the explicit refusal once it is
    // struck offline. None may be acknowledged.
    let mut last_err = String::new();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let i = u64::from(last_err.len() as u32 % 97); // vary the key a little
        match client.insert(21_000 + i, &[600.0, 600.0 + i as f64]) {
            Ok(_) => panic!("insert acknowledged with zero replicas"),
            Err(e) => last_err = e.to_string(),
        }
        if last_err.contains("no online standby") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "standby never struck offline; last error: {last_err}"
        );
    }

    // Reads are unaffected, the pre-kill acked inserts are visible, and
    // none of the refused ones ever became visible.
    let reply = client
        .range_query(&[0.0, 0.0], &[1000.0, 1000.0])
        .expect("read with standby dark");
    let acked = reply
        .records
        .iter()
        .filter(|r| r.id >= 20_000 && r.id < 21_000)
        .count();
    assert_eq!(acked, 3, "acked replicated inserts stay visible");
    assert!(
        !reply.records.iter().any(|r| r.id >= 21_000),
        "a refused insert must not become visible"
    );
    assert_eq!(
        reply.records.iter().filter(|r| r.id < 20_000).count(),
        n,
        "base records intact"
    );
}
