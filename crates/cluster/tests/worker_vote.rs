//! Worker voting safety at the wire level: the grace period for
//! stateless restarts, durable voter state under `state_path`, the
//! settled-term guard (`leader_term_seen`), and the `(last entry term,
//! length)` election restriction. Each is the worker-side half of a
//! split-brain defence: a worker that forgets its vote — or grants one
//! to a log that would lose committed writes — can help elect a second
//! leader into a live term.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use pargrid_cluster::{WorkerConfig, WorkerServer};
use pargrid_net::cluster_proto::{ClusterRequest, ClusterResponse};
use pargrid_net::frame::{read_frame, write_frame};

/// One raw-frame connection speaking the worker plane in lockstep.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect to worker");
        stream.set_nodelay(true).unwrap();
        Conn {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: BufWriter::new(stream),
        }
    }

    fn round_trip(&mut self, req: &ClusterRequest) -> ClusterResponse {
        let (t, p) = req.encode();
        write_frame(&mut self.writer, t, &p).expect("write frame");
        self.writer.flush().expect("flush");
        let frame = read_frame(&mut self.reader).expect("read frame");
        ClusterResponse::decode(frame.msg_type, &frame.payload).expect("decode response")
    }

    /// Solicits a vote; returns whether it was granted.
    fn vote(&mut self, term: u64, candidate: u32, log_len: u64, last_log_term: u64) -> bool {
        match self.round_trip(&ClusterRequest::VoteRequest {
            term,
            candidate,
            log_len,
            last_log_term,
        }) {
            ClusterResponse::VoteReply { granted, .. } => granted,
            other => panic!("expected a vote reply, got {other:?}"),
        }
    }
}

fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "pargrid-vote-{label}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

fn cfg(vote_grace_ms: u64, state_path: Option<PathBuf>) -> WorkerConfig {
    WorkerConfig {
        vote_grace_ms,
        state_path,
        ..WorkerConfig::default()
    }
}

#[test]
fn fresh_stateless_worker_sits_out_the_grace() {
    // A grace far longer than the test: every vote is refused, because
    // an election could have been in flight when a previous incarnation
    // of this worker died holding an unremembered vote.
    let mut worker = WorkerServer::start("127.0.0.1:0", cfg(60_000, None)).expect("start");
    let mut conn = Conn::open(&worker.local_addr().to_string());
    assert!(!conn.vote(5, 1, 0, 0), "no votes inside the grace");
    assert!(!conn.vote(6, 2, 0, 0), "not even at a later term");
    worker.shutdown();

    // Grace zero: the same request is granted immediately.
    let mut worker = WorkerServer::start("127.0.0.1:0", cfg(0, None)).expect("start");
    let mut conn = Conn::open(&worker.local_addr().to_string());
    assert!(conn.vote(5, 1, 0, 0), "grace elapsed, vote granted");
    worker.shutdown();
}

#[test]
fn restart_with_durable_state_cannot_double_vote() {
    let dir = scratch("durable");
    let path = dir.join("voter.state");

    // First incarnation grants candidate 1 its term-5 vote.
    let mut worker = WorkerServer::start("127.0.0.1:0", cfg(0, Some(path.clone()))).expect("start");
    let mut conn = Conn::open(&worker.local_addr().to_string());
    assert!(conn.vote(5, 1, 0, 0));
    assert!(conn.vote(5, 1, 0, 0), "idempotent re-grant, same candidate");
    assert!(!conn.vote(5, 2, 0, 0), "one vote per term");
    worker.shutdown();

    // Kill + restart on the same state file, with a huge grace: the
    // restored vote record is authoritative (no grace needed), and the
    // term-5 vote stays spent — candidate 2 cannot collect a second one
    // and complete a two-leaders-in-term-5 split.
    let mut worker =
        WorkerServer::start("127.0.0.1:0", cfg(60_000, Some(path.clone()))).expect("restart");
    let mut conn = Conn::open(&worker.local_addr().to_string());
    assert!(
        !conn.vote(5, 2, 0, 0),
        "restored state must remember the term-5 vote"
    );
    assert!(
        conn.vote(5, 1, 0, 0),
        "...but re-grants to the same candidate"
    );
    assert!(
        conn.vote(6, 2, 0, 0),
        "a genuinely new term gets a new vote"
    );
    worker.shutdown();

    // A corrupted state file restores nothing — the worker falls back to
    // the grace and refuses, rather than voting on garbage.
    let mut bytes = std::fs::read(&path).expect("state file");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("corrupt state file");
    let mut worker = WorkerServer::start("127.0.0.1:0", cfg(60_000, Some(path))).expect("start");
    let mut conn = Conn::open(&worker.local_addr().to_string());
    assert!(!conn.vote(7, 1, 0, 0), "corrupt state ⇒ grace applies");
    worker.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn settled_terms_are_not_electable() {
    let mut worker = WorkerServer::start("127.0.0.1:0", cfg(0, None)).expect("start");
    let mut conn = Conn::open(&worker.local_addr().to_string());

    // A term-7 leader heartbeats: term 7 (and everything below) is
    // settled — a second term-7 leader would share its fencing epoch.
    let hb = conn.round_trip(&ClusterRequest::Heartbeat {
        term: 7,
        epoch: 7,
        commit: 0,
    });
    assert!(matches!(hb, ClusterResponse::HeartbeatAck { .. }), "{hb:?}");
    assert!(!conn.vote(7, 1, 0, 0), "term with an observed leader");
    assert!(!conn.vote(6, 1, 0, 0), "older term, trivially");
    assert!(conn.vote(8, 1, 0, 0), "the next term is fair game");
    worker.shutdown();
}

#[test]
fn election_restriction_compares_term_then_length() {
    let mut worker = WorkerServer::start("127.0.0.1:0", cfg(0, None)).expect("start");
    let mut conn = Conn::open(&worker.local_addr().to_string());

    // The term-3 leader advertises commit 10: ten entries are
    // acknowledged, and the newest of them carries term 3.
    let hb = conn.round_trip(&ClusterRequest::Heartbeat {
        term: 3,
        epoch: 3,
        commit: 10,
    });
    assert!(matches!(hb, ClusterResponse::HeartbeatAck { .. }), "{hb:?}");

    // Candidacies are all for later terms (3 itself is settled); what
    // varies is the candidate's *log* — its last entry's (term, index).
    assert!(
        !conn.vote(4, 1, 10, 2),
        "same length, older last term: a divergent ex-leader log"
    );
    assert!(!conn.vote(5, 1, 9, 3), "right term but short of the commit");
    assert!(
        conn.vote(6, 1, 10, 3),
        "exactly the committed (term, length) is enough"
    );
    assert!(
        conn.vote(7, 2, 1, 4),
        "a higher last term wins regardless of length"
    );
    worker.shutdown();
}
