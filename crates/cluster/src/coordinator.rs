//! The replicated coordinator node.
//!
//! Every coordinator process runs the same loop; at any moment one of
//! them **leads** — it builds the engine over a [`RemoteBackend`], serves
//! clients through an embedded `pargrid-net` server, and replicates each
//! acknowledged mutation to every online standby *before* the client's
//! ack. Standbys run a thin listener that answers `NotLeader{hint}`
//! redirects, mirror the metadata log into their own [`GridFile`], and
//! watch the leader's `MetaAppend` heartbeats; when those stop, the
//! election ([`crate::election::Election`]) picks a successor, whose term
//! becomes the new **fencing epoch** — its engine joins the workers at
//! that epoch, which atomically invalidates every frame the deposed
//! leader might still send.
//!
//! Lock order (deadlock discipline): `el` → `repl` → `gf` → `lead`,
//! never backwards; the mutation gate takes each lock alone, in
//! sequence, and all network I/O (vote solicitation, replication) runs
//! either lock-free or under `repl` only.
//!
//! What failover preserves and what it gives up (`DESIGN.md` §15):
//! read-your-write survives one coordinator failure because an ack
//! implies the entry is in every online standby's log, and a candidate
//! with a shorter log than any voter's committed prefix cannot win.
//! `MutationFailed` in cluster mode means *indeterminate* — the entry
//! may exist on some standbys — which is why the apply path is an
//! upsert: retrying an indeterminate insert cannot duplicate the record.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use pargrid_geom::Point;
use pargrid_gridfile::GridFile;
use pargrid_net::cluster_proto::{ClusterRequest, ClusterResponse, MetaOp};
use pargrid_net::frame::{read_frame, write_frame, FrameError};
use pargrid_net::proto::{Request, Response, WireError};
use pargrid_net::server::{ClusterHooks, Server, ServerConfig};
use pargrid_obs::{names, PromWriter};
use pargrid_parallel::ParallelGridFile;

use crate::backend::RemoteBackend;
use crate::election::{Election, Role};
use crate::meta::MetaLog;

/// Ticker cadence.
const TICK_MS: u64 = 10;
/// Replication round-trip / vote solicitation read timeout.
const PEER_IO_TIMEOUT_MS: u64 = 250;
/// Consecutive failed replication rounds before a standby is considered
/// offline (mutations stop waiting for it).
const OFFLINE_STRIKES: u32 = 5;

/// Another coordinator, as this node sees it.
#[derive(Clone, Debug)]
pub struct PeerSpec {
    /// The peer's node id.
    pub id: u32,
    /// Its election/replication listener.
    pub peer_addr: String,
    /// Its client-facing address (the `NotLeader` redirect target).
    pub client_addr: String,
}

/// Tunables for [`Coordinator::start`].
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// This node's id (unique among coordinators).
    pub id: u32,
    /// Client-facing listen address (engine server when leading, thin
    /// redirect listener otherwise).
    pub client_listen: String,
    /// Election/replication listen address.
    pub peer_listen: String,
    /// The *other* coordinators.
    pub peers: Vec<PeerSpec>,
    /// Worker process addresses (engine slots map onto these round-robin).
    pub workers: Vec<String>,
    /// Leader heartbeat / replication cadence, milliseconds.
    pub heartbeat_ms: u64,
    /// Randomized election-timeout range, milliseconds.
    pub election_timeout_ms: (u64, u64),
    /// Worker lease TTL granted on the data plane.
    pub lease_ttl_ms: u32,
    /// Seed for randomized election timeouts.
    pub seed: u64,
    /// Template for the embedded client-facing server.
    pub server: ServerConfig,
}

impl CoordinatorConfig {
    /// Sensible defaults for sub-second failover: 50 ms heartbeats,
    /// 150–300 ms election timeouts.
    pub fn new(id: u32, client_listen: String, peer_listen: String) -> CoordinatorConfig {
        CoordinatorConfig {
            id,
            client_listen,
            peer_listen,
            peers: Vec::new(),
            workers: Vec::new(),
            heartbeat_ms: 50,
            election_timeout_ms: (150, 300),
            lease_ttl_ms: 600,
            seed: 42,
            server: ServerConfig {
                allow_remote_shutdown: true,
                ..ServerConfig::default()
            },
        }
    }
}

/// Builds the engine when this node becomes leader: given the mirror
/// grid file and the epoch-fenced remote backend, decluster and
/// construct the `ParallelGridFile` (the caller chooses method, replica
/// layout, etc.).
pub type EngineBuilder =
    Box<dyn Fn(Arc<GridFile>, Arc<RemoteBackend>) -> Arc<ParallelGridFile> + Send + Sync>;

/// The leading regime: engine + its server + the backend's gauges.
struct Lead {
    server: Server,
    engine: Arc<ParallelGridFile>,
    backend: Arc<RemoteBackend>,
}

/// One standby's replication cursor.
struct PeerRepl {
    acked: u64,
    strikes: u32,
    online: bool,
    /// Whether this standby has answered a replication round during the
    /// current leadership term — i.e. it joined this regime's
    /// replication set. Losing a joined standby forces mutation refusal;
    /// a standby that was already dead at promotion never gates writes
    /// (otherwise a 2-coordinator cluster could never accept a write
    /// after failing over).
    joined_term: bool,
}

/// Replication state: the log plus per-peer cursors.
struct Repl {
    log: MetaLog,
    peers: Vec<PeerRepl>,
    /// Client address of the current leader, for `NotLeader` hints.
    leader_hint: String,
}

impl Repl {
    /// Whether unreplicated commits are permissible: no standby is
    /// configured at all, or none has ever answered a replication round
    /// this term — the regime was promoted over dead peers and runs in
    /// *explicit* degraded mode (observable: the election itself, the
    /// failover counter, the online-standbys gauge). The contrast is a
    /// standby that was replicating and went dark mid-term: there the
    /// leader must refuse rather than silently downgrade acknowledged
    /// writes to zero-replica durability.
    fn replication_waived(&self, no_peers_configured: bool) -> bool {
        no_peers_configured || self.peers.iter().all(|p| !p.joined_term)
    }
}

/// The thin standby listener answering redirects on the client address.
struct Thin {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

struct CoordShared {
    cfg: CoordinatorConfig,
    builder: EngineBuilder,
    gf: Mutex<GridFile>,
    el: Mutex<Election>,
    repl: Mutex<Repl>,
    lead: Mutex<Option<Lead>>,
    thin: Mutex<Option<Thin>>,
    commit_cell: Arc<AtomicU64>,
    failovers: AtomicU64,
    start: Instant,
    shutdown: AtomicBool,
    killed: AtomicBool,
}

impl CoordShared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A running coordinator node.
pub struct Coordinator {
    shared: Arc<CoordShared>,
    ticker: Option<JoinHandle<()>>,
    peer_accept: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Starts the node as a follower. `gf` is the node's initial state —
    /// every coordinator must start from the *same* grid file (same
    /// dataset, same build); the metadata log carries everything that
    /// changes afterwards.
    pub fn start(
        cfg: CoordinatorConfig,
        gf: GridFile,
        builder: EngineBuilder,
    ) -> std::io::Result<Coordinator> {
        let peer_listener = TcpListener::bind(&cfg.peer_listen)?;
        peer_listener.set_nonblocking(true)?;
        let voters = 1 + cfg.peers.len() + cfg.workers.len();
        let el = Election::new(cfg.id, voters, cfg.election_timeout_ms, cfg.seed, 0);
        let n_peers = cfg.peers.len();
        let shared = Arc::new(CoordShared {
            cfg,
            builder,
            gf: Mutex::new(gf),
            el: Mutex::new(el),
            repl: Mutex::new(Repl {
                log: MetaLog::new(),
                peers: (0..n_peers)
                    .map(|_| PeerRepl {
                        acked: 0,
                        strikes: 0,
                        online: true,
                        joined_term: false,
                    })
                    .collect(),
                leader_hint: String::new(),
            }),
            lead: Mutex::new(None),
            thin: Mutex::new(None),
            commit_cell: Arc::new(AtomicU64::new(0)),
            failovers: AtomicU64::new(0),
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            killed: AtomicBool::new(false),
        });
        start_thin(&shared);
        let peer_accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("pargrid-coord-peer".into())
                .spawn(move || peer_accept_loop(peer_listener, shared))
                .expect("spawn coordinator peer thread")
        };
        let ticker = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("pargrid-coord-tick".into())
                .spawn(move || ticker_loop(shared))
                .expect("spawn coordinator ticker thread")
        };
        Ok(Coordinator {
            shared,
            ticker: Some(ticker),
            peer_accept: Some(peer_accept),
        })
    }

    /// Whether this node currently leads.
    pub fn is_leader(&self) -> bool {
        self.shared.el.lock().unwrap().role == Role::Leader
    }

    /// Current election term.
    pub fn term(&self) -> u64 {
        self.shared.el.lock().unwrap().term
    }

    /// Committed metadata-log index.
    pub fn commit(&self) -> u64 {
        self.shared.commit_cell.load(Ordering::Relaxed)
    }

    /// Leadership promotions this node has performed.
    pub fn failovers(&self) -> u64 {
        self.shared.failovers.load(Ordering::Relaxed)
    }

    /// The client-facing address.
    pub fn client_addr(&self) -> &str {
        &self.shared.cfg.client_listen
    }

    /// Simulated `kill -9` for in-process experiments: the node stops
    /// heartbeating, answering peers, and serving clients *now*. Threads
    /// are reaped by the `Drop`/[`Coordinator::shutdown`] that follows —
    /// a real deployment's equivalent is the process dying.
    pub fn kill(&self) {
        self.shared.killed.store(true, Ordering::SeqCst);
        stop_thin(&self.shared);
        if let Some(lead) = self.shared.lead.lock().unwrap().take() {
            let Lead { server, engine, .. } = lead;
            thread::spawn(move || {
                server.request_shutdown();
                let _ = server.join();
                engine.shutdown();
            });
        }
    }

    /// Graceful stop: tears down whichever regime is running and joins
    /// the node's threads.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
        if let Some(h) = self.peer_accept.take() {
            let _ = h.join();
        }
        stop_thin(&self.shared);
        // Take the regime *out* of the lock before joining: the server's
        // final metrics render runs the cluster-gauges hook, which locks
        // `lead` — holding the guard across `join()` would self-deadlock.
        let lead = self.shared.lead.lock().unwrap().take();
        if let Some(lead) = lead {
            lead.server.request_shutdown();
            let _ = lead.server.join();
            lead.engine.shutdown();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------
// Peer plane (election + replication listener)
// ---------------------------------------------------------------------

fn peer_accept_loop(listener: TcpListener, shared: Arc<CoordShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let _ = thread::Builder::new()
                    .name("pargrid-coord-peer-conn".into())
                    .spawn(move || peer_conn_loop(stream, shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn peer_conn_loop(stream: TcpStream, shared: Arc<CoordShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || shared.killed.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(FrameError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // idle poll so the killed flag is honored
            }
            Err(_) => return,
        };
        // A killed node is silent even for frames already in flight.
        if shared.killed.load(Ordering::SeqCst) {
            return;
        }
        let resp = match ClusterRequest::decode(frame.msg_type, &frame.payload) {
            Ok(req) => handle_peer(&shared, req),
            Err(e) => ClusterResponse::ClusterErr(format!("bad request: {e}")),
        };
        let (t, p) = resp.encode();
        if write_frame(&mut writer, t, &p).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

fn handle_peer(shared: &Arc<CoordShared>, req: ClusterRequest) -> ClusterResponse {
    let now = shared.now_ms();
    match req {
        ClusterRequest::VoteRequest {
            term,
            candidate,
            log_len,
            last_log_term,
        } => {
            let mut el = shared.el.lock().unwrap();
            // Election restriction, coordinator edition: the candidate's
            // log must be at least as up-to-date as ours, compared as
            // `(last entry term, length)` — Raft's rule. Length alone is
            // not enough: a partitioned ex-leader keeps entries whose
            // replication failed, so its log can tie ours on length
            // while diverging in content; its older last-entry term is
            // what gives it away.
            let log_ok = {
                let repl = shared.repl.lock().unwrap();
                crate::election::log_up_to_date(
                    last_log_term,
                    log_len,
                    repl.log.last_term(),
                    repl.log.len(),
                )
            };
            let granted = el.grant_vote(term, candidate, log_ok, now);
            ClusterResponse::VoteReply {
                term: el.term,
                granted,
            }
        }
        ClusterRequest::MetaAppend {
            term,
            leader,
            commit,
            start_index,
            ops,
        } => {
            let mut el = shared.el.lock().unwrap();
            if !el.on_leader_message(term, now) {
                let log_len = shared.repl.lock().unwrap().log.len();
                return ClusterResponse::MetaAck {
                    term: el.term,
                    ok: false,
                    log_len,
                };
            }
            let my_term = el.term;
            drop(el);
            let mut repl = shared.repl.lock().unwrap();
            let ok = repl.log.install(term, start_index, &ops);
            if ok {
                let len = repl.log.len();
                let new_commit = repl.log.commit.max(commit.min(len));
                repl.log.commit = new_commit;
                shared.commit_cell.store(new_commit, Ordering::Relaxed);
                let mut gf = shared.gf.lock().unwrap();
                repl.log.apply_to(&mut gf, new_commit);
            }
            if let Some(p) = shared.cfg.peers.iter().find(|p| p.id == leader) {
                repl.leader_hint = p.client_addr.clone();
            }
            ClusterResponse::MetaAck {
                term: my_term,
                ok,
                log_len: repl.log.len(),
            }
        }
        ClusterRequest::Heartbeat { term, .. } => {
            let mut el = shared.el.lock().unwrap();
            el.on_leader_message(term, now);
            ClusterResponse::HeartbeatAck {
                term: el.term,
                epoch: el.term,
            }
        }
        _ => ClusterResponse::ClusterErr("not a coordinator-plane request".into()),
    }
}

// ---------------------------------------------------------------------
// Ticker: elections, heartbeats, replication, commit advancement
// ---------------------------------------------------------------------

fn ticker_loop(shared: Arc<CoordShared>) {
    let mut last_beat = Instant::now();
    let mut round: u64 = 0;
    while !shared.shutdown.load(Ordering::SeqCst) {
        thread::sleep(Duration::from_millis(TICK_MS));
        if shared.killed.load(Ordering::SeqCst) {
            continue; // dead nodes don't tick; join still works
        }
        let now = shared.now_ms();
        let mut el = shared.el.lock().unwrap();
        match el.role {
            Role::Leader => {
                if last_beat.elapsed() >= Duration::from_millis(shared.cfg.heartbeat_ms) {
                    last_beat = Instant::now();
                    round += 1;
                    let deposed = replicate_round(&shared, el.term, el.id, round);
                    if deposed {
                        // A standby is ahead of us: step down and tear
                        // the regime down outside the el lock.
                        let term = el.term;
                        el.on_leader_message(term + 1, now);
                        drop(el);
                        demote(&shared);
                        continue;
                    }
                }
            }
            _ => {
                // A node that lost leadership through a vote grant still
                // holds a live regime; retire it before electioneering.
                if shared.lead.lock().unwrap().is_some() {
                    drop(el);
                    demote(&shared);
                    continue;
                }
                if el.tick(now) {
                    let term = el.term;
                    drop(el);
                    run_election(&shared, term);
                }
            }
        }
    }
}

/// Solicits votes for `term` from every peer coordinator and worker;
/// promotes on quorum.
fn run_election(shared: &Arc<CoordShared>, term: u64) {
    let (log_len, last_log_term) = {
        let repl = shared.repl.lock().unwrap();
        (repl.log.len(), repl.log.last_term())
    };
    let req = ClusterRequest::VoteRequest {
        term,
        candidate: shared.cfg.id,
        log_len,
        last_log_term,
    };
    let mut won = false;
    {
        let addrs: Vec<String> = shared
            .cfg
            .peers
            .iter()
            .map(|p| p.peer_addr.clone())
            .chain(shared.cfg.workers.iter().cloned())
            .collect();
        let mut el = shared.el.lock().unwrap();
        for addr in addrs {
            if el.role != Role::Candidate || el.term != term {
                return; // deposed mid-election
            }
            drop(el);
            let vote = quick_round_trip(&addr, &req);
            el = shared.el.lock().unwrap();
            if let Ok(ClusterResponse::VoteReply {
                term: vterm,
                granted,
            }) = vote
            {
                if el.on_vote(vterm, granted) {
                    el.become_leader();
                    won = true;
                    break;
                }
            }
        }
    }
    if won {
        promote(shared, term);
    }
}

/// One replication/heartbeat round to every standby. Returns `true` if a
/// standby answered from a higher term (we are deposed).
///
/// Offline standbys are only probed every 8th round: each probe of a
/// dead host can eat a full connect/read timeout, and paying that on
/// every heartbeat would starve the *live* followers of appends long
/// enough to trigger spurious elections.
fn replicate_round(shared: &Arc<CoordShared>, term: u64, id: u32, round: u64) -> bool {
    let mut repl = shared.repl.lock().unwrap();
    let len = repl.log.len();
    let commit = repl.log.commit;
    for (i, peer) in shared.cfg.peers.iter().enumerate() {
        if !repl.peers[i].online && !round.is_multiple_of(8) {
            continue;
        }
        let start = repl.peers[i].acked + 1;
        let ops = repl.log.from_index(start);
        let req = ClusterRequest::MetaAppend {
            term,
            leader: id,
            commit,
            start_index: start,
            ops,
        };
        match quick_round_trip(&peer.peer_addr, &req) {
            Ok(ClusterResponse::MetaAck {
                term: t,
                ok,
                log_len,
            }) => {
                if t > term {
                    return true;
                }
                let p = &mut repl.peers[i];
                p.strikes = 0;
                p.online = true;
                p.joined_term = true;
                p.acked = if ok { log_len } else { log_len.min(len) };
            }
            _ => {
                let p = &mut repl.peers[i];
                p.strikes += 1;
                if p.strikes >= OFFLINE_STRIKES {
                    p.online = false;
                }
            }
        }
    }
    let waived = repl.replication_waived(shared.cfg.peers.is_empty());
    let new_commit = advance_commit(&mut repl, waived, len);
    shared.commit_cell.store(new_commit, Ordering::Relaxed);
    // Keep the leader's own mirror warm so a future demotion resumes
    // from a consistent cursor.
    let mut gf = shared.gf.lock().unwrap();
    repl.log.apply_to(&mut gf, new_commit);
    false
}

/// Advances the commit index to the lowest ack among *online* standbys.
/// With every standby offline the commit must NOT advance — `min()` over
/// an empty set is no evidence at all, and treating it as `len` would
/// ack writes held by zero replicas (lost on the next leader death).
/// Only when replication is waived (no standbys configured, or none ever
/// joined this regime — see [`Repl::replication_waived`]) does the
/// leader commit on its own log.
fn advance_commit(repl: &mut Repl, waived: bool, len: u64) -> u64 {
    let min_acked = repl
        .peers
        .iter()
        .filter(|p| p.online)
        .map(|p| p.acked)
        .min();
    let new_commit = match min_acked {
        Some(m) => repl.log.commit.max(m.min(len)),
        None if waived => repl.log.commit.max(len),
        None => repl.log.commit,
    };
    repl.log.commit = new_commit;
    new_commit
}

// ---------------------------------------------------------------------
// Regime changes
// ---------------------------------------------------------------------

/// Becomes leader of `term`: apply the full log, build the engine over
/// the fenced remote backend, swap the thin listener for the real
/// server.
fn promote(shared: &Arc<CoordShared>, term: u64) {
    shared.failovers.fetch_add(1, Ordering::Relaxed);
    stop_thin(shared);
    let gf_snapshot = {
        let mut repl = shared.repl.lock().unwrap();
        // Stamp the new regime onto the log (Raft's leader no-op): the
        // log now *ends* at this term, so the `(last term, length)`
        // election restriction immediately distinguishes logs that
        // followed this leader from any divergent same-length log a
        // deposed predecessor kept.
        repl.log.append(term, MetaOp::Noop);
        // Apply everything in the log — committed prefix *and* tail. The
        // unanimous-ack rule guarantees every acknowledged mutation is
        // here; unacknowledged tail entries are indeterminate and safe
        // to apply because applies are upserts. The commit index is NOT
        // advanced here: advertising `len` as committed before a single
        // standby holds this log would poison the workers' vote guard —
        // if this leader died pre-replication, no surviving log could
        // ever satisfy `(commit_term, commit_seen)` and the cluster
        // would stall unelectable. The first replication round (next
        // heartbeat, or the first gated mutation) advances it instead.
        let len = repl.log.len();
        for p in repl.peers.iter_mut() {
            p.acked = 0;
            p.strikes = 0;
            p.online = true;
            // A new term starts with an empty replication set: each
            // standby re-joins by answering its first round. One that
            // never does (it is the dead ex-leader) never gates writes.
            p.joined_term = false;
        }
        repl.leader_hint = shared.cfg.client_listen.clone();
        let mut gf = shared.gf.lock().unwrap();
        repl.log.apply_to(&mut gf, len);
        Arc::new(gf.clone())
    };
    let backend = Arc::new(
        RemoteBackend::new(shared.cfg.workers.clone(), term)
            .with_commit_cell(Arc::clone(&shared.commit_cell))
            .with_heartbeat(shared.cfg.heartbeat_ms.max(20) * 2, shared.cfg.lease_ttl_ms),
    );
    let engine = (shared.builder)(gf_snapshot, Arc::clone(&backend));
    let weak = Arc::downgrade(shared);
    let hooks = ClusterHooks {
        mutation_gate: Arc::new({
            let weak = weak.clone();
            move |op| mutation_gate(&weak, op)
        }),
        extra_metrics: Arc::new(move |pw| {
            if let Some(shared) = weak.upgrade() {
                cluster_gauges(&shared, pw);
            }
        }),
    };
    let mut server_cfg = shared.cfg.server.clone();
    server_cfg.cluster = Some(hooks);
    // The thin listener just released this address; give the kernel a
    // few chances to finish the handoff.
    let mut server = None;
    for _ in 0..50 {
        match Server::start(
            Arc::clone(&engine),
            &shared.cfg.client_listen,
            server_cfg.clone(),
        ) {
            Ok(s) => {
                server = Some(s);
                break;
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
    let Some(server) = server else {
        // Could not bind: surrender leadership (the next timeout
        // re-elects; possibly us, after the port frees up).
        engine.shutdown();
        let now = shared.now_ms();
        shared.el.lock().unwrap().on_leader_message(term, now);
        start_thin(shared);
        return;
    };
    *shared.lead.lock().unwrap() = Some(Lead {
        server,
        engine,
        backend,
    });
}

/// Retires a deposed leader's regime and resumes standby duty.
fn demote(shared: &Arc<CoordShared>) {
    // Move the regime out of the lock before joining — the server's final
    // metrics render runs the cluster-gauges hook, which locks `lead`.
    let lead = shared.lead.lock().unwrap().take();
    if let Some(lead) = lead {
        lead.server.request_shutdown();
        let _ = lead.server.join();
        lead.engine.shutdown();
    }
    start_thin(shared);
}

/// The leader-side mutation gate (runs on the server's dispatcher
/// threads): append to the log, replicate to every online standby, only
/// then let the engine apply. For inserts, clear any stale copy first so
/// retried-indeterminate mutations stay exactly-once.
fn mutation_gate(weak: &Weak<CoordShared>, op: &MetaOp) -> Result<(), WireError> {
    let Some(shared) = weak.upgrade() else {
        return Err(WireError::NotLeader {
            hint: String::new(),
        });
    };
    if shared.killed.load(Ordering::SeqCst) {
        return Err(WireError::NotLeader {
            hint: String::new(),
        });
    }
    let term = {
        let el = shared.el.lock().unwrap();
        if el.role != Role::Leader {
            let hint = shared.repl.lock().unwrap().leader_hint.clone();
            return Err(WireError::NotLeader { hint });
        }
        el.term
    };
    let engine = shared
        .lead
        .lock()
        .unwrap()
        .as_ref()
        .map(|l| Arc::clone(&l.engine));
    {
        let mut repl = shared.repl.lock().unwrap();
        // A regime that *had* a live standby must never ack a write held
        // by zero replicas: if every joined standby is struck offline,
        // refuse (cleanly — nothing appended, the client can retry
        // later) rather than silently degrading to unreplicated
        // durability. The ticker's probe rounds bring recovered standbys
        // back online. A regime whose standbys were already dead at
        // promotion (the post-failover survivor) is waived: its degraded
        // mode began with an observable election, not a silent blip.
        if !repl.replication_waived(shared.cfg.peers.is_empty())
            && repl.peers.iter().all(|p| !p.online)
        {
            return Err(WireError::MutationFailed(
                "no online standby to replicate to; refusing unreplicated write".into(),
            ));
        }
        repl.log.append(term, op.clone());
        let len = repl.log.len();
        for (i, peer) in shared.cfg.peers.iter().enumerate() {
            if !repl.peers[i].online {
                continue;
            }
            let start = repl.peers[i].acked + 1;
            let ops = repl.log.from_index(start);
            let req = ClusterRequest::MetaAppend {
                term,
                leader: shared.cfg.id,
                commit: repl.log.commit,
                start_index: start,
                ops,
            };
            match quick_round_trip(&peer.peer_addr, &req) {
                Ok(ClusterResponse::MetaAck { term: t, .. }) if t > term => {
                    let hint = repl.leader_hint.clone();
                    return Err(WireError::NotLeader { hint });
                }
                Ok(ClusterResponse::MetaAck {
                    ok: true, log_len, ..
                }) => {
                    repl.peers[i].acked = log_len;
                    repl.peers[i].joined_term = true;
                }
                _ => {
                    repl.peers[i].strikes += 1;
                    if repl.peers[i].strikes >= OFFLINE_STRIKES {
                        repl.peers[i].online = false;
                    }
                    return Err(WireError::MutationFailed(
                        "replication to a standby failed; outcome indeterminate".into(),
                    ));
                }
            }
        }
        let waived = repl.replication_waived(shared.cfg.peers.is_empty());
        let new_commit = advance_commit(&mut repl, waived, len);
        shared.commit_cell.store(new_commit, Ordering::Relaxed);
    }
    if let (Some(engine), MetaOp::Insert { id, key }) = (engine, op) {
        // Upsert: clear any copy a previous indeterminate attempt left.
        let _ = engine.delete(*id, &Point::new(key));
    }
    Ok(())
}

/// Cluster gauges appended to the leader's metrics document.
fn cluster_gauges(shared: &Arc<CoordShared>, pw: &mut PromWriter) {
    let (term, leading) = {
        let el = shared.el.lock().unwrap();
        (el.term, el.role == Role::Leader)
    };
    pw.gauge(
        names::CLUSTER_LEADER_TERM,
        "Current election term (== fencing epoch when leading).",
        term as f64,
    );
    pw.gauge(
        names::CLUSTER_IS_LEADER,
        "1 if this coordinator currently leads.",
        if leading { 1.0 } else { 0.0 },
    );
    pw.counter(
        names::CLUSTER_FAILOVERS_TOTAL,
        "Leadership promotions performed by this process.",
        shared.failovers.load(Ordering::Relaxed),
    );
    pw.gauge(
        names::CLUSTER_COMMIT_INDEX,
        "Highest committed metadata-log index.",
        shared.commit_cell.load(Ordering::Relaxed) as f64,
    );
    let online = {
        let repl = shared.repl.lock().unwrap();
        repl.peers.iter().filter(|p| p.online).count()
    };
    pw.gauge(
        names::CLUSTER_ONLINE_STANDBYS,
        "Standby coordinators currently online in the replication set.",
        online as f64,
    );
    // `try_lock`, not `lock`: a scrape racing a demotion/shutdown (which
    // holds `lead` briefly while taking the regime) must not deadlock the
    // metrics path — it just skips the per-worker gauges that scrape.
    let Ok(lead) = shared.lead.try_lock() else {
        return;
    };
    if let Some(lead) = lead.as_ref() {
        pw.gauge(
            names::CLUSTER_LEASE_EPOCH,
            "Epoch of the most recent worker lease grant.",
            lead.backend.lease_epoch() as f64,
        );
        pw.gauge_per_label(
            names::NET_WORKER_ALIVE,
            "Worker-process liveness as seen by the remote backend.",
            "worker",
            &lead.backend.alive_gauges(),
        );
    }
}

// ---------------------------------------------------------------------
// Thin standby listener: NotLeader redirects on the client address
// ---------------------------------------------------------------------

fn start_thin(shared: &Arc<CoordShared>) {
    let mut slot = shared.thin.lock().unwrap();
    if slot.is_some() {
        return;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = Arc::clone(&stop);
        let shared = Arc::clone(shared);
        thread::Builder::new()
            .name("pargrid-coord-thin".into())
            .spawn(move || {
                // The engine server may still be releasing the address.
                // Retry inside the thread, without a cap: a standby that
                // gives up here has no client-facing listener at all, so
                // clients would see connection refused instead of
                // `NotLeader` redirects until the next regime change.
                loop {
                    if stop.load(Ordering::SeqCst)
                        || shared.shutdown.load(Ordering::SeqCst)
                        || shared.killed.load(Ordering::SeqCst)
                    {
                        return;
                    }
                    match TcpListener::bind(&shared.cfg.client_listen) {
                        Ok(listener) => {
                            let _ = listener.set_nonblocking(true);
                            return thin_accept_loop(listener, shared, stop);
                        }
                        Err(_) => thread::sleep(Duration::from_millis(20)),
                    }
                }
            })
            .expect("spawn thin listener thread")
    };
    *slot = Some(Thin { stop, handle });
}

fn stop_thin(shared: &Arc<CoordShared>) {
    if let Some(thin) = shared.thin.lock().unwrap().take() {
        thin.stop.store(true, Ordering::SeqCst);
        let _ = thin.handle.join();
    }
}

fn thin_accept_loop(listener: TcpListener, shared: Arc<CoordShared>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst)
        && !shared.shutdown.load(Ordering::SeqCst)
        && !shared.killed.load(Ordering::SeqCst)
    {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                let _ = thread::Builder::new()
                    .name("pargrid-coord-thin-conn".into())
                    .spawn(move || thin_conn_loop(stream, shared, stop));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn thin_conn_loop(stream: TcpStream, shared: Arc<CoordShared>, stop: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        if stop.load(Ordering::SeqCst)
            || shared.shutdown.load(Ordering::SeqCst)
            || shared.killed.load(Ordering::SeqCst)
        {
            return;
        }
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(FrameError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        let resp = match Request::decode(frame.msg_type, &frame.payload) {
            Ok(Request::Ping { token }) => Response::Pong { token },
            Ok(Request::Stats) => {
                let mut pw = PromWriter::new();
                cluster_gauges(&shared, &mut pw);
                Response::StatsText(pw.finish())
            }
            Ok(_) => Response::Error(WireError::NotLeader {
                hint: shared.repl.lock().unwrap().leader_hint.clone(),
            }),
            Err(e) => Response::Error(WireError::Malformed(e.to_string())),
        };
        let (t, p) = resp.encode();
        if write_frame(&mut writer, t, &p).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------

/// One connect + frame round-trip with a short timeout; any failure is
/// collapsed into `Err(())` (the caller treats it as a strike).
///
/// The *connect* is bounded too, not just the read: this runs under the
/// `repl` mutex from the mutation gate and the heartbeat round, so a
/// blackholed peer (SYN dropped, no RST) must cost one short timeout —
/// not the OS's multi-second connect default, which would stall every
/// client mutation and leader heartbeat long enough to trigger
/// cascading spurious elections.
fn quick_round_trip(addr: &str, req: &ClusterRequest) -> Result<ClusterResponse, ()> {
    use std::net::ToSocketAddrs;
    let timeout = Duration::from_millis(PEER_IO_TIMEOUT_MS);
    let sock_addr = addr.to_socket_addrs().map_err(|_| ())?.next().ok_or(())?;
    let stream = TcpStream::connect_timeout(&sock_addr, timeout).map_err(|_| ())?;
    stream.set_nodelay(true).map_err(|_| ())?;
    stream.set_read_timeout(Some(timeout)).map_err(|_| ())?;
    stream.set_write_timeout(Some(timeout)).map_err(|_| ())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|_| ())?);
    let mut writer = BufWriter::new(stream);
    let (t, p) = req.encode();
    write_frame(&mut writer, t, &p).map_err(|_| ())?;
    writer.flush().map_err(|_| ())?;
    let frame = read_frame(&mut reader).map_err(|_| ())?;
    ClusterResponse::decode(frame.msg_type, &frame.payload).map_err(|_| ())
}
