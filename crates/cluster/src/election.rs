//! Leader election as a pure state machine: injected clock, seeded
//! randomized timeouts, no I/O — the coordinator's ticker drives it and
//! tests can single-step it deterministically.
//!
//! The protocol is the familiar term/vote/heartbeat shape: a follower
//! whose election timer expires becomes a candidate in `term + 1`, votes
//! for itself, and solicits votes from every *voter* — the other
//! coordinators **and every worker process**. Workers voting is what
//! keeps the common 2-coordinator deployment available: after the leader
//! dies, the standby can still assemble a majority of (coordinators +
//! workers). A candidate that sees a higher term, or a heartbeat from a
//! leader at its own term, steps down. The winning term becomes the
//! cluster's **fencing epoch**.

use rand::{Rng, SeedableRng};

/// A node's current election role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Deferring to a leader (or waiting for a timeout).
    Follower,
    /// Soliciting votes for `term`.
    Candidate,
    /// Won `term`; serving clients and heartbeating.
    Leader,
}

/// The pure election state machine. All transitions take `now_ms` from
/// the caller; nothing in here reads a clock or a socket.
#[derive(Debug)]
pub struct Election {
    /// This node's id.
    pub id: u32,
    /// Current term (== fencing epoch when leading).
    pub term: u64,
    /// Current role.
    pub role: Role,
    /// Total voters in the cluster: coordinators + voting workers.
    voters: usize,
    /// `(term, candidate)` this node last granted its own vote to.
    voted: Option<(u64, u32)>,
    /// Votes gathered as a candidate (self included).
    votes: usize,
    /// When the current election timeout expires.
    deadline_ms: u64,
    /// Randomized timeout range.
    timeout_ms: (u64, u64),
    rng: rand::rngs::StdRng,
}

impl Election {
    /// Creates a follower with a randomized first deadline. `voters` is
    /// the total electorate size (this node included).
    pub fn new(id: u32, voters: usize, timeout_ms: (u64, u64), seed: u64, now_ms: u64) -> Election {
        let mut el = Election {
            id,
            term: 0,
            role: Role::Follower,
            voters: voters.max(1),
            voted: None,
            votes: 0,
            deadline_ms: 0,
            timeout_ms,
            rng: rand::rngs::StdRng::seed_from_u64(seed ^ u64::from(id).wrapping_mul(0x9e3779b9)),
        };
        el.reset_deadline(now_ms);
        el
    }

    /// Votes needed to win: a strict majority of the electorate.
    pub fn quorum(&self) -> usize {
        self.voters / 2 + 1
    }

    fn reset_deadline(&mut self, now_ms: u64) {
        let (lo, hi) = self.timeout_ms;
        self.deadline_ms = now_ms + self.rng.random_range(lo..hi.max(lo + 1));
    }

    /// Ticks the timer. Returns `true` when the node should start (or
    /// restart) an election: it has already bumped its term, voted for
    /// itself, and become a candidate — the caller solicits the votes.
    pub fn tick(&mut self, now_ms: u64) -> bool {
        if self.role == Role::Leader || now_ms < self.deadline_ms {
            return false;
        }
        self.term += 1;
        self.role = Role::Candidate;
        self.voted = Some((self.term, self.id));
        self.votes = 1; // self
        self.reset_deadline(now_ms);
        true
    }

    /// A vote came back. Returns `true` when this vote wins the election
    /// (the caller promotes to leader via [`Election::become_leader`]).
    pub fn on_vote(&mut self, term: u64, granted: bool) -> bool {
        if self.role != Role::Candidate || term != self.term {
            if term > self.term {
                self.step_down(term);
            }
            return false;
        }
        if granted {
            self.votes += 1;
        }
        self.votes >= self.quorum()
    }

    /// Marks this node leader of its current term.
    pub fn become_leader(&mut self) {
        self.role = Role::Leader;
    }

    /// A heartbeat/append arrived from `term`'s leader. Returns whether
    /// the message should be accepted (it is from the current or a newer
    /// term). Accepting defers: candidate/leader step down, the election
    /// timer resets.
    pub fn on_leader_message(&mut self, term: u64, now_ms: u64) -> bool {
        if term < self.term {
            return false;
        }
        if term > self.term || self.role != Role::Follower {
            self.step_down(term);
        }
        self.reset_deadline(now_ms);
        true
    }

    /// Another node asks for this node's vote. One vote per term,
    /// idempotent for the same candidate; `log_ok` is the caller's
    /// election-restriction check (candidate log at least as complete as
    /// ours).
    pub fn grant_vote(&mut self, term: u64, candidate: u32, log_ok: bool, now_ms: u64) -> bool {
        if term > self.term {
            self.step_down(term);
        }
        if term < self.term || !log_ok {
            return false;
        }
        let granted = match self.voted {
            Some((t, c)) => t < term || (t == term && c == candidate),
            None => true,
        };
        if granted {
            self.voted = Some((term, candidate));
            self.reset_deadline(now_ms);
        }
        granted
    }

    fn step_down(&mut self, term: u64) {
        self.term = self.term.max(term);
        self.role = Role::Follower;
        self.votes = 0;
    }
}

/// The Raft election restriction: is a candidate log whose last entry is
/// `(cand_last_term, cand_len)` at least as up-to-date as a reference
/// log ending at `(ref_last_term, ref_len)`? Compared lexicographically
/// — terms first, length only on a tie — so a divergent same-length log
/// left behind by a deposed leader (whose entries carry its older term)
/// can never outvote the regime that superseded it. Bare length vs
/// commit is *not* enough for exactly that case.
pub fn log_up_to_date(
    cand_last_term: u64,
    cand_len: u64,
    ref_last_term: u64,
    ref_len: u64,
) -> bool {
    cand_last_term > ref_last_term || (cand_last_term == ref_last_term && cand_len >= ref_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_elects_with_quorum() {
        // 2 coordinators + 3 workers = 5 voters, quorum 3.
        let mut el = Election::new(1, 5, (150, 300), 7, 0);
        assert_eq!(el.quorum(), 3);
        assert!(!el.tick(100));
        assert!(el.tick(400), "deadline must have expired by 400ms");
        assert_eq!(el.role, Role::Candidate);
        assert_eq!(el.term, 1);
        assert!(!el.on_vote(1, true), "2 of 3 needed votes");
        assert!(el.on_vote(1, true), "3rd vote wins");
        el.become_leader();
        assert_eq!(el.role, Role::Leader);
        assert!(!el.tick(10_000), "leaders don't time out");
    }

    #[test]
    fn higher_term_heartbeat_deposes() {
        let mut el = Election::new(1, 3, (150, 300), 7, 0);
        assert!(el.tick(500));
        assert!(el.on_vote(1, true));
        el.become_leader();
        assert!(el.on_leader_message(2, 600));
        assert_eq!(el.role, Role::Follower);
        assert_eq!(el.term, 2);
        assert!(!el.on_leader_message(1, 700), "stale leader refused");
    }

    #[test]
    fn up_to_date_is_term_then_length() {
        // Same term: longer (or equal) wins.
        assert!(log_up_to_date(3, 10, 3, 10));
        assert!(log_up_to_date(3, 11, 3, 10));
        assert!(!log_up_to_date(3, 9, 3, 10));
        // Higher last term wins regardless of length — a newer regime's
        // log beats a longer stale one.
        assert!(log_up_to_date(4, 1, 3, 100));
        // The deposed-leader case: same length, older term — refused.
        assert!(!log_up_to_date(2, 10, 3, 10));
        // Empty logs (term 0) on both sides.
        assert!(log_up_to_date(0, 0, 0, 0));
    }

    #[test]
    fn one_vote_per_term() {
        let mut el = Election::new(0, 3, (150, 300), 7, 0);
        assert!(el.grant_vote(3, 1, true, 10));
        assert!(el.grant_vote(3, 1, true, 20), "idempotent re-grant");
        assert!(!el.grant_vote(3, 2, true, 30), "no second candidate");
        assert!(el.grant_vote(4, 2, true, 40), "new term, new vote");
        assert!(!el.grant_vote(5, 2, false, 50), "short log refused");
    }
}
