//! `pargrid-cluster`: the scale-out runtime — one replicated coordinator,
//! `M` worker *processes*, all speaking the worker/election plane of
//! `pargrid-net` over real TCP.
//!
//! The paper's SP-2 ran one coordinator and `P` workers as an SPMD
//! program; `pargrid-parallel` reproduces that with threads in one
//! process. This crate stretches the same architecture across process —
//! and machine — boundaries while keeping the engine itself unchanged:
//!
//! * [`worker::WorkerServer`] — a standalone worker process. Owns block
//!   pages uploaded by its coordinator, services dispatches through the
//!   exact same `WorkerState` code path as an in-process worker thread
//!   (same elevator batches, same dedup window, same virtual disks), and
//!   participates as a *voter* in coordinator elections.
//! * [`backend::RemoteBackend`] — a [`pargrid_parallel::WorkerBackend`]
//!   whose "worker threads" are proxies speaking TCP to worker
//!   processes. The engine cannot tell the difference: sequence numbers,
//!   dedup, retransmits, replica failover, and hedged reads all work
//!   unchanged, and a worker whose process dies looks exactly like the
//!   fail-stop faults the engine already tolerates.
//! * [`coordinator::Coordinator`] — a coordinator node. At any moment one
//!   node leads (serves clients through an embedded `pargrid-net`
//!   server); standbys mirror every acknowledged mutation through a
//!   replicated metadata log ([`meta::MetaLog`]) *before* the client sees
//!   the ack, answer clients with `NotLeader` redirects, and take over
//!   via leader election ([`election::Election`]) when the leader's
//!   heartbeats stop. The election term doubles as a **fencing epoch**:
//!   workers reject every frame from a deposed leader.
//! * [`client::ClusterClient`] — a client that knows every coordinator
//!   address, follows `NotLeader` redirects, and retries across failover
//!   so callers see a single logical service.
//!
//! Consistency contract (see `DESIGN.md` §15 for the full argument):
//! reads and writes are served only by the leader; a mutation is
//! acknowledged only after every *online* standby has the corresponding
//! log entry; a standby only wins an election if its log is at least as
//! long as any voter's committed prefix. Together: a client that
//! received an ack reads its own write across a single coordinator
//! failure, and a deposed leader can neither serve stale reads past its
//! lease nor slip writes past the fence.

#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod coordinator;
pub mod election;
pub mod meta;
pub mod worker;

pub use backend::RemoteBackend;
pub use client::{ClusterClient, ClusterClientError};
pub use coordinator::{Coordinator, CoordinatorConfig, PeerSpec};
pub use election::{Election, Role};
pub use meta::MetaLog;
pub use worker::{ChaosDrop, WorkerConfig, WorkerServer};

/// The crate's most commonly used types, flat.
pub mod prelude {
    pub use crate::backend::RemoteBackend;
    pub use crate::client::{ClusterClient, ClusterClientError};
    pub use crate::coordinator::{Coordinator, CoordinatorConfig, PeerSpec};
    pub use crate::worker::{ChaosDrop, WorkerConfig, WorkerServer};
}
