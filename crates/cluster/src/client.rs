//! A cluster-aware client: wraps the blocking [`pargrid_net::Client`]
//! with leader discovery and failover retry.
//!
//! The caller hands it every coordinator's client address. Each
//! operation walks a simple loop until a bounded deadline: try the
//! current connection; on a `NotLeader{hint}` redirect follow the hint
//! (or rotate to the next coordinator when the hint is empty — a
//! follower that has not yet heard from any leader); on a socket or
//! framing error drop the connection, rotate, and sleep a short
//! jittered backoff so a thundering herd of clients does not retry in
//! lockstep against a coordinator that is mid-election.
//!
//! Retrying mutations is safe here even though a failover can make an
//! acknowledged-on-the-wire outcome *indeterminate*: cluster inserts
//! are upserts and deletes are idempotent (`DESIGN.md` §15), so an
//! at-least-once client cannot duplicate or resurrect records.

use std::fmt;
use std::thread;
use std::time::{Duration, Instant};

use pargrid_net::client::{Client, ClientError};
use pargrid_net::proto::{MutationAck, RecordsReply, WireError};

/// Default per-operation deadline.
const DEFAULT_DEADLINE_MS: u64 = 10_000;
/// Base sleep between failed attempts (jittered ×1..×3).
const RETRY_BASE_MS: u64 = 15;

/// Why a cluster operation ultimately gave up.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClusterClientError {
    /// The per-operation deadline expired; carries the last underlying
    /// failure observed.
    Deadline(String),
    /// A coordinator answered with a typed error that retrying cannot
    /// fix (malformed request, unsupported operation, …).
    Server(WireError),
}

impl fmt::Display for ClusterClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterClientError::Deadline(last) => {
                write!(f, "cluster operation deadline expired (last error: {last})")
            }
            ClusterClientError::Server(e) => write!(f, "cluster server error: {e}"),
        }
    }
}

impl std::error::Error for ClusterClientError {}

/// A client that tracks the cluster's leader across failovers.
pub struct ClusterClient {
    /// Every coordinator's client-facing address.
    addrs: Vec<String>,
    /// Index of the coordinator currently believed to lead.
    current: usize,
    conn: Option<Client>,
    deadline: Duration,
    /// Cheap xorshift state for retry jitter.
    rng: u64,
}

impl ClusterClient {
    /// Creates a client over the given coordinator addresses. No
    /// connection is made until the first operation.
    pub fn new(addrs: Vec<String>) -> ClusterClient {
        assert!(!addrs.is_empty(), "at least one coordinator address");
        let seed = addrs
            .iter()
            .flat_map(|a| a.bytes())
            .fold(0xcafe_f00d_u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
            });
        ClusterClient {
            addrs,
            current: 0,
            conn: None,
            deadline: Duration::from_millis(DEFAULT_DEADLINE_MS),
            rng: seed | 1,
        }
    }

    /// Overrides the per-operation deadline (default 10 s).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// The address of the coordinator the client currently talks to.
    pub fn current_addr(&self) -> &str {
        &self.addrs[self.current]
    }

    fn rotate(&mut self) {
        self.conn = None;
        self.current = (self.current + 1) % self.addrs.len();
    }

    /// Follows a `NotLeader` hint: switch to the hinted address if we
    /// know it, otherwise just rotate.
    fn follow_hint(&mut self, hint: &str) {
        self.conn = None;
        if let Some(i) = self.addrs.iter().position(|a| a == hint) {
            self.current = i;
        } else if !hint.is_empty() {
            // A leader outside the configured set (e.g. config drift):
            // still follow it.
            self.addrs.push(hint.to_string());
            self.current = self.addrs.len() - 1;
        } else {
            self.rotate();
        }
    }

    fn backoff(&mut self) {
        // xorshift64
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        let jitter = 1 + (x % 3);
        thread::sleep(Duration::from_millis(RETRY_BASE_MS * jitter));
    }

    /// Runs `op` against the leader, re-resolving it as needed, until
    /// success or the deadline.
    fn with_leader<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClusterClientError> {
        let start = Instant::now();
        let mut last = String::from("no attempt made");
        while start.elapsed() < self.deadline {
            if self.conn.is_none() {
                match Client::connect(self.current_addr()) {
                    Ok(c) => self.conn = Some(c),
                    Err(e) => {
                        last = format!("connect {}: {e}", self.current_addr());
                        self.rotate();
                        self.backoff();
                        continue;
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connection just established");
            match op(conn) {
                Ok(v) => return Ok(v),
                Err(ClientError::Server(WireError::NotLeader { hint })) => {
                    last = format!("redirected (hint: {hint:?})");
                    self.follow_hint(&hint);
                    self.backoff();
                }
                Err(ClientError::Server(WireError::MutationFailed(m))) => {
                    // Indeterminate under replication; retrying is safe
                    // because cluster mutations are upserts/idempotent.
                    last = format!("mutation indeterminate: {m}");
                    self.conn = None;
                    self.backoff();
                }
                Err(ClientError::Server(WireError::Overloaded { retry_after_ms })) => {
                    last = "overloaded".to_string();
                    thread::sleep(Duration::from_millis(u64::from(retry_after_ms).max(1)));
                }
                Err(ClientError::Server(e)) => return Err(ClusterClientError::Server(e)),
                Err(e) => {
                    // Socket/framing/decode failure: the coordinator may
                    // have just died. Rotate and keep trying.
                    last = e.to_string();
                    self.rotate();
                    self.backoff();
                }
            }
        }
        Err(ClusterClientError::Deadline(last))
    }

    /// Range query against the current leader.
    pub fn range_query(
        &mut self,
        lo: &[f64],
        hi: &[f64],
    ) -> Result<RecordsReply, ClusterClientError> {
        self.with_leader(|c| c.range_query(lo, hi))
    }

    /// Partial-match query against the current leader.
    pub fn partial_match(
        &mut self,
        keys: &[Option<f64>],
    ) -> Result<RecordsReply, ClusterClientError> {
        let keys = keys.to_vec();
        self.with_leader(move |c| c.partial_match(&keys))
    }

    /// Insert (cluster semantics: upsert) through the leader.
    pub fn insert(&mut self, id: u64, key: &[f64]) -> Result<MutationAck, ClusterClientError> {
        self.with_leader(|c| c.insert(id, key))
    }

    /// Delete through the leader.
    pub fn delete(&mut self, id: u64, key: &[f64]) -> Result<MutationAck, ClusterClientError> {
        self.with_leader(|c| c.delete(id, key))
    }

    /// Pings whichever coordinator the client currently talks to (thin
    /// followers answer pings too — this does not prove leadership).
    pub fn ping(&mut self, token: u64) -> Result<u64, ClusterClientError> {
        self.with_leader(|c| c.ping(token))
    }

    /// Fetches the Prometheus stats document from the current target.
    pub fn stats(&mut self) -> Result<String, ClusterClientError> {
        self.with_leader(|c| c.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_following_prefers_known_addresses() {
        let mut c = ClusterClient::new(vec!["a:1".into(), "b:2".into()]);
        assert_eq!(c.current_addr(), "a:1");
        c.follow_hint("b:2");
        assert_eq!(c.current_addr(), "b:2");
        c.follow_hint(""); // empty hint rotates
        assert_eq!(c.current_addr(), "a:1");
        c.follow_hint("c:3"); // unknown leader is adopted
        assert_eq!(c.current_addr(), "c:3");
    }
}
