//! The standalone worker process: `pargrid worker --listen ADDR`.
//!
//! A worker server is the over-the-wire twin of an engine worker thread.
//! It holds one [`WorkerState`] per engine slot (a process can host
//! several slots), built from pages its coordinator uploads with
//! `WriteBlocks`, and services `Dispatch` frames through the *same*
//! `service_dispatch` path an in-process worker uses — same elevator
//! pass, same virtual disks, same seen-seq dedup window.
//!
//! Three behaviors distinguish it from a thread:
//!
//! * **Epoch fencing.** Every data-plane frame carries the issuing
//!   leader's epoch. A frame below the worker's current epoch is answered
//!   `Fenced` — a deposed coordinator cannot read or write anything here.
//!   A join at a *higher* epoch resets the slot (store, dedup window,
//!   reply cache): the new leader re-uploads its view of the data.
//! * **Reply cache.** Retransmitted dispatches (same seq) are answered
//!   from a bounded cache of encoded replies instead of being
//!   re-executed, so a proxy that lost a connection mid-round-trip can
//!   resend safely — the answer comes back once-computed, byte-identical.
//! * **Voting.** Workers vote in coordinator elections (one vote per
//!   term, refusing candidates whose log would lose committed writes),
//!   which keeps a two-coordinator cluster electable after it loses one.
//!   Because a vote is a durable promise, the voting state survives the
//!   process: with a `state_path` configured the worker persists its
//!   term/vote/epoch/commit record to disk *before* a granted vote
//!   leaves the socket, and a restarted worker reloads it; without one,
//!   a freshly started worker sits out elections for a grace period
//!   longer than any election timeout, so a kill + restart mid-election
//!   cannot produce a second vote in the same term (two same-term
//!   leaders would carry the same fencing epoch — unfenceable).

use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use pargrid_net::cluster_proto::{ClusterRequest, ClusterResponse, WireReply};
use pargrid_net::frame::{read_frame, write_frame, FrameError};
use pargrid_parallel::disk::DiskParams;
use pargrid_parallel::message::QueryPriority;
use pargrid_parallel::worker::WorkerState;
use pargrid_parallel::BlockStore;

/// Deterministic inbound-frame dropper: a programmable network partition.
/// Each received frame is silently discarded with probability `rate`
/// (the sender sees a read timeout, exactly like a lossy link), decided
/// by a seeded xorshift so chaos runs reproduce.
#[derive(Clone, Copy, Debug)]
pub struct ChaosDrop {
    /// RNG seed.
    pub seed: u64,
    /// Drop probability in `[0, 1)`.
    pub rate: f64,
}

/// Tunables for [`WorkerServer::start`].
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Virtual disks per hosted slot (the paper's SP-2 had 7 per node).
    pub disks: usize,
    /// Virtual disk cost model.
    pub disk_params: DiskParams,
    /// Optional partition injection.
    pub chaos: Option<ChaosDrop>,
    /// How long a freshly started worker refuses to vote when it has no
    /// persisted voter state: any election in flight when a previous
    /// incarnation died has either concluded or moved to a later term by
    /// the time the grace expires, so the lost in-memory vote record
    /// cannot be double-spent. Must exceed the coordinators' maximum
    /// election timeout (default 300 ms); ignored when state was
    /// restored from `state_path`.
    pub vote_grace_ms: u64,
    /// Voter-state file: term, vote, fencing epoch, and commit watermark
    /// are persisted here *before* a granted vote is sent, and reloaded
    /// on start, so a killed-and-restarted worker can neither vote twice
    /// in one term nor accept a deposed leader's frames at epoch 0.
    /// `None` (the default) keeps the worker stateless and relies on the
    /// vote grace alone.
    pub state_path: Option<PathBuf>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            disks: 1,
            disk_params: DiskParams::default(),
            chaos: None,
            vote_grace_ms: 750,
            state_path: None,
        }
    }
}

/// One hosted engine slot: the worker state plus the retransmit
/// reply cache.
struct Slot {
    state: WorkerState,
    /// Encoded replies by seq, FIFO-evicted at the dedup-window size, so
    /// a retransmit is answered byte-identically without re-execution.
    replies: HashMap<u64, ClusterResponse>,
    reply_order: std::collections::VecDeque<u64>,
    reply_cap: usize,
}

/// Mutable cluster-facing state shared by all connections.
struct Plane {
    /// Slots hosted by this process, keyed by engine slot index.
    slots: HashMap<u32, Slot>,
    /// Current fencing epoch: the highest epoch seen in a join or lease.
    /// Data-plane frames below it are answered `Fenced`.
    epoch: u64,
    /// Highest election term seen, and the term we last voted in (one
    /// vote per term).
    term: u64,
    voted: Option<(u64, u32)>,
    /// Highest committed log index any leader has advertised, and the
    /// term of the leader that advertised it. Candidates whose
    /// `(last_log_term, log_len)` is lexicographically behind this pair
    /// are refused — bare length is not enough, because a deposed
    /// leader's divergent log can tie on length while its entries carry
    /// an older term.
    commit_seen: u64,
    commit_term: u64,
    /// Highest term at which this worker has observed an *active* leader
    /// (heartbeat, join, or lease). Elections at or below it are already
    /// decided, so votes there are refused outright: a restarted worker
    /// whose in-memory vote record died with it cannot help elect a
    /// second leader into a settled term.
    leader_term_seen: u64,
}

struct Shared {
    cfg: WorkerConfig,
    plane: Mutex<Plane>,
    shutdown: AtomicBool,
    /// Dispatches actually executed (cache answers excluded) — what the
    /// reconnect-dedup test asserts on.
    executed: AtomicU64,
    /// Dispatches answered from the reply cache.
    deduped: AtomicU64,
    /// Connection counter: gives each connection its own chaos stream.
    conn_seq: AtomicU64,
    /// When the server started — the vote-grace clock.
    started: Instant,
    /// Whether voter state was restored from `state_path` (a restored
    /// worker is informed and votes without waiting out the grace).
    restored: bool,
}

/// A running worker server. [`WorkerServer::shutdown`] (or dropping the
/// process) stops it; coordinators treat an unreachable worker like a
/// fail-stop engine worker.
pub struct WorkerServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl WorkerServer {
    /// Binds `addr` and starts serving the worker plane.
    pub fn start(addr: impl ToSocketAddrs, cfg: WorkerConfig) -> std::io::Result<WorkerServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let mut plane = Plane {
            slots: HashMap::new(),
            epoch: 0,
            term: 0,
            voted: None,
            commit_seen: 0,
            commit_term: 0,
            leader_term_seen: 0,
        };
        let restored = match &cfg.state_path {
            Some(path) => load_state(path, &mut plane),
            None => false,
        };
        let shared = Arc::new(Shared {
            cfg,
            plane: Mutex::new(plane),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
            started: Instant::now(),
            restored,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("pargrid-worker-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn worker accept thread")
        };
        Ok(WorkerServer {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Dispatches executed for real (retransmits answered from the reply
    /// cache are *not* counted here — see [`WorkerServer::deduped`]).
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Dispatches answered from the reply cache (retransmit dedups).
    pub fn deduped(&self) -> u64 {
        self.shared.deduped.load(Ordering::Relaxed)
    }

    /// The worker's current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.plane.lock().unwrap().epoch
    }

    /// Stops accepting and joins the accept thread. Live per-connection
    /// threads die when their peers disconnect (or at process exit) —
    /// the in-process tests always drop the coordinator side first.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Simulates `kill -9` for in-process chaos runs: the server stops
    /// accepting *and* existing connections stop being answered, without
    /// any goodbye to peers.
    pub fn kill(&mut self) {
        self.shutdown();
    }
}

impl Drop for WorkerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let _ = thread::Builder::new()
                    .name("pargrid-worker-conn".into())
                    .spawn(move || conn_loop(stream, shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn conn_loop(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // A dropped inbound frame must look like silence, not a closed
    // connection: the reader keeps the stream open and simply never
    // answers, so the proxy's read times out (a partition, not a crash).
    //
    // The seed is splitmix-mixed with a per-connection counter: raw
    // xorshift from a small seed emits a tiny first value, which would
    // deterministically drop the *first frame of every connection* —
    // a total partition instead of a lossy link.
    let mut chaos_rng = shared.cfg.chaos.map(|c| {
        splitmix(
            c.seed
                ^ shared
                    .conn_seq
                    .fetch_add(1, Ordering::Relaxed)
                    .wrapping_mul(0x9e37),
        ) | 1
    });
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    // The slot this connection joined; data-plane frames are routed to it
    // (each proxy opens one connection per engine slot).
    let mut bound_slot: Option<u32> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(FrameError::Closed) => return,
            Err(FrameError::Io(_)) => return,
            Err(_) => {
                // Malformed frame: answer typed and keep the connection.
                let (t, p) = ClusterResponse::ClusterErr("malformed frame".into()).encode();
                if write_frame(&mut writer, t, &p).is_err() {
                    return;
                }
                use std::io::Write;
                let _ = writer.flush();
                continue;
            }
        };
        // Re-check after the (blocking) read: a killed worker is silent
        // even for frames that were already in flight.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let (Some(chaos), Some(rng)) = (shared.cfg.chaos, chaos_rng.as_mut()) {
            if chaos.rate > 0.0 && (xorshift(rng) >> 11) as f64 / ((1u64 << 53) as f64) < chaos.rate
            {
                continue; // dropped on the (virtual) floor
            }
        }
        let resp = match ClusterRequest::decode(frame.msg_type, &frame.payload) {
            Ok(req) => handle(&shared, req, &mut bound_slot),
            Err(e) => ClusterResponse::ClusterErr(format!("bad request: {e}")),
        };
        let (t, p) = resp.encode();
        if write_frame(&mut writer, t, &p).is_err() {
            return;
        }
        use std::io::Write;
        if writer.flush().is_err() {
            return;
        }
    }
}

fn handle(
    shared: &Arc<Shared>,
    req: ClusterRequest,
    bound_slot: &mut Option<u32>,
) -> ClusterResponse {
    let mut plane = shared.plane.lock().unwrap();
    match req {
        ClusterRequest::WorkerJoin {
            slot,
            epoch,
            payload_bytes,
            seen_seq_window,
        } => {
            if epoch < plane.epoch {
                return ClusterResponse::Fenced { epoch: plane.epoch };
            }
            if epoch > plane.epoch {
                // New regime: every slot's pages and dedup state belong
                // to the old leader's upload; drop them all. Only a
                // leader joins, and its epoch is its term, so this is
                // also leader-observation evidence for the vote guard.
                plane.slots.clear();
                plane.epoch = epoch;
                plane.leader_term_seen = plane.leader_term_seen.max(epoch);
                plane.term = plane.term.max(epoch);
                persist(shared, &plane);
            }
            let cfg = &shared.cfg;
            let cur_epoch = plane.epoch;
            let entry = plane.slots.entry(slot).or_insert_with(|| Slot {
                state: WorkerState::with_disks(
                    slot as usize,
                    payload_bytes as usize,
                    cfg.disk_params,
                    BlockStore::memory(),
                    cfg.disks.max(1),
                )
                .with_seen_seq_window(seen_seq_window.max(1) as usize),
                replies: HashMap::new(),
                reply_order: std::collections::VecDeque::new(),
                reply_cap: seen_seq_window.max(1) as usize,
            });
            *bound_slot = Some(slot);
            ClusterResponse::Welcome {
                slot,
                epoch: cur_epoch,
                blocks_held: entry.state.store.len() as u32,
            }
        }
        ClusterRequest::Dispatch {
            epoch,
            query_id,
            seq,
            priority,
            rect,
            blocks,
        } => {
            if epoch < plane.epoch {
                return ClusterResponse::Fenced { epoch: plane.epoch };
            }
            let Some(slot) = bound_slot.and_then(|id| plane.slots.get_mut(&id)) else {
                return ClusterResponse::ClusterErr("no slot joined".into());
            };
            if let Some(cached) = slot.replies.get(&seq) {
                shared.deduped.fetch_add(1, Ordering::Relaxed);
                return cached.clone();
            }
            let prio = if priority == 0 {
                QueryPriority::Interactive
            } else {
                QueryPriority::Batch
            };
            let Some(reply) = slot
                .state
                .service_dispatch(query_id, seq, &blocks, &rect, prio)
            else {
                // Seen seq but evicted from the reply cache: the proxy
                // retransmitted something ancient. Refuse loudly rather
                // than re-executing.
                return ClusterResponse::ClusterErr(format!("seq {seq} already serviced"));
            };
            shared.executed.fetch_add(1, Ordering::Relaxed);
            let resp = ClusterResponse::WorkerReply(WireReply {
                query_id: reply.query_id,
                seq: reply.seq,
                worker: reply.worker_id as u32,
                blocks_requested: reply.blocks_requested,
                cache_hits: reply.cache_hits,
                disk_us: reply.disk_us,
                cpu_us: reply.cpu_us,
                corrupt_blocks: reply.corrupt_blocks,
                error: reply.error,
                records: reply.records,
            });
            slot.replies.insert(seq, resp.clone());
            slot.reply_order.push_back(seq);
            while slot.reply_order.len() > slot.reply_cap {
                if let Some(old) = slot.reply_order.pop_front() {
                    slot.replies.remove(&old);
                }
            }
            resp
        }
        ClusterRequest::WriteBlocks { epoch, blocks } => {
            if epoch < plane.epoch {
                return ClusterResponse::Fenced { epoch: plane.epoch };
            }
            let Some(slot) = bound_slot.and_then(|id| plane.slots.get_mut(&id)) else {
                return ClusterResponse::ClusterErr("no slot joined".into());
            };
            let written = blocks.len() as u32;
            slot.state.write_raw_blocks(blocks);
            ClusterResponse::BlocksAck {
                epoch: plane.epoch,
                written,
            }
        }
        ClusterRequest::FetchBlocks { epoch, blocks } => {
            if epoch < plane.epoch {
                return ClusterResponse::Fenced { epoch: plane.epoch };
            }
            let Some(slot) = bound_slot.and_then(|id| plane.slots.get(&id)) else {
                return ClusterResponse::ClusterErr("no slot joined".into());
            };
            let raw = slot.state.fetch_raw_blocks(&blocks);
            ClusterResponse::RawBlocks {
                worker: raw.worker_id as u32,
                blocks: raw.blocks,
            }
        }
        ClusterRequest::Heartbeat {
            term,
            epoch,
            commit,
        } => {
            // Heartbeats come from the active leader's proxies; record
            // the evidence (term, epoch, commit watermark) the vote
            // guard compares candidates against. A leader always stamps
            // its own no-op before advertising a commit it advanced, so
            // the advertising term IS the term of the entry at the
            // commit index.
            let mut changed = false;
            if term > plane.term {
                plane.term = term;
                changed = true;
            }
            if term > plane.leader_term_seen {
                plane.leader_term_seen = term;
                changed = true;
            }
            if commit > plane.commit_seen {
                plane.commit_seen = commit;
                plane.commit_term = term;
                changed = true;
            }
            if epoch > plane.epoch {
                plane.epoch = epoch;
                changed = true;
            }
            if changed {
                // Best-effort: a lost heartbeat watermark only makes a
                // restarted worker more permissive as a voter, never
                // able to double-vote (the vote record itself is always
                // persisted before a grant leaves).
                persist(shared, &plane);
            }
            ClusterResponse::HeartbeatAck {
                term: plane.term,
                epoch: plane.epoch,
            }
        }
        ClusterRequest::LeaseGrant { epoch, ttl_ms: _ } => {
            if epoch < plane.epoch {
                return ClusterResponse::Fenced { epoch: plane.epoch };
            }
            if epoch > plane.epoch || epoch > plane.leader_term_seen {
                plane.epoch = epoch;
                plane.leader_term_seen = plane.leader_term_seen.max(epoch);
                plane.term = plane.term.max(epoch);
                persist(shared, &plane);
            }
            ClusterResponse::LeaseAck {
                granted: true,
                epoch: plane.epoch,
            }
        }
        ClusterRequest::VoteRequest {
            term,
            candidate,
            log_len,
            last_log_term,
        } => {
            if term > plane.term {
                plane.term = term;
                // New term: the old vote is void.
            }
            // A stateless worker that just started must sit out any
            // election that may have been in flight when a previous
            // incarnation died: the grace outlasts every candidacy, so
            // its lost vote record can no longer be paired with a fresh
            // one in the same term. Restored state carries the actual
            // vote record, so no grace is needed.
            let informed = shared.restored
                || shared.started.elapsed() >= Duration::from_millis(shared.cfg.vote_grace_ms);
            // Election restriction, worker edition: the candidate's
            // `(last entry term, length)` must not be behind the newest
            // commit any leader has shown us.
            let log_ok = crate::election::log_up_to_date(
                last_log_term,
                log_len,
                plane.commit_term,
                plane.commit_seen,
            );
            let granted = informed
                && term == plane.term
                // Terms with an observed leader are settled; a second
                // term-T leader would share term-T's fencing epoch.
                && term > plane.leader_term_seen
                && log_ok
                && match plane.voted {
                    Some((t, c)) => t < term || (t == term && c == candidate),
                    None => true,
                };
            // A vote is a durable promise: record it, and refuse the
            // grant if the record cannot be made durable before the
            // reply leaves the socket.
            let granted = granted && {
                plane.voted = Some((term, candidate));
                persist(shared, &plane)
            };
            ClusterResponse::VoteReply {
                term: plane.term,
                granted,
            }
        }
        ClusterRequest::MetaAppend { term, .. } => {
            // Workers don't mirror the metadata log; only coordinators do.
            ClusterResponse::MetaAck {
                term,
                ok: false,
                log_len: 0,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Voter-state persistence
// ---------------------------------------------------------------------

const STATE_MAGIC: [u8; 4] = *b"PGVS";
const STATE_VERSION: u16 = 1;
/// magic + version + 5×u64 + vote flag + vote (u64 term, u32 candidate)
/// + crc32.
const STATE_LEN: usize = 4 + 2 + 5 * 8 + 1 + 8 + 4 + 4;

fn encode_state(plane: &Plane) -> Vec<u8> {
    let mut b = Vec::with_capacity(STATE_LEN);
    b.extend_from_slice(&STATE_MAGIC);
    b.extend_from_slice(&STATE_VERSION.to_le_bytes());
    for v in [
        plane.epoch,
        plane.term,
        plane.leader_term_seen,
        plane.commit_seen,
        plane.commit_term,
    ] {
        b.extend_from_slice(&v.to_le_bytes());
    }
    match plane.voted {
        Some((t, c)) => {
            b.push(1);
            b.extend_from_slice(&t.to_le_bytes());
            b.extend_from_slice(&c.to_le_bytes());
        }
        None => {
            b.push(0);
            b.extend_from_slice(&0u64.to_le_bytes());
            b.extend_from_slice(&0u32.to_le_bytes());
        }
    }
    let crc = pargrid_gridfile::crc32(&b);
    b.extend_from_slice(&crc.to_le_bytes());
    b
}

/// Durably writes the voter state: tmp file, fsync, rename — a crash
/// mid-write leaves the previous state intact, never a torn one.
fn save_state(path: &Path, plane: &Plane) -> std::io::Result<()> {
    use std::io::Write as _;
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&encode_state(plane))?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Loads persisted voter state into `plane`; returns whether anything
/// valid was restored. A missing, short, corrupt, or version-skewed
/// file restores nothing (the caller then falls back to the vote grace).
fn load_state(path: &Path, plane: &mut Plane) -> bool {
    let Ok(b) = std::fs::read(path) else {
        return false;
    };
    if b.len() != STATE_LEN || b[0..4] != STATE_MAGIC {
        return false;
    }
    if u16::from_le_bytes([b[4], b[5]]) != STATE_VERSION {
        return false;
    }
    let body = &b[..STATE_LEN - 4];
    let crc = u32::from_le_bytes(b[STATE_LEN - 4..].try_into().expect("crc slice"));
    if pargrid_gridfile::crc32(body) != crc {
        return false;
    }
    let u64_at = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().expect("u64 slice"));
    plane.epoch = u64_at(6);
    plane.term = u64_at(14);
    plane.leader_term_seen = u64_at(22);
    plane.commit_seen = u64_at(30);
    plane.commit_term = u64_at(38);
    plane.voted = if b[46] == 1 {
        Some((
            u64_at(47),
            u32::from_le_bytes(b[55..59].try_into().expect("u32 slice")),
        ))
    } else {
        None
    };
    true
}

/// Persists the plane if a state path is configured; `true` means the
/// state is durable (or persistence is not configured and the caller's
/// fallback protection applies).
fn persist(shared: &Shared, plane: &Plane) -> bool {
    match &shared.cfg.state_path {
        Some(path) => save_state(path, plane).is_ok(),
        None => true,
    }
}

/// SplitMix64 finalizer: turns a structured seed into a well-mixed state.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}
