//! The replicated metadata log: the oplog of acknowledged mutations (and
//! rebalance epochs) that standby coordinators mirror so a failover
//! cannot lose a write the client saw acknowledged.
//!
//! Entries are 1-based and strictly consecutive. The leader appends an
//! entry and replicates it to every online standby *before* the client's
//! ack; the commit index (highest entry known held by all online
//! standbys) rides on the next append. Followers apply committed entries
//! to their mirror [`GridFile`] eagerly; a freshly promoted leader
//! applies its *entire* log — committed prefix and tail — because the
//! unanimous-ack rule guarantees every acknowledged mutation is in it.

use pargrid_geom::Point;
use pargrid_gridfile::{GridFile, Record};
use pargrid_net::cluster_proto::MetaOp;

/// One appended operation with the term that appended it.
#[derive(Clone, Debug, PartialEq)]
pub struct MetaEntry {
    /// Leader term at append time.
    pub term: u64,
    /// The operation.
    pub op: MetaOp,
}

/// An append-only metadata log plus apply/commit cursors.
#[derive(Debug, Default)]
pub struct MetaLog {
    entries: Vec<MetaEntry>,
    /// Highest index known replicated to every online standby.
    pub commit: u64,
    /// Highest index already applied to the local mirror.
    pub applied: u64,
    /// Rebalance epoch carried by the log (mirrors the live engine's).
    pub rebalance_epoch: u64,
}

impl MetaLog {
    /// Empty log.
    pub fn new() -> MetaLog {
        MetaLog::default()
    }

    /// Log length (== index of the last entry; indices are 1-based).
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Whether the log has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends one op at the tail; returns its (1-based) index.
    pub fn append(&mut self, term: u64, op: MetaOp) -> u64 {
        self.entries.push(MetaEntry { term, op });
        self.len()
    }

    /// Term of the last entry (0 when the log is empty) — one half of
    /// the `(last_term, len)` pair the election restriction compares.
    pub fn last_term(&self) -> u64 {
        self.entries.last().map_or(0, |e| e.term)
    }

    /// Entries from `start` (1-based) to the tail, for replication.
    pub fn from_index(&self, start: u64) -> Vec<MetaOp> {
        if start == 0 || start > self.len() {
            return Vec::new();
        }
        self.entries[(start - 1) as usize..]
            .iter()
            .map(|e| e.op.clone())
            .collect()
    }

    /// Follower-side append: accepts `ops` at `start_index` if that
    /// position is within or immediately after the current log, refuses
    /// gaps. Returns whether the ops were installed.
    ///
    /// The applied prefix is never rewritten — it holds only committed
    /// entries, which are identical on every node (unanimous ack + the
    /// election restriction), so any overlap there is a retransmit and
    /// is skipped. Everything *beyond* the applied cursor is the
    /// leader's to dictate: a stale uncommitted tail left behind by a
    /// deposed leader is truncated and overwritten, which is exactly how
    /// a rejoining old leader converges onto the new regime's log.
    pub fn install(&mut self, term: u64, start_index: u64, ops: &[MetaOp]) -> bool {
        if start_index == 0 || start_index > self.len() + 1 {
            return false;
        }
        let (start_index, ops) = if start_index <= self.applied {
            let skip = (self.applied - start_index + 1) as usize;
            if skip > ops.len() {
                // The sender claims its log ends *below* our applied
                // cursor — impossible for a legitimate current-term
                // leader (the election restriction guarantees its log
                // covers every voter's committed prefix). Refuse to
                // touch the applied prefix.
                return true;
            }
            (self.applied + 1, &ops[skip..])
        } else {
            (start_index, ops)
        };
        self.entries.truncate((start_index - 1) as usize);
        for op in ops {
            self.entries.push(MetaEntry {
                term,
                op: op.clone(),
            });
        }
        true
    }

    /// Applies entries `applied + 1 ..= upto` to the mirror grid file.
    /// Idempotent per cursor; `upto` is clamped to the log length.
    pub fn apply_to(&mut self, gf: &mut GridFile, upto: u64) {
        let upto = upto.min(self.len());
        while self.applied < upto {
            let e = &self.entries[self.applied as usize];
            match &e.op {
                MetaOp::Noop => {}
                MetaOp::Insert { id, key } => {
                    // Upsert: a client that never saw its ack may retry
                    // the same insert after a failover; applying the
                    // retried entry must not duplicate the record.
                    let p = Point::new(key);
                    gf.delete(*id, &p);
                    gf.insert(Record::new(*id, p));
                }
                MetaOp::Delete { id, key } => {
                    gf.delete(*id, &Point::new(key));
                }
                MetaOp::Rebalance { epoch } => {
                    self.rebalance_epoch = self.rebalance_epoch.max(*epoch);
                }
            }
            self.applied += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_geom::Rect;
    use pargrid_gridfile::GridConfig;

    fn tiny_grid() -> GridFile {
        let mut gf = GridFile::new(GridConfig::new(Rect::new2(0.0, 0.0, 100.0, 100.0), 0));
        for i in 0..10u64 {
            gf.insert(Record::new(i, Point::new2(i as f64, i as f64)));
        }
        gf
    }

    #[test]
    fn apply_mirrors_mutations() {
        let mut gf = tiny_grid();
        let mut log = MetaLog::new();
        log.append(
            1,
            MetaOp::Insert {
                id: 100,
                key: vec![3.5, 4.5],
            },
        );
        log.append(
            1,
            MetaOp::Delete {
                id: 0,
                key: vec![0.0, 0.0],
            },
        );
        log.apply_to(&mut gf, 1);
        assert_eq!(gf.len(), 11);
        assert_eq!(log.applied, 1);
        log.apply_to(&mut gf, 2);
        assert_eq!(gf.len(), 10);
        // Re-applying is a no-op.
        log.apply_to(&mut gf, 2);
        assert_eq!(gf.len(), 10);
    }

    #[test]
    fn install_refuses_gaps_and_overwrites_stale_tails() {
        let mut log = MetaLog::new();
        assert!(log.install(1, 1, &[MetaOp::Noop, MetaOp::Noop]));
        assert!(!log.install(1, 5, &[MetaOp::Noop]), "gap");
        assert!(log.install(1, 3, &[MetaOp::Noop]));
        assert_eq!(log.len(), 3);
        log.applied = 2;
        log.commit = 2;
        // A new leader re-sending from index 1: the applied prefix is
        // skipped, the uncommitted tail (entry 3) is overwritten — and a
        // shorter leader log truncates the stale tail entirely.
        assert!(log.install(
            2,
            1,
            &[MetaOp::Noop, MetaOp::Noop, MetaOp::Rebalance { epoch: 7 }]
        ));
        assert_eq!(log.len(), 3);
        assert_eq!(
            log.from_index(3),
            vec![MetaOp::Rebalance { epoch: 7 }],
            "stale tail replaced by the new leader's entry"
        );
        assert!(log.install(2, 1, &[MetaOp::Noop, MetaOp::Noop]));
        assert_eq!(log.len(), 2, "leader's shorter log clips the tail");
        // An empty retransmit of the applied prefix leaves the log alone.
        log.install(2, 3, &[MetaOp::Rebalance { epoch: 8 }]);
        assert!(log.install(2, 1, &[MetaOp::Noop]));
        assert_eq!(log.len(), 3);
    }
}
