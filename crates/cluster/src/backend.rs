//! [`RemoteBackend`]: a [`WorkerBackend`] whose workers live in other
//! processes.
//!
//! For each engine slot the backend spawns a **proxy thread** instead of
//! a worker thread. The proxy keeps the slot's [`WorkerState`] as a local
//! mirror (it is already populated by the engine build), joins its worker
//! process at the leader's epoch, uploads the mirror's pages, and then
//! forwards the engine's `ToWorker` traffic over TCP:
//!
//! * `Process` → one `Dispatch` round-trip per request, converting the
//!   `WireReply` back into the `FromWorker` the session is waiting on;
//! * `FetchRaw`/`WriteRaw` → `FetchBlocks`/`WriteBlocks` (raw writes are
//!   also applied to the local mirror so a reconnect re-uploads current
//!   bytes);
//! * idle → heartbeats and lease renewals on a timer.
//!
//! The engine's PR 4 machinery is reused verbatim: dispatch seqs are the
//! engine's, a lost connection is handled by reconnect + retransmit of
//! the *same* seq (the worker's reply cache answers duplicates), and a
//! worker that stays unreachable past the retry budget is marked `dead`
//! exactly like an in-process fail-stop fault — replica failover, strike
//! detection, and hedged reads all engage unchanged. A `Fenced` answer
//! means this whole engine belongs to a deposed leader: the proxy marks
//! its worker dead immediately and stops talking.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;
use pargrid_net::cluster_proto::{ClusterRequest, ClusterResponse};
use pargrid_net::frame::{read_frame, write_frame};
use pargrid_parallel::message::{FromWorker, QueryPriority, RawBlocks, ReadRequest, ToWorker};
use pargrid_parallel::ring::WorkerInbox;
use pargrid_parallel::stats::WorkerCounters;
use pargrid_parallel::worker::WorkerState;
use pargrid_parallel::WorkerBackend;

/// Reconnect attempts before a worker is declared dead (each with
/// jittered exponential backoff; ~2 s worst case at the 30 ms base).
const RECONNECT_ATTEMPTS: u32 = 6;
/// Base reconnect backoff.
const RECONNECT_BASE_MS: u64 = 30;
/// Blocks per `WriteBlocks` upload frame (keeps frames far below the
/// 16 MiB payload cap at the repo's 4–8 KB pages).
const UPLOAD_CHUNK: usize = 512;

/// A [`WorkerBackend`] that proxies each engine slot to a worker process.
#[derive(Debug)]
pub struct RemoteBackend {
    /// Worker process addresses; slot `w` connects to `addrs[w % len]`,
    /// so fewer processes than engine slots is fine (each process hosts
    /// several slots, one connection per slot).
    addrs: Vec<String>,
    /// The issuing leader's fencing epoch (its election term).
    epoch: u64,
    /// Heartbeat/lease-renewal cadence.
    heartbeat_ms: u64,
    /// Lease TTL granted by workers.
    lease_ttl_ms: u32,
    /// Per-request read timeout (also bounds partition detection).
    read_timeout_ms: u64,
    /// Committed metadata-log index, piggybacked on heartbeats (the
    /// coordinator stores; standalone engines leave it at 0).
    commit: Arc<AtomicU64>,
    /// Lease epoch granted most recently by any worker (metrics).
    lease_epoch: Arc<AtomicU64>,
    /// Per-slot liveness flags, in spawn order (metrics).
    alive: Mutex<Vec<(u32, Arc<AtomicBool>)>>,
}

impl RemoteBackend {
    /// Creates a backend dispatching to `addrs` with fencing epoch
    /// `epoch`.
    pub fn new(addrs: Vec<String>, epoch: u64) -> RemoteBackend {
        RemoteBackend {
            addrs,
            epoch,
            heartbeat_ms: 100,
            lease_ttl_ms: 600,
            read_timeout_ms: 1000,
            commit: Arc::new(AtomicU64::new(0)),
            lease_epoch: Arc::new(AtomicU64::new(0)),
            alive: Mutex::new(Vec::new()),
        }
    }

    /// Shares the commit-index cell heartbeats advertise to workers.
    pub fn with_commit_cell(mut self, commit: Arc<AtomicU64>) -> Self {
        self.commit = commit;
        self
    }

    /// Overrides the heartbeat cadence and lease TTL.
    pub fn with_heartbeat(mut self, heartbeat_ms: u64, lease_ttl_ms: u32) -> Self {
        self.heartbeat_ms = heartbeat_ms;
        self.lease_ttl_ms = lease_ttl_ms;
        self
    }

    /// Overrides the per-round-trip read timeout.
    pub fn with_read_timeout_ms(mut self, ms: u64) -> Self {
        self.read_timeout_ms = ms;
        self
    }

    /// The fencing epoch this backend dispatches at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Latest lease epoch granted by a worker (0 before the first grant).
    pub fn lease_epoch(&self) -> u64 {
        self.lease_epoch.load(Ordering::Relaxed)
    }

    /// Per-slot liveness, `(label, 0|1)` pairs for the
    /// `pargrid_net_worker_alive` gauge.
    pub fn alive_gauges(&self) -> Vec<(String, f64)> {
        self.alive
            .lock()
            .unwrap()
            .iter()
            .map(|(slot, flag)| {
                (
                    slot.to_string(),
                    if flag.load(Ordering::Relaxed) {
                        1.0
                    } else {
                        0.0
                    },
                )
            })
            .collect()
    }
}

impl WorkerBackend for RemoteBackend {
    fn spawn_worker(
        &self,
        slot: usize,
        state: WorkerState,
        inbox: WorkerInbox,
        counters: Option<Arc<WorkerCounters>>,
    ) -> JoinHandle<()> {
        let alive = Arc::new(AtomicBool::new(true));
        self.alive
            .lock()
            .unwrap()
            .push((slot as u32, Arc::clone(&alive)));
        let proxy = Proxy {
            slot: slot as u32,
            addr: self.addrs[slot % self.addrs.len()].clone(),
            epoch: self.epoch,
            heartbeat_ms: self.heartbeat_ms,
            lease_ttl_ms: self.lease_ttl_ms,
            read_timeout_ms: self.read_timeout_ms,
            commit: Arc::clone(&self.commit),
            lease_epoch: Arc::clone(&self.lease_epoch),
            alive,
            counters,
            state,
        };
        thread::Builder::new()
            .name(format!("pargrid-proxy-{slot}"))
            .spawn(move || proxy.run(inbox))
            .expect("spawn remote-worker proxy thread")
    }
}

/// One slot's proxy: local mirror + connection state.
struct Proxy {
    slot: u32,
    addr: String,
    epoch: u64,
    heartbeat_ms: u64,
    lease_ttl_ms: u32,
    read_timeout_ms: u64,
    commit: Arc<AtomicU64>,
    lease_epoch: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
    counters: Option<Arc<WorkerCounters>>,
    state: WorkerState,
}

/// A framed connection to a worker process.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

enum RoundTripError {
    /// Connection-level failure: reconnect and retransmit.
    Io,
    /// The worker fenced us — this engine's leader was deposed.
    Fenced,
}

impl Conn {
    fn round_trip(&mut self, req: &ClusterRequest) -> Result<ClusterResponse, RoundTripError> {
        let (t, p) = req.encode();
        write_frame(&mut self.writer, t, &p).map_err(|_| RoundTripError::Io)?;
        self.writer.flush().map_err(|_| RoundTripError::Io)?;
        let frame = read_frame(&mut self.reader).map_err(|_| RoundTripError::Io)?;
        match ClusterResponse::decode(frame.msg_type, &frame.payload) {
            Ok(ClusterResponse::Fenced { .. }) => Err(RoundTripError::Fenced),
            Ok(resp) => Ok(resp),
            Err(_) => Err(RoundTripError::Io),
        }
    }
}

impl Proxy {
    fn run(mut self, inbox: WorkerInbox) {
        let mut conn = match self.establish_with_retry() {
            Ok(c) => c,
            Err(()) => return self.mark_dead(),
        };
        let mut last_beat = Instant::now();
        loop {
            match inbox.try_recv() {
                Some(ToWorker::Process(reqs)) => {
                    for req in reqs {
                        match self.dispatch(&mut conn, &req) {
                            Ok(()) => {}
                            Err(()) => return self.mark_dead(),
                        }
                    }
                }
                Some(ToWorker::FetchRaw { blocks, reply }) => {
                    if self.fetch_raw(&mut conn, blocks, &reply).is_err() {
                        return self.mark_dead();
                    }
                }
                Some(ToWorker::WriteRaw { blocks }) => {
                    // Mirror first: a reconnect must re-upload the
                    // repaired bytes, not the stale ones.
                    self.state.write_raw_blocks(blocks.clone());
                    let req = ClusterRequest::WriteBlocks {
                        epoch: self.epoch,
                        blocks,
                    };
                    if self.retry_round_trip(&mut conn, &req).is_err() {
                        return self.mark_dead();
                    }
                }
                Some(ToWorker::Shutdown) => return,
                None => {
                    if last_beat.elapsed() >= Duration::from_millis(self.heartbeat_ms) {
                        last_beat = Instant::now();
                        if self.heartbeat(&mut conn).is_err() {
                            return self.mark_dead();
                        }
                    }
                    thread::sleep(Duration::from_micros(300));
                }
            }
        }
    }

    fn mark_dead(&self) {
        self.alive.store(false, Ordering::Relaxed);
        if let Some(c) = &self.counters {
            c.dead.store(true, Ordering::Relaxed);
        }
    }

    /// Connects, joins at our epoch, and uploads the mirror if the worker
    /// doesn't already hold it (same-epoch reconnects skip the upload).
    fn establish(&self) -> Result<Conn, RoundTripError> {
        // Bound the connect as well as the read: a blackholed worker
        // (partition, no RST) must cost one read-timeout, not the OS
        // connect default, or dead-worker detection blows its budget.
        use std::net::ToSocketAddrs;
        let timeout = Duration::from_millis(self.read_timeout_ms);
        let sock_addr = self
            .addr
            .to_socket_addrs()
            .map_err(|_| RoundTripError::Io)?
            .next()
            .ok_or(RoundTripError::Io)?;
        let stream =
            TcpStream::connect_timeout(&sock_addr, timeout).map_err(|_| RoundTripError::Io)?;
        stream.set_nodelay(true).map_err(|_| RoundTripError::Io)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|_| RoundTripError::Io)?;
        let reader = BufReader::new(stream.try_clone().map_err(|_| RoundTripError::Io)?);
        let mut conn = Conn {
            reader,
            writer: BufWriter::new(stream),
        };
        let join = ClusterRequest::WorkerJoin {
            slot: self.slot,
            epoch: self.epoch,
            payload_bytes: self.state.payload_bytes as u32,
            seen_seq_window: 4096,
        };
        let held = match conn.round_trip(&join)? {
            ClusterResponse::Welcome { blocks_held, .. } => blocks_held as usize,
            _ => return Err(RoundTripError::Io),
        };
        let ids = self.state.store.block_ids();
        if held != ids.len() {
            for chunk in ids.chunks(UPLOAD_CHUNK) {
                let blocks: Vec<(u32, Vec<u8>)> = chunk
                    .iter()
                    .filter_map(|&b| self.state.store.get(b).ok().map(|bytes| (b, bytes)))
                    .collect();
                let req = ClusterRequest::WriteBlocks {
                    epoch: self.epoch,
                    blocks,
                };
                match conn.round_trip(&req)? {
                    ClusterResponse::BlocksAck { .. } => {}
                    _ => return Err(RoundTripError::Io),
                }
            }
        }
        Ok(conn)
    }

    /// Jittered-backoff reconnect loop; `Err` means the retry budget is
    /// exhausted (or we were fenced) and the worker is dead to us.
    fn establish_with_retry(&self) -> Result<Conn, ()> {
        let mut rng = self.epoch ^ (u64::from(self.slot) << 32) | 1;
        for i in 0..RECONNECT_ATTEMPTS {
            match self.establish() {
                Ok(c) => return Ok(c),
                Err(RoundTripError::Fenced) => return Err(()),
                Err(RoundTripError::Io) => {}
            }
            let base = RECONNECT_BASE_MS * (1 << i.min(5));
            let jitter = 512 + (xorshift(&mut rng) % 1025);
            thread::sleep(Duration::from_millis(base * jitter / 1024));
        }
        Err(())
    }

    /// One dispatch, surviving connection loss by reconnect + retransmit
    /// of the same seq (the worker's reply cache dedups re-execution).
    fn dispatch(&mut self, conn: &mut Conn, req: &ReadRequest) -> Result<(), ()> {
        let wire = ClusterRequest::Dispatch {
            epoch: self.epoch,
            query_id: req.query_id,
            seq: req.seq,
            priority: match req.priority {
                QueryPriority::Interactive => 0,
                QueryPriority::Batch => 1,
            },
            rect: req.query,
            blocks: req.blocks.clone(),
        };
        match self.retry_round_trip(conn, &wire)? {
            ClusterResponse::WorkerReply(w) => {
                if let Some(c) = &self.counters {
                    c.blocks_fetched
                        .fetch_add(w.blocks_requested, Ordering::Relaxed);
                    c.cache_hits.fetch_add(w.cache_hits, Ordering::Relaxed);
                    c.disk_busy_us.fetch_add(w.disk_us, Ordering::Relaxed);
                    if w.error.is_some() {
                        c.error_replies.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let _ = req.reply.send(FromWorker {
                    query_id: w.query_id,
                    seq: w.seq,
                    worker_id: self.slot as usize,
                    blocks_requested: w.blocks_requested,
                    cache_hits: w.cache_hits,
                    disk_us: w.disk_us,
                    cpu_us: w.cpu_us,
                    records: w.records,
                    corrupt_blocks: w.corrupt_blocks,
                    error: w.error,
                });
                Ok(())
            }
            _ => {
                // Typed refusal (e.g. ancient retransmit): answer with an
                // error reply so the engine retries against a replica.
                let _ = req.reply.send(FromWorker {
                    query_id: req.query_id,
                    seq: req.seq,
                    worker_id: self.slot as usize,
                    blocks_requested: req.blocks.len() as u64,
                    cache_hits: 0,
                    disk_us: 0,
                    cpu_us: 0,
                    records: Vec::new(),
                    corrupt_blocks: Vec::new(),
                    error: Some("worker refused dispatch".into()),
                });
                Ok(())
            }
        }
    }

    fn fetch_raw(
        &mut self,
        conn: &mut Conn,
        blocks: Vec<u32>,
        reply: &Sender<RawBlocks>,
    ) -> Result<(), ()> {
        let req = ClusterRequest::FetchBlocks {
            epoch: self.epoch,
            blocks,
        };
        match self.retry_round_trip(conn, &req)? {
            ClusterResponse::RawBlocks { blocks, .. } => {
                let _ = reply.send(RawBlocks {
                    worker_id: self.slot as usize,
                    blocks,
                });
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn heartbeat(&mut self, conn: &mut Conn) -> Result<(), ()> {
        let beat = ClusterRequest::Heartbeat {
            term: self.epoch,
            epoch: self.epoch,
            commit: self.commit.load(Ordering::Relaxed),
        };
        self.retry_round_trip(conn, &beat)?;
        let lease = ClusterRequest::LeaseGrant {
            epoch: self.epoch,
            ttl_ms: self.lease_ttl_ms,
        };
        if let ClusterResponse::LeaseAck { granted: true, .. } =
            self.retry_round_trip(conn, &lease)?
        {
            self.lease_epoch.store(self.epoch, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Round-trips `req`, transparently reconnecting (and thereby
    /// retransmitting `req` under the same seq) on connection failure.
    /// `Err` means fenced or retry budget exhausted.
    fn retry_round_trip(
        &self,
        conn: &mut Conn,
        req: &ClusterRequest,
    ) -> Result<ClusterResponse, ()> {
        loop {
            match conn.round_trip(req) {
                Ok(resp) => return Ok(resp),
                Err(RoundTripError::Fenced) => return Err(()),
                Err(RoundTripError::Io) => {
                    *conn = self.establish_with_retry()?;
                }
            }
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}
