//! The worker/election wire plane: frames between a coordinator and its
//! worker *processes*, and between coordinator replicas.
//!
//! Same transport as the client plane ([`crate::frame`]: length-prefixed,
//! CRC-32-trailered, versioned), disjoint message-type space (requests
//! `0x20..`, responses `0xA0..`), same total-decoding discipline: hostile
//! bytes can only fail into a typed [`ProtoError`], never panic, and every
//! decoder rejects trailing bytes, non-finite coordinates, and length
//! prefixes that exceed the payload.
//!
//! Three conversations share this plane:
//!
//! * **Dispatch** — a coordinator's remote-worker proxy forwards the
//!   engine's sequenced requests ([`ClusterRequest::Dispatch`],
//!   [`ClusterRequest::WriteBlocks`], [`ClusterRequest::FetchBlocks`])
//!   and the worker answers with [`ClusterResponse::WorkerReply`] /
//!   acks. The `seq` numbers are the engine's PR 4 dispatch sequence
//!   numbers, unchanged — the worker's dedup window and the proxy's
//!   retransmits ride them verbatim.
//! * **Liveness + leases** — [`ClusterRequest::Heartbeat`] probes,
//!   [`ClusterRequest::LeaseGrant`] renewals. Every data-plane request
//!   carries the issuing leader's `epoch` (its election term); a worker
//!   rejects anything below its current epoch with
//!   [`ClusterResponse::Fenced`], which is what makes a deposed leader
//!   harmless.
//! * **Election + replication** — [`ClusterRequest::VoteRequest`] /
//!   [`ClusterRequest::MetaAppend`] between coordinators (workers also
//!   vote, so a two-coordinator cluster keeps an electing majority when
//!   one of them dies).

use pargrid_geom::{Point, Rect, MAX_DIM};
use pargrid_gridfile::Record;

use crate::proto::{checked_dim, err, Cur, ProtoError};

// Request type bytes (worker/election plane).
const REQ_WORKER_JOIN: u8 = 0x20;
const REQ_DISPATCH: u8 = 0x21;
const REQ_WRITE_BLOCKS: u8 = 0x22;
const REQ_FETCH_BLOCKS: u8 = 0x23;
const REQ_HEARTBEAT: u8 = 0x24;
const REQ_LEASE_GRANT: u8 = 0x25;
const REQ_VOTE: u8 = 0x26;
const REQ_META_APPEND: u8 = 0x27;

// Response type bytes.
const RESP_WELCOME: u8 = 0xA0;
const RESP_WORKER_REPLY: u8 = 0xA1;
const RESP_BLOCKS_ACK: u8 = 0xA2;
const RESP_RAW_BLOCKS: u8 = 0xA3;
const RESP_HEARTBEAT_ACK: u8 = 0xA4;
const RESP_LEASE_ACK: u8 = 0xA5;
const RESP_VOTE_REPLY: u8 = 0xA6;
const RESP_META_ACK: u8 = 0xA7;
const RESP_FENCED: u8 = 0xA8;
const RESP_CLUSTER_ERR: u8 = 0xA9;

/// Query priority on the wire (mirrors
/// `pargrid_parallel::QueryPriority` without depending on its layout).
pub const PRIORITY_INTERACTIVE: u8 = 0;
/// Batch-class priority byte (see [`PRIORITY_INTERACTIVE`]).
pub const PRIORITY_BATCH: u8 = 1;

/// One replicated-metadata-log operation (the oplog a standby coordinator
/// mirrors so it can take over without violating read-your-write).
#[derive(Clone, Debug, PartialEq)]
pub enum MetaOp {
    /// Leader liveness / commit-advance heartbeat entry.
    Noop,
    /// A client insert acknowledged by the leader.
    Insert {
        /// Record id.
        id: u64,
        /// Record key (the file's dimensionality).
        key: Vec<f64>,
    },
    /// A client delete acknowledged by the leader.
    Delete {
        /// Record id.
        id: u64,
        /// Record key.
        key: Vec<f64>,
    },
    /// The leader ran a rebalance; standbys mirror the epoch so a new
    /// leader re-declusters from at least this topology generation.
    Rebalance {
        /// Monotonic rebalance epoch after the operation.
        epoch: u64,
    },
}

const OP_NOOP: u8 = 0;
const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_REBALANCE: u8 = 3;

impl MetaOp {
    fn encode_into(&self, p: &mut Vec<u8>) {
        match self {
            MetaOp::Noop => p.push(OP_NOOP),
            MetaOp::Insert { id, key } => {
                p.push(OP_INSERT);
                encode_id_key(p, *id, key);
            }
            MetaOp::Delete { id, key } => {
                p.push(OP_DELETE);
                encode_id_key(p, *id, key);
            }
            MetaOp::Rebalance { epoch } => {
                p.push(OP_REBALANCE);
                p.extend_from_slice(&epoch.to_le_bytes());
            }
        }
    }

    fn decode(c: &mut Cur<'_>) -> Result<MetaOp, ProtoError> {
        Ok(match c.u8()? {
            OP_NOOP => MetaOp::Noop,
            OP_INSERT => {
                let (id, key) = decode_id_key(c)?;
                MetaOp::Insert { id, key }
            }
            OP_DELETE => {
                let (id, key) = decode_id_key(c)?;
                MetaOp::Delete { id, key }
            }
            OP_REBALANCE => MetaOp::Rebalance { epoch: c.u64()? },
            t => return Err(err(format!("unknown meta op tag {t}"))),
        })
    }
}

fn encode_id_key(p: &mut Vec<u8>, id: u64, key: &[f64]) {
    p.extend_from_slice(&id.to_le_bytes());
    p.extend_from_slice(&(key.len() as u16).to_le_bytes());
    for v in key {
        p.extend_from_slice(&v.to_le_bytes());
    }
}

fn decode_id_key(c: &mut Cur<'_>) -> Result<(u64, Vec<f64>), ProtoError> {
    let id = c.u64()?;
    let d = checked_dim(c.u16()?)?;
    let mut key = Vec::with_capacity(d);
    for _ in 0..d {
        key.push(c.finite_f64("meta key coordinate")?);
    }
    Ok((id, key))
}

/// A worker's answer to one [`ClusterRequest::Dispatch`] — the wire form
/// of the engine's `FromWorker` (minus its in-process reply channel).
#[derive(Clone, Debug, PartialEq)]
pub struct WireReply {
    /// Echo of the dispatch's query id.
    pub query_id: u64,
    /// Echo of the dispatch's engine-global sequence number.
    pub seq: u64,
    /// The worker slot that serviced it.
    pub worker: u32,
    /// Blocks the dispatch asked for.
    pub blocks_requested: u64,
    /// Buffer-cache hits among them.
    pub cache_hits: u64,
    /// Virtual disk time charged to this request, microseconds.
    pub disk_us: u64,
    /// Virtual CPU time (decode + filter), microseconds.
    pub cpu_us: u64,
    /// Blocks whose stored checksum no longer matched (scrub candidates).
    pub corrupt_blocks: Vec<u32>,
    /// Service error, if the request failed (unreadable block, poison).
    pub error: Option<String>,
    /// Qualifying records.
    pub records: Vec<Record>,
}

/// Requests on the worker/election plane.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterRequest {
    /// First frame on a proxy→worker connection: claims slot `slot` for
    /// leader epoch `epoch`. A join with a *higher* epoch resets the
    /// worker's store, dedup window, and reply cache (a new regime); the
    /// same epoch reattaches after a dropped connection, keeping all
    /// three; a lower epoch is [`ClusterResponse::Fenced`].
    WorkerJoin {
        /// Worker slot index this connection serves.
        slot: u32,
        /// Issuing leader's epoch (election term).
        epoch: u64,
        /// Record payload size, needed to decode pages.
        payload_bytes: u32,
        /// Retransmit-dedup window size (PR 4's seen-seq window).
        seen_seq_window: u32,
    },
    /// One sequenced read request (the engine's `ToWorker::Process` unit).
    Dispatch {
        /// Issuing leader's epoch; fenced if stale.
        epoch: u64,
        /// Engine query id.
        query_id: u64,
        /// Engine-global dispatch sequence number (dedup key).
        seq: u64,
        /// [`PRIORITY_INTERACTIVE`] or [`PRIORITY_BATCH`].
        priority: u8,
        /// Query rectangle.
        rect: Rect,
        /// Block ids to read (worker-local).
        blocks: Vec<u32>,
    },
    /// Raw block upload/overwrite (bulk load on join, scrub repair,
    /// mutation pages) — the engine's `ToWorker::WriteRaw` on the wire.
    WriteBlocks {
        /// Issuing leader's epoch; fenced if stale.
        epoch: u64,
        /// `(block id, page bytes)` pairs.
        blocks: Vec<(u32, Vec<u8>)>,
    },
    /// Raw verified block read (scrub material) — `ToWorker::FetchRaw`.
    FetchBlocks {
        /// Issuing leader's epoch; fenced if stale.
        epoch: u64,
        /// Block ids wanted.
        blocks: Vec<u32>,
    },
    /// Liveness probe; also how a proxy learns it has been deposed.
    /// The leader piggybacks its committed metadata-log index so workers
    /// can refuse votes to candidates whose log would lose acknowledged
    /// writes (the election restriction, worker edition).
    Heartbeat {
        /// Sender's election term.
        term: u64,
        /// Sender's epoch (0 when probing without a lease).
        epoch: u64,
        /// Sender's committed metadata-log index (0 from non-leaders).
        commit: u64,
    },
    /// Lease establishment/renewal: the worker records `epoch` as current
    /// for `ttl_ms`. Bounds how long a partitioned deposed leader can
    /// keep dispatching before its next renewal fails.
    LeaseGrant {
        /// Leader epoch taking the lease.
        epoch: u64,
        /// Lease duration, milliseconds.
        ttl_ms: u32,
    },
    /// A candidate coordinator asks for this node's vote in `term`.
    /// Workers vote too (first candidate per term wins the vote), so a
    /// 2-coordinator cluster still has an electing majority after losing
    /// its leader.
    VoteRequest {
        /// Candidate's proposed term.
        term: u64,
        /// Candidate's node id.
        candidate: u32,
        /// Candidate's metadata-log length (its last entry's index).
        log_len: u64,
        /// Term of the candidate's last metadata-log entry (0 when the
        /// log is empty). Voters compare `(last_log_term, log_len)`
        /// lexicographically against their own log — the Raft election
        /// restriction — so a divergent same-length log from an older
        /// regime cannot win.
        last_log_term: u64,
    },
    /// Leader→standby metadata replication: entries
    /// `start_index..start_index + ops.len()` (1-based, consecutive),
    /// plus the leader's commit index. An empty `ops` is the leader
    /// heartbeat.
    MetaAppend {
        /// Leader's term.
        term: u64,
        /// Leader's node id.
        leader: u32,
        /// Highest log index known replicated on every standby; the
        /// receiver applies its log up to here.
        commit: u64,
        /// Index of the first op in `ops` (1-based).
        start_index: u64,
        /// The operations themselves.
        ops: Vec<MetaOp>,
    },
}

/// Responses on the worker/election plane.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterResponse {
    /// Join accepted.
    Welcome {
        /// Echo of the slot.
        slot: u32,
        /// The worker's current epoch after the join.
        epoch: u64,
        /// Blocks already held for this epoch (a same-epoch reattach
        /// skips the upload when this matches the proxy's store).
        blocks_held: u32,
    },
    /// Answer to a [`ClusterRequest::Dispatch`].
    WorkerReply(WireReply),
    /// Answer to a [`ClusterRequest::WriteBlocks`].
    BlocksAck {
        /// The worker's epoch.
        epoch: u64,
        /// Blocks written.
        written: u32,
    },
    /// Answer to a [`ClusterRequest::FetchBlocks`]: per requested block,
    /// its verified bytes, or `None` if missing/corrupt (never served as
    /// scrub material).
    RawBlocks {
        /// The answering worker slot.
        worker: u32,
        /// `(block id, verified bytes or None)` pairs.
        blocks: Vec<(u32, Option<Vec<u8>>)>,
    },
    /// Answer to a [`ClusterRequest::Heartbeat`].
    HeartbeatAck {
        /// Highest term this node has seen.
        term: u64,
        /// This node's current epoch (0 if it holds no lease).
        epoch: u64,
    },
    /// Answer to a [`ClusterRequest::LeaseGrant`].
    LeaseAck {
        /// Whether the lease was granted/renewed.
        granted: bool,
        /// The node's current epoch after the request.
        epoch: u64,
    },
    /// Answer to a [`ClusterRequest::VoteRequest`].
    VoteReply {
        /// The voter's term after considering the request.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Answer to a [`ClusterRequest::MetaAppend`].
    MetaAck {
        /// The follower's term.
        term: u64,
        /// Whether the entries were appended.
        ok: bool,
        /// The follower's log length after the append (the leader's
        /// replication cursor).
        log_len: u64,
    },
    /// The request carried a stale epoch — the issuer has been deposed.
    /// Its proxy marks the worker dead and the old engine degrades to
    /// incomplete answers instead of wrong ones.
    Fenced {
        /// The node's current (higher) epoch.
        epoch: u64,
    },
    /// Typed catch-all rejection (no state for the slot, not a
    /// coordinator, etc.).
    ClusterErr(
        /// Human-readable reason.
        String,
    ),
}

impl ClusterRequest {
    /// Message type byte + payload for this request.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut p = Vec::new();
        match self {
            ClusterRequest::WorkerJoin {
                slot,
                epoch,
                payload_bytes,
                seen_seq_window,
            } => {
                p.extend_from_slice(&slot.to_le_bytes());
                p.extend_from_slice(&epoch.to_le_bytes());
                p.extend_from_slice(&payload_bytes.to_le_bytes());
                p.extend_from_slice(&seen_seq_window.to_le_bytes());
                (REQ_WORKER_JOIN, p)
            }
            ClusterRequest::Dispatch {
                epoch,
                query_id,
                seq,
                priority,
                rect,
                blocks,
            } => {
                p.reserve(37 + 16 * rect.dim() + 4 * blocks.len());
                p.extend_from_slice(&epoch.to_le_bytes());
                p.extend_from_slice(&query_id.to_le_bytes());
                p.extend_from_slice(&seq.to_le_bytes());
                p.push(*priority);
                p.extend_from_slice(&(rect.dim() as u16).to_le_bytes());
                for i in 0..rect.dim() {
                    p.extend_from_slice(&rect.lo().get(i).to_le_bytes());
                    p.extend_from_slice(&rect.hi().get(i).to_le_bytes());
                }
                p.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for b in blocks {
                    p.extend_from_slice(&b.to_le_bytes());
                }
                (REQ_DISPATCH, p)
            }
            ClusterRequest::WriteBlocks { epoch, blocks } => {
                let bytes: usize = blocks.iter().map(|(_, b)| 8 + b.len()).sum();
                p.reserve(12 + bytes);
                p.extend_from_slice(&epoch.to_le_bytes());
                p.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for (id, bytes) in blocks {
                    p.extend_from_slice(&id.to_le_bytes());
                    p.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    p.extend_from_slice(bytes);
                }
                (REQ_WRITE_BLOCKS, p)
            }
            ClusterRequest::FetchBlocks { epoch, blocks } => {
                p.extend_from_slice(&epoch.to_le_bytes());
                p.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for b in blocks {
                    p.extend_from_slice(&b.to_le_bytes());
                }
                (REQ_FETCH_BLOCKS, p)
            }
            ClusterRequest::Heartbeat {
                term,
                epoch,
                commit,
            } => {
                p.extend_from_slice(&term.to_le_bytes());
                p.extend_from_slice(&epoch.to_le_bytes());
                p.extend_from_slice(&commit.to_le_bytes());
                (REQ_HEARTBEAT, p)
            }
            ClusterRequest::LeaseGrant { epoch, ttl_ms } => {
                p.extend_from_slice(&epoch.to_le_bytes());
                p.extend_from_slice(&ttl_ms.to_le_bytes());
                (REQ_LEASE_GRANT, p)
            }
            ClusterRequest::VoteRequest {
                term,
                candidate,
                log_len,
                last_log_term,
            } => {
                p.extend_from_slice(&term.to_le_bytes());
                p.extend_from_slice(&candidate.to_le_bytes());
                p.extend_from_slice(&log_len.to_le_bytes());
                p.extend_from_slice(&last_log_term.to_le_bytes());
                (REQ_VOTE, p)
            }
            ClusterRequest::MetaAppend {
                term,
                leader,
                commit,
                start_index,
                ops,
            } => {
                p.extend_from_slice(&term.to_le_bytes());
                p.extend_from_slice(&leader.to_le_bytes());
                p.extend_from_slice(&commit.to_le_bytes());
                p.extend_from_slice(&start_index.to_le_bytes());
                p.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                for op in ops {
                    op.encode_into(&mut p);
                }
                (REQ_META_APPEND, p)
            }
        }
    }

    /// Decodes a request payload. Total: hostile bytes fail typed, never
    /// panic, and trailing bytes are rejected.
    pub fn decode(msg_type: u8, payload: &[u8]) -> Result<ClusterRequest, ProtoError> {
        let mut c = Cur::new(payload);
        let req = match msg_type {
            REQ_WORKER_JOIN => ClusterRequest::WorkerJoin {
                slot: c.u32()?,
                epoch: c.u64()?,
                payload_bytes: c.u32()?,
                seen_seq_window: c.u32()?,
            },
            REQ_DISPATCH => {
                let epoch = c.u64()?;
                let query_id = c.u64()?;
                let seq = c.u64()?;
                let priority = c.u8()?;
                if priority > PRIORITY_BATCH {
                    return Err(err(format!("bad priority byte {priority}")));
                }
                let d = checked_dim(c.u16()?)?;
                let mut lo = [0.0; MAX_DIM];
                let mut hi = [0.0; MAX_DIM];
                for i in 0..d {
                    lo[i] = c.finite_f64("rect lo coordinate")?;
                    hi[i] = c.finite_f64("rect hi coordinate")?;
                    if lo[i] > hi[i] {
                        return Err(err(format!("rect interval {i} inverted")));
                    }
                }
                let n = c.u32()? as usize;
                if n > c.remaining() / 4 {
                    return Err(err(format!("block count {n} exceeds payload")));
                }
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    blocks.push(c.u32()?);
                }
                ClusterRequest::Dispatch {
                    epoch,
                    query_id,
                    seq,
                    priority,
                    rect: Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d])),
                    blocks,
                }
            }
            REQ_WRITE_BLOCKS => {
                let epoch = c.u64()?;
                let n = c.u32()? as usize;
                if n > c.remaining() / 8 {
                    return Err(err(format!("write count {n} exceeds payload")));
                }
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = c.u32()?;
                    let len = c.u32()? as usize;
                    blocks.push((id, c.take(len)?.to_vec()));
                }
                ClusterRequest::WriteBlocks { epoch, blocks }
            }
            REQ_FETCH_BLOCKS => {
                let epoch = c.u64()?;
                let n = c.u32()? as usize;
                if n > c.remaining() / 4 {
                    return Err(err(format!("fetch count {n} exceeds payload")));
                }
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    blocks.push(c.u32()?);
                }
                ClusterRequest::FetchBlocks { epoch, blocks }
            }
            REQ_HEARTBEAT => ClusterRequest::Heartbeat {
                term: c.u64()?,
                epoch: c.u64()?,
                commit: c.u64()?,
            },
            REQ_LEASE_GRANT => ClusterRequest::LeaseGrant {
                epoch: c.u64()?,
                ttl_ms: c.u32()?,
            },
            REQ_VOTE => ClusterRequest::VoteRequest {
                term: c.u64()?,
                candidate: c.u32()?,
                log_len: c.u64()?,
                last_log_term: c.u64()?,
            },
            REQ_META_APPEND => {
                let term = c.u64()?;
                let leader = c.u32()?;
                let commit = c.u64()?;
                let start_index = c.u64()?;
                let n = c.u32()? as usize;
                // A meta op is at least 1 byte (Noop).
                if n > c.remaining() {
                    return Err(err(format!("op count {n} exceeds payload")));
                }
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(MetaOp::decode(&mut c)?);
                }
                ClusterRequest::MetaAppend {
                    term,
                    leader,
                    commit,
                    start_index,
                    ops,
                }
            }
            t => return Err(err(format!("unknown cluster request type {t:#04x}"))),
        };
        c.done()?;
        Ok(req)
    }
}

impl ClusterResponse {
    /// Message type byte + payload for this response.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut p = Vec::new();
        match self {
            ClusterResponse::Welcome {
                slot,
                epoch,
                blocks_held,
            } => {
                p.extend_from_slice(&slot.to_le_bytes());
                p.extend_from_slice(&epoch.to_le_bytes());
                p.extend_from_slice(&blocks_held.to_le_bytes());
                (RESP_WELCOME, p)
            }
            ClusterResponse::WorkerReply(r) => {
                p.reserve(64 + 4 * r.corrupt_blocks.len() + r.records.len() * (10 + 8 * MAX_DIM));
                p.extend_from_slice(&r.query_id.to_le_bytes());
                p.extend_from_slice(&r.seq.to_le_bytes());
                p.extend_from_slice(&r.worker.to_le_bytes());
                for v in [r.blocks_requested, r.cache_hits, r.disk_us, r.cpu_us] {
                    p.extend_from_slice(&v.to_le_bytes());
                }
                p.extend_from_slice(&(r.corrupt_blocks.len() as u32).to_le_bytes());
                for b in &r.corrupt_blocks {
                    p.extend_from_slice(&b.to_le_bytes());
                }
                match &r.error {
                    None => p.push(0),
                    Some(msg) => {
                        p.push(1);
                        p.extend_from_slice(&(msg.len() as u32).to_le_bytes());
                        p.extend_from_slice(msg.as_bytes());
                    }
                }
                p.extend_from_slice(&(r.records.len() as u32).to_le_bytes());
                for rec in &r.records {
                    p.extend_from_slice(&rec.id.to_le_bytes());
                    let coords = rec.point.coords();
                    p.extend_from_slice(&(coords.len() as u16).to_le_bytes());
                    for v in coords {
                        p.extend_from_slice(&v.to_le_bytes());
                    }
                }
                (RESP_WORKER_REPLY, p)
            }
            ClusterResponse::BlocksAck { epoch, written } => {
                p.extend_from_slice(&epoch.to_le_bytes());
                p.extend_from_slice(&written.to_le_bytes());
                (RESP_BLOCKS_ACK, p)
            }
            ClusterResponse::RawBlocks { worker, blocks } => {
                let bytes: usize = blocks
                    .iter()
                    .map(|(_, b)| 9 + b.as_ref().map_or(0, Vec::len))
                    .sum();
                p.reserve(8 + bytes);
                p.extend_from_slice(&worker.to_le_bytes());
                p.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for (id, bytes) in blocks {
                    p.extend_from_slice(&id.to_le_bytes());
                    match bytes {
                        None => p.push(0),
                        Some(b) => {
                            p.push(1);
                            p.extend_from_slice(&(b.len() as u32).to_le_bytes());
                            p.extend_from_slice(b);
                        }
                    }
                }
                (RESP_RAW_BLOCKS, p)
            }
            ClusterResponse::HeartbeatAck { term, epoch } => {
                p.extend_from_slice(&term.to_le_bytes());
                p.extend_from_slice(&epoch.to_le_bytes());
                (RESP_HEARTBEAT_ACK, p)
            }
            ClusterResponse::LeaseAck { granted, epoch } => {
                p.push(*granted as u8);
                p.extend_from_slice(&epoch.to_le_bytes());
                (RESP_LEASE_ACK, p)
            }
            ClusterResponse::VoteReply { term, granted } => {
                p.extend_from_slice(&term.to_le_bytes());
                p.push(*granted as u8);
                (RESP_VOTE_REPLY, p)
            }
            ClusterResponse::MetaAck { term, ok, log_len } => {
                p.extend_from_slice(&term.to_le_bytes());
                p.push(*ok as u8);
                p.extend_from_slice(&log_len.to_le_bytes());
                (RESP_META_ACK, p)
            }
            ClusterResponse::Fenced { epoch } => {
                p.extend_from_slice(&epoch.to_le_bytes());
                (RESP_FENCED, p)
            }
            ClusterResponse::ClusterErr(msg) => {
                p.extend_from_slice(&(msg.len() as u32).to_le_bytes());
                p.extend_from_slice(msg.as_bytes());
                (RESP_CLUSTER_ERR, p)
            }
        }
    }

    /// Decodes a response payload. Total, like [`ClusterRequest::decode`].
    pub fn decode(msg_type: u8, payload: &[u8]) -> Result<ClusterResponse, ProtoError> {
        let mut c = Cur::new(payload);
        let resp = match msg_type {
            RESP_WELCOME => ClusterResponse::Welcome {
                slot: c.u32()?,
                epoch: c.u64()?,
                blocks_held: c.u32()?,
            },
            RESP_WORKER_REPLY => {
                let query_id = c.u64()?;
                let seq = c.u64()?;
                let worker = c.u32()?;
                let blocks_requested = c.u64()?;
                let cache_hits = c.u64()?;
                let disk_us = c.u64()?;
                let cpu_us = c.u64()?;
                let nc = c.u32()? as usize;
                if nc > c.remaining() / 4 {
                    return Err(err(format!("corrupt-block count {nc} exceeds payload")));
                }
                let mut corrupt_blocks = Vec::with_capacity(nc);
                for _ in 0..nc {
                    corrupt_blocks.push(c.u32()?);
                }
                let error = match c.u8()? {
                    0 => None,
                    1 => {
                        let n = c.u32()? as usize;
                        let bytes = c.take(n)?;
                        Some(
                            std::str::from_utf8(bytes)
                                .map_err(|_| err("error text is not utf-8"))?
                                .to_string(),
                        )
                    }
                    t => return Err(err(format!("bad error flag {t}"))),
                };
                let n = c.u32()? as usize;
                // 14 bytes is the smallest record (1-D), as in the client
                // plane's records decoder.
                if n > c.remaining() / 14 {
                    return Err(err(format!("record count {n} exceeds payload")));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = c.u64()?;
                    let d = checked_dim(c.u16()?)?;
                    let mut coords = [0.0; MAX_DIM];
                    for slot in coords.iter_mut().take(d) {
                        *slot = c.finite_f64("record coordinate")?;
                    }
                    records.push(Record::new(id, Point::new(&coords[..d])));
                }
                ClusterResponse::WorkerReply(WireReply {
                    query_id,
                    seq,
                    worker,
                    blocks_requested,
                    cache_hits,
                    disk_us,
                    cpu_us,
                    corrupt_blocks,
                    error,
                    records,
                })
            }
            RESP_BLOCKS_ACK => ClusterResponse::BlocksAck {
                epoch: c.u64()?,
                written: c.u32()?,
            },
            RESP_RAW_BLOCKS => {
                let worker = c.u32()?;
                let n = c.u32()? as usize;
                // 5 bytes is the smallest entry (id + absent flag).
                if n > c.remaining() / 5 {
                    return Err(err(format!("raw-block count {n} exceeds payload")));
                }
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = c.u32()?;
                    let bytes = match c.u8()? {
                        0 => None,
                        1 => {
                            let len = c.u32()? as usize;
                            Some(c.take(len)?.to_vec())
                        }
                        t => return Err(err(format!("bad presence flag {t}"))),
                    };
                    blocks.push((id, bytes));
                }
                ClusterResponse::RawBlocks { worker, blocks }
            }
            RESP_HEARTBEAT_ACK => ClusterResponse::HeartbeatAck {
                term: c.u64()?,
                epoch: c.u64()?,
            },
            RESP_LEASE_ACK => ClusterResponse::LeaseAck {
                granted: decode_bool(&mut c, "granted flag")?,
                epoch: c.u64()?,
            },
            RESP_VOTE_REPLY => {
                let term = c.u64()?;
                ClusterResponse::VoteReply {
                    term,
                    granted: decode_bool(&mut c, "granted flag")?,
                }
            }
            RESP_META_ACK => {
                let term = c.u64()?;
                let ok = decode_bool(&mut c, "ok flag")?;
                ClusterResponse::MetaAck {
                    term,
                    ok,
                    log_len: c.u64()?,
                }
            }
            RESP_FENCED => ClusterResponse::Fenced { epoch: c.u64()? },
            RESP_CLUSTER_ERR => {
                let n = c.u32()? as usize;
                let bytes = c.take(n)?;
                ClusterResponse::ClusterErr(
                    std::str::from_utf8(bytes)
                        .map_err(|_| err("cluster error text is not utf-8"))?
                        .to_string(),
                )
            }
            t => return Err(err(format!("unknown cluster response type {t:#04x}"))),
        };
        c.done()?;
        Ok(resp)
    }
}

fn decode_bool(c: &mut Cur<'_>, what: &str) -> Result<bool, ProtoError> {
    match c.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(err(format!("bad {what} {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_request(req: ClusterRequest) {
        let (t, p) = req.encode();
        let back = ClusterRequest::decode(t, &p).expect("round trip");
        assert_eq!(req, back);
    }

    fn rt_response(resp: ClusterResponse) {
        let (t, p) = resp.encode();
        let back = ClusterResponse::decode(t, &p).expect("round trip");
        assert_eq!(resp, back);
    }

    #[test]
    fn requests_round_trip() {
        rt_request(ClusterRequest::WorkerJoin {
            slot: 3,
            epoch: 7,
            payload_bytes: 42,
            seen_seq_window: 4096,
        });
        rt_request(ClusterRequest::Dispatch {
            epoch: 7,
            query_id: 11,
            seq: 99,
            priority: PRIORITY_INTERACTIVE,
            rect: Rect::new(Point::new2(0.0, -1.0), Point::new2(10.0, 1.0)),
            blocks: vec![0, 5, 9],
        });
        rt_request(ClusterRequest::WriteBlocks {
            epoch: 7,
            blocks: vec![(0, vec![1, 2, 3]), (1, vec![])],
        });
        rt_request(ClusterRequest::FetchBlocks {
            epoch: 7,
            blocks: vec![2, 4],
        });
        rt_request(ClusterRequest::Heartbeat {
            term: 3,
            epoch: 7,
            commit: 12,
        });
        rt_request(ClusterRequest::LeaseGrant {
            epoch: 7,
            ttl_ms: 500,
        });
        rt_request(ClusterRequest::VoteRequest {
            term: 4,
            candidate: 1,
            log_len: 17,
            last_log_term: 3,
        });
        rt_request(ClusterRequest::MetaAppend {
            term: 4,
            leader: 1,
            commit: 16,
            start_index: 17,
            ops: vec![
                MetaOp::Noop,
                MetaOp::Insert {
                    id: 9,
                    key: vec![1.0, 2.0],
                },
                MetaOp::Delete {
                    id: 9,
                    key: vec![1.0, 2.0],
                },
                MetaOp::Rebalance { epoch: 2 },
            ],
        });
    }

    #[test]
    fn responses_round_trip() {
        rt_response(ClusterResponse::Welcome {
            slot: 3,
            epoch: 7,
            blocks_held: 12,
        });
        rt_response(ClusterResponse::WorkerReply(WireReply {
            query_id: 11,
            seq: 99,
            worker: 3,
            blocks_requested: 4,
            cache_hits: 2,
            disk_us: 1000,
            cpu_us: 10,
            corrupt_blocks: vec![5],
            error: Some("bad block".into()),
            records: vec![Record::new(1, Point::new2(3.0, 4.0))],
        }));
        rt_response(ClusterResponse::BlocksAck {
            epoch: 7,
            written: 2,
        });
        rt_response(ClusterResponse::RawBlocks {
            worker: 1,
            blocks: vec![(0, Some(vec![9, 9])), (1, None)],
        });
        rt_response(ClusterResponse::HeartbeatAck { term: 3, epoch: 7 });
        rt_response(ClusterResponse::LeaseAck {
            granted: true,
            epoch: 7,
        });
        rt_response(ClusterResponse::VoteReply {
            term: 4,
            granted: false,
        });
        rt_response(ClusterResponse::MetaAck {
            term: 4,
            ok: true,
            log_len: 17,
        });
        rt_response(ClusterResponse::Fenced { epoch: 9 });
        rt_response(ClusterResponse::ClusterErr("nope".into()));
    }

    #[test]
    fn inverted_rect_is_rejected_not_asserted() {
        let (t, mut p) = ClusterRequest::Dispatch {
            epoch: 1,
            query_id: 1,
            seq: 1,
            priority: 0,
            rect: Rect::new(Point::new2(0.0, 0.0), Point::new2(1.0, 1.0)),
            blocks: vec![],
        }
        .encode();
        // Swap lo/hi of dimension 0 (offsets 27..35 lo, 35..43 hi).
        p[27..35].copy_from_slice(&5.0f64.to_le_bytes());
        p[35..43].copy_from_slice(&1.0f64.to_le_bytes());
        let e = ClusterRequest::decode(t, &p).expect_err("inverted rect");
        assert!(e.0.contains("inverted"), "{e}");
    }

    #[test]
    fn hostile_counts_cannot_overallocate() {
        let mut p = Vec::new();
        p.extend_from_slice(&7u64.to_le_bytes());
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        let e = ClusterRequest::decode(REQ_FETCH_BLOCKS, &p).expect_err("hostile count");
        assert!(e.0.contains("exceeds payload"), "{e}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (t, mut p) = ClusterRequest::Heartbeat {
            term: 1,
            epoch: 2,
            commit: 0,
        }
        .encode();
        p.push(0);
        assert!(ClusterRequest::decode(t, &p).is_err());
        let (t, mut p) = ClusterResponse::Fenced { epoch: 3 }.encode();
        p.push(0);
        assert!(ClusterResponse::decode(t, &p).is_err());
    }
}
