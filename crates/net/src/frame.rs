//! Length-prefixed, CRC-32-trailered binary frames.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       2     magic  b"PG"
//! 2       1     protocol version (currently 1)
//! 3       1     message type (see `proto`)
//! 4       4     payload length N (u32, <= MAX_PAYLOAD)
//! 8       N     payload
//! 8+N     4     CRC-32 (IEEE) over bytes [0, 8+N)
//! ```
//!
//! The checksum covers the header too, so a flipped type byte or length is
//! caught, not just payload corruption. Decoding is total: any byte
//! sequence maps to a [`Frame`] or a typed [`FrameError`] — never a panic
//! and never an allocation larger than [`MAX_PAYLOAD`].

use std::fmt;
use std::io::{self, Read, Write};

use pargrid_gridfile::crc32;

/// First two bytes of every frame.
pub const MAGIC: [u8; 2] = [b'P', b'G'];
/// Wire protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;
/// Upper bound on payload length; larger length prefixes are rejected
/// before any allocation (a hostile 4 GiB prefix must not OOM the server).
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;
/// Fixed header size: magic + version + type + length.
pub const HEADER_LEN: usize = 8;
/// CRC trailer size.
pub const TRAILER_LEN: usize = 4;

/// One decoded frame: a message type plus its raw payload. The payload is
/// interpreted by `proto`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Message type byte (request/response discriminant).
    pub msg_type: u8,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Every way a frame can fail to decode. `Closed` is the one benign
/// variant: the peer hung up cleanly between frames.
///
/// `#[non_exhaustive]` (workspace error convention): downstream matches
/// carry a wildcard arm so new failure modes stay a minor change.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameError {
    /// Clean EOF at a frame boundary — the connection is simply done.
    Closed,
    /// EOF in the middle of a frame: the peer died or sent a short write.
    Truncated,
    /// First two bytes were not `b"PG"`.
    BadMagic([u8; 2]),
    /// Protocol version we do not speak.
    BadVersion(u8),
    /// Length prefix exceeded [`MAX_PAYLOAD`].
    Oversized(u32),
    /// An *outbound* payload exceeded [`MAX_PAYLOAD`], caught before the
    /// length header is stamped. Without this check a ≥ 4 GiB payload
    /// would silently truncate its `u32` length field and misframe every
    /// later message on the connection.
    TooLarge(u64),
    /// Checksum mismatch (header or payload corrupted in flight).
    BadCrc {
        /// CRC computed over the received bytes.
        expected: u32,
        /// CRC carried in the trailer.
        actual: u32,
    },
    /// Underlying socket error other than EOF.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            FrameError::Oversized(n) => {
                write!(f, "payload length {n} exceeds limit {MAX_PAYLOAD}")
            }
            FrameError::TooLarge(n) => {
                write!(
                    f,
                    "outbound payload of {n} bytes exceeds limit {MAX_PAYLOAD}"
                )
            }
            FrameError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "crc mismatch: computed {expected:#010x}, frame says {actual:#010x}"
                )
            }
            FrameError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encodes a frame into a fresh byte vector. Fails with
/// [`FrameError::TooLarge`] when the payload exceeds [`MAX_PAYLOAD`].
pub fn encode_frame(msg_type: u8, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    let mut b = FrameBuilder::with_capacity(payload.len());
    b.payload_mut().extend_from_slice(payload);
    b.finish(msg_type)
}

/// Zero-copy frame assembly: the payload is serialized **directly into the
/// wire buffer** after a reserved header, so encoding a response costs one
/// allocation and zero payload copies (`encode_frame` + the old
/// two-buffer `Response::encode` path cost two of each; the pair is
/// benchmarked in `benches/hotpath.rs` as `frame_encode/*`).
///
/// ```
/// use pargrid_net::frame::{read_frame, FrameBuilder};
/// let mut b = FrameBuilder::new();
/// b.payload_mut().extend_from_slice(&7u64.to_le_bytes());
/// let bytes = b.finish(0x03).unwrap();
/// assert_eq!(read_frame(&mut &bytes[..]).unwrap().msg_type, 0x03);
/// ```
#[derive(Debug)]
pub struct FrameBuilder {
    buf: Vec<u8>,
}

impl Default for FrameBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameBuilder {
    /// Starts a frame: reserves the 8-byte header slot. The header itself
    /// (magic, version, type, length) is written by [`FrameBuilder::finish`],
    /// so nothing a payload writer does can corrupt it.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Like [`FrameBuilder::new`] with a payload-size hint, so a known
    /// response size reaches the wire with exactly one allocation.
    pub fn with_capacity(payload_hint: usize) -> Self {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload_hint + TRAILER_LEN);
        buf.resize(HEADER_LEN, 0);
        FrameBuilder { buf }
    }

    /// The wire buffer positioned at the payload: **append only**. Bytes
    /// pushed here land directly in the final frame.
    pub fn payload_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Payload bytes written so far.
    pub fn payload_len(&self) -> usize {
        self.buf.len() - HEADER_LEN
    }

    /// Stamps the header, appends the CRC-32 trailer, and returns the
    /// complete wire bytes.
    ///
    /// Rejects payloads over [`MAX_PAYLOAD`] with [`FrameError::TooLarge`]
    /// **before** stamping the length: a payload of 4 GiB or more would
    /// otherwise wrap the `u32` length field (`len as u32` truncates) and
    /// emit a validly-checksummed frame whose length header lies — the
    /// receiver would then misparse every subsequent byte on the stream.
    pub fn finish(mut self, msg_type: u8) -> Result<Vec<u8>, FrameError> {
        let payload_len = (self.buf.len() - HEADER_LEN) as u64;
        if payload_len > MAX_PAYLOAD as u64 {
            return Err(FrameError::TooLarge(payload_len));
        }
        self.buf[0..2].copy_from_slice(&MAGIC);
        self.buf[2] = PROTOCOL_VERSION;
        self.buf[3] = msg_type;
        self.buf[4..8].copy_from_slice(&(payload_len as u32).to_le_bytes());
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        Ok(self.buf)
    }
}

/// Encodes and writes one frame (no flush; callers batch then flush).
/// Fails with [`FrameError::TooLarge`] before writing a single byte when
/// the payload exceeds [`MAX_PAYLOAD`].
pub fn write_frame(w: &mut impl Write, msg_type: u8, payload: &[u8]) -> Result<(), FrameError> {
    w.write_all(&encode_frame(msg_type, payload)?)
        .map_err(FrameError::Io)
}

/// Reads exactly `buf.len()` bytes. Distinguishes "EOF before the first
/// byte" (clean close, only meaningful for the frame's first read) from
/// "EOF partway through" (truncation).
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    clean_eof: FrameError,
) -> Result<(), FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    clean_eof
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads and validates one frame. Any `&[u8]` works as the reader, so the
/// same code path serves sockets and in-memory fuzzing:
///
/// ```
/// use pargrid_net::frame::{encode_frame, read_frame};
/// let bytes = encode_frame(0x03, &7u64.to_le_bytes()).unwrap();
/// let frame = read_frame(&mut &bytes[..]).unwrap();
/// assert_eq!(frame.msg_type, 0x03);
/// ```
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(r, &mut header, FrameError::Closed)?;
    if header[0..2] != MAGIC {
        return Err(FrameError::BadMagic([header[0], header[1]]));
    }
    if header[2] != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion(header[2]));
    }
    let msg_type = header[3];
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, FrameError::Truncated)?;
    let mut trailer = [0u8; TRAILER_LEN];
    read_exact_or(r, &mut trailer, FrameError::Truncated)?;
    let actual = u32::from_le_bytes(trailer);
    // CRC over header + payload, exactly as encode_frame computed it.
    let mut crc_buf = Vec::with_capacity(HEADER_LEN + payload.len());
    crc_buf.extend_from_slice(&header);
    crc_buf.extend_from_slice(&payload);
    let expected = crc32(&crc_buf);
    if expected != actual {
        return Err(FrameError::BadCrc { expected, actual });
    }
    Ok(Frame { msg_type, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let bytes = encode_frame(0x42, b"hello grid").unwrap();
        let frame = read_frame(&mut &bytes[..]).unwrap();
        assert_eq!(frame.msg_type, 0x42);
        assert_eq!(frame.payload, b"hello grid");
    }

    #[test]
    fn builder_matches_encode_frame_byte_for_byte() {
        let mut b = FrameBuilder::with_capacity(10);
        b.payload_mut().extend_from_slice(b"hello grid");
        assert_eq!(b.payload_len(), 10);
        assert_eq!(
            b.finish(0x42).unwrap(),
            encode_frame(0x42, b"hello grid").unwrap()
        );
        // Empty payload too.
        assert_eq!(
            FrameBuilder::new().finish(0x05).unwrap(),
            encode_frame(0x05, &[]).unwrap()
        );
    }

    #[test]
    fn builder_header_survives_hostile_payload_writer() {
        // A writer that scribbles over the reserved header slot cannot
        // produce a misframed message: finish() stamps the header last.
        let mut b = FrameBuilder::new();
        b.payload_mut()[0..8].copy_from_slice(&[0xff; 8]);
        b.payload_mut().extend_from_slice(b"abc");
        let bytes = b.finish(0x01).unwrap();
        let frame = read_frame(&mut &bytes[..]).unwrap();
        assert_eq!(frame.payload, b"abc");
    }

    #[test]
    fn oversized_payload_rejected_before_stamping() {
        // A payload-size-faking writer: pushes one byte past MAX_PAYLOAD.
        // finish() must refuse with the typed error instead of stamping a
        // (possibly truncated) length header — at 4 GiB the `as u32` cast
        // would wrap and every later frame on the stream would misparse.
        let mut b = FrameBuilder::with_capacity(0);
        b.payload_mut()
            .resize(HEADER_LEN + MAX_PAYLOAD as usize + 1, 0xAB);
        let err = b.finish(0x01).unwrap_err();
        assert!(
            matches!(err, FrameError::TooLarge(n) if n == MAX_PAYLOAD as u64 + 1),
            "unexpected {err}"
        );
        // The boundary itself is fine.
        let mut b = FrameBuilder::with_capacity(0);
        b.payload_mut().resize(HEADER_LEN + MAX_PAYLOAD as usize, 0);
        let bytes = b.finish(0x01).unwrap();
        let frame = read_frame(&mut &bytes[..]).unwrap();
        assert_eq!(frame.payload.len(), MAX_PAYLOAD as usize);
        // encode_frame and write_frame surface the same rejection.
        let big = vec![0u8; MAX_PAYLOAD as usize + 1];
        assert!(matches!(
            encode_frame(0x01, &big),
            Err(FrameError::TooLarge(_))
        ));
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, 0x01, &big),
            Err(FrameError::TooLarge(_))
        ));
        assert!(sink.is_empty(), "nothing written for a rejected frame");
    }

    #[test]
    fn empty_payload_round_trips() {
        let bytes = encode_frame(0x04, &[]).unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + TRAILER_LEN);
        let frame = read_frame(&mut &bytes[..]).unwrap();
        assert_eq!(frame.payload, b"");
    }

    #[test]
    fn clean_eof_is_closed_mid_frame_is_truncated() {
        assert!(matches!(read_frame(&mut &b""[..]), Err(FrameError::Closed)));
        let bytes = encode_frame(0x01, b"abc").unwrap();
        for cut in 1..bytes.len() {
            assert!(
                matches!(read_frame(&mut &bytes[..cut]), Err(FrameError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corrupted_byte_is_detected() {
        let bytes = encode_frame(0x01, b"abcdef").unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            let err = read_frame(&mut &bad[..]).unwrap_err();
            // Depending on which byte flips we may see magic/version/length
            // errors first, but never a successful decode.
            match err {
                FrameError::BadMagic(_)
                | FrameError::BadVersion(_)
                | FrameError::Oversized(_)
                | FrameError::Truncated
                | FrameError::BadCrc { .. } => {}
                other => panic!("byte {i}: unexpected {other}"),
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = encode_frame(0x01, b"x").unwrap();
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(FrameError::Oversized(u32::MAX))
        ));
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = encode_frame(0x01, b"x").unwrap();
        bytes[2] = PROTOCOL_VERSION + 1;
        let crc = crc32(&bytes[..bytes.len() - TRAILER_LEN]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(FrameError::BadVersion(v)) if v == PROTOCOL_VERSION + 1
        ));
    }
}
