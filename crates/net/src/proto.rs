//! Typed requests and replies on top of [`crate::frame`].
//!
//! Message type bytes: requests are `0x01..=0x08`, responses set the high
//! bit (`0x81..=0x87`). Payload encodings are fixed little-endian layouts
//! described on each variant. Decoding is strict — trailing bytes, short
//! payloads, non-finite coordinates, unordered intervals, and out-of-range
//! dimensionalities are all typed errors, because the geometry types the
//! server builds from these payloads (`Rect::new`, `Point::new`) assert on
//! such inputs and a hostile client must not be able to reach an assert.

use std::fmt;

use pargrid_geom::{Point, Rect, MAX_DIM};
use pargrid_gridfile::Record;

/// Request: range query. Payload: `dim u16`, then `dim × (lo f64, hi f64)`.
pub const REQ_RANGE: u8 = 0x01;
/// Request: partial match. Payload: `dim u16`, then `dim ×` either tag
/// `0u8` (wildcard) or tag `1u8` + `value f64`.
pub const REQ_PARTIAL: u8 = 0x02;
/// Request: ping. Payload: `token u64`, echoed back.
pub const REQ_PING: u8 = 0x03;
/// Request: server stats as a Prometheus text document. Empty payload.
pub const REQ_STATS: u8 = 0x04;
/// Request: graceful server shutdown (admin; servers may refuse). Empty
/// payload.
pub const REQ_SHUTDOWN: u8 = 0x05;
/// Request: insert a record. Payload: `id u64`, `dim u16`, then
/// `dim × coord f64`.
pub const REQ_INSERT: u8 = 0x06;
/// Request: delete the record with this id at this key. Payload: `id u64`,
/// `dim u16`, then `dim × coord f64`.
pub const REQ_DELETE: u8 = 0x07;
/// Request: elastic rebalance (admin; servers may refuse). Payload:
/// `op u8` (1 = add workers, 2 = remove worker), `value u32`,
/// `dry_run u8` (0/1).
pub const REQ_REBALANCE: u8 = 0x08;

/// Response: records. Payload: `incomplete u8`, `elapsed_us u64`,
/// `comm_us u64`, `response_blocks u64`, `total_blocks u64`,
/// `cache_hits u64`, `n u32`, then `n ×` (`id u64`, `dim u16`,
/// `dim × coord f64`).
pub const RESP_RECORDS: u8 = 0x81;
/// Response: pong. Payload: `token u64`.
pub const RESP_PONG: u8 = 0x82;
/// Response: stats text. Payload: `len u32` + UTF-8 bytes.
pub const RESP_STATS: u8 = 0x83;
/// Response: typed error. Payload: `code u8`, code-specific fields, then
/// `len u32` + UTF-8 message.
pub const RESP_ERROR: u8 = 0x84;
/// Response: shutdown acknowledged. Empty payload.
pub const RESP_SHUTDOWN_ACK: u8 = 0x85;
/// Response: mutation acknowledged. Payload: `applied u8`,
/// `rewritten u32`, `created u32`, `freed u32` (bucket counts).
pub const RESP_MUTATION: u8 = 0x86;
/// Response: rebalance plan (and, unless a dry run, its execution)
/// summary. Payload: `applied u8`, `moves u32`, `moved_bytes u64`,
/// `full_moves u32`, `active_workers u32`, `predicted_objective f64`,
/// `baseline_objective f64`.
pub const RESP_REBALANCE: u8 = 0x87;

const ERR_MALFORMED: u8 = 1;
const ERR_OVERLOADED: u8 = 2;
const ERR_INCOMPLETE: u8 = 3;
const ERR_MUTATION: u8 = 4;
const ERR_NOT_LEADER: u8 = 5;

/// A request a client can put on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Orthogonal range query over the full dimensionality of the file.
    RangeQuery {
        /// Low corner, one value per dimension.
        lo: Vec<f64>,
        /// High corner; `lo[i] <= hi[i]` is enforced at decode time.
        hi: Vec<f64>,
    },
    /// Exact-match on a subset of attributes (`None` = wildcard).
    PartialMatch {
        /// One entry per dimension.
        keys: Vec<Option<f64>>,
    },
    /// Liveness probe carrying an arbitrary token.
    Ping {
        /// Echoed back verbatim in the pong.
        token: u64,
    },
    /// Fetch the server's Prometheus metrics document.
    Stats,
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// Insert a record at this key (dimensionality is validated against
    /// the file's at the server).
    Insert {
        /// Application record id.
        id: u64,
        /// One coordinate per dimension.
        key: Vec<f64>,
    },
    /// Delete the record with this id at this key; deleting an absent
    /// record succeeds with `applied == false` in the ack.
    Delete {
        /// Application record id.
        id: u64,
        /// One coordinate per dimension.
        key: Vec<f64>,
    },
    /// Resize the cluster (admin; servers may refuse, like `Shutdown`).
    Rebalance {
        /// What to do with the worker set.
        cmd: RebalanceCmd,
        /// Plan and report without moving any data or changing the layout.
        dry_run: bool,
    },
}

/// The resize a [`Request::Rebalance`] asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebalanceCmd {
    /// Activate this many standby workers and spread load onto them.
    AddWorkers(u32),
    /// Drain this worker slot and deactivate it.
    RemoveWorker(u32),
}

/// Everything a server can answer with.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Query answer.
    Records(RecordsReply),
    /// Ping echo.
    Pong {
        /// The token from the ping.
        token: u64,
    },
    /// Prometheus metrics document.
    StatsText(String),
    /// Typed rejection.
    Error(WireError),
    /// Graceful shutdown underway.
    ShutdownAck,
    /// Mutation applied (or cleanly found nothing to do).
    Mutation(MutationAck),
    /// Rebalance planned (and executed unless it was a dry run).
    Rebalance(RebalanceSummary),
}

/// What a rebalance did (or, for a dry run, would do) — the wire echo of
/// the engine's `RebalanceReport`, minus per-move detail.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RebalanceSummary {
    /// False for a dry run: the plan below was computed but not executed.
    pub applied: bool,
    /// Bucket copies moved (primary + replica).
    pub moves: u32,
    /// Page bytes those moves copied.
    pub moved_bytes: u64,
    /// Primary moves a full re-decluster of the target layout would have
    /// made — the denominator of the bounded-movement claim.
    pub full_moves: u32,
    /// Active workers after the resize.
    pub active_workers: u32,
    /// Co-residency objective of the repaired layout (lower is better).
    pub predicted_objective: f64,
    /// Co-residency objective of the full re-decluster baseline.
    pub baseline_objective: f64,
}

/// What an insert/delete did, in bucket counts — the wire echo of the
/// engine's `MutationOutcome`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutationAck {
    /// Whether the operation changed anything (a delete of an absent
    /// record acks with `false`).
    pub applied: bool,
    /// Buckets rewritten in place.
    pub rewritten: u32,
    /// Buckets created by splits.
    pub created: u32,
    /// Buckets freed by merges.
    pub freed: u32,
}

/// A successful query answer plus the engine's virtual cost accounting, so
/// remote clients see the same per-query economics as in-process sessions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecordsReply {
    /// True if some blocks could not be served (worker deaths, deadline).
    pub incomplete: bool,
    /// Virtual response time, microseconds.
    pub elapsed_us: u64,
    /// Virtual communication share of `elapsed_us`.
    pub comm_us: u64,
    /// Max blocks on any one worker (the paper's response-time proxy).
    pub response_blocks: u64,
    /// Total blocks fetched.
    pub total_blocks: u64,
    /// Buffer-cache hits.
    pub cache_hits: u64,
    /// Matching records, sorted by id.
    pub records: Vec<Record>,
}

/// Typed errors a server sends back instead of an answer.
///
/// `#[non_exhaustive]` (workspace error convention): downstream matches
/// carry a wildcard arm so new rejection codes stay a minor change.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The request could not be understood (bad frame follows a close; bad
    /// payload gets this reply first).
    Malformed(String),
    /// Admission queue full — shed, retry after the hinted delay.
    Overloaded {
        /// Client should back off at least this long.
        retry_after_ms: u32,
    },
    /// The engine answered, but incompletely (failed workers, deadline).
    Incomplete(String),
    /// An insert/delete could not be applied (WAL I/O failure, engine
    /// shut down). The write-ahead discipline guarantees a failed
    /// mutation changed nothing. In cluster mode a replication failure
    /// also reports this — there the outcome is *indeterminate* (the op
    /// may commit if the leader's log survives failover), matching the
    /// usual distributed-write contract.
    MutationFailed(String),
    /// This node is a standby coordinator; retry against `hint` (the
    /// current leader's client address, empty if unknown). Clients follow
    /// the hint with jittered backoff — see `pargrid-cluster`'s
    /// `ClusterClient`.
    NotLeader {
        /// Client address of the leader, if this standby knows it.
        hint: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Malformed(m) => write!(f, "malformed request: {m}"),
            WireError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded, retry after {retry_after_ms} ms")
            }
            WireError::Incomplete(m) => write!(f, "incomplete answer: {m}"),
            WireError::MutationFailed(m) => write!(f, "mutation failed: {m}"),
            WireError::NotLeader { hint } if hint.is_empty() => {
                write!(f, "not the leader (no leader known)")
            }
            WireError::NotLeader { hint } => write!(f, "not the leader; retry against {hint}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Payload decode failure: the frame was intact (magic/CRC passed) but its
/// contents violate the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ProtoError {}

pub(crate) fn err(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

/// Little-endian cursor over a payload; every read is bounds-checked.
/// Shared with [`crate::cluster_proto`], the worker/election plane.
pub(crate) struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    /// Bytes not yet consumed — the bound hostile length prefixes are
    /// checked against before any allocation.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| err("length overflow"))?;
        if end > self.buf.len() {
            return Err(err(format!(
                "payload too short: wanted {n} more bytes at offset {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn finite_f64(&mut self, what: &str) -> Result<f64, ProtoError> {
        let v = self.f64()?;
        if !v.is_finite() {
            return Err(err(format!("{what} is not finite")));
        }
        Ok(v)
    }

    pub(crate) fn done(&self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(err(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// `1..=MAX_DIM`, the range `Point::new`/`Rect::new` accept without
/// asserting.
pub(crate) fn checked_dim(dim: u16) -> Result<usize, ProtoError> {
    let d = dim as usize;
    if d == 0 || d > MAX_DIM {
        return Err(err(format!("dimension {d} outside 1..={MAX_DIM}")));
    }
    Ok(d)
}

/// Shared payload of `Insert`/`Delete`: `id u64, dim u16, dim × f64`.
fn encode_keyed(id: u64, key: &[f64]) -> Vec<u8> {
    let mut p = Vec::with_capacity(10 + key.len() * 8);
    p.extend_from_slice(&id.to_le_bytes());
    p.extend_from_slice(&(key.len() as u16).to_le_bytes());
    for v in key {
        p.extend_from_slice(&v.to_le_bytes());
    }
    p
}

fn decode_keyed(c: &mut Cur<'_>) -> Result<(u64, Vec<f64>), ProtoError> {
    let id = c.u64()?;
    let d = checked_dim(c.u16()?)?;
    let mut key = Vec::with_capacity(d);
    for _ in 0..d {
        key.push(c.finite_f64("mutation key coordinate")?);
    }
    Ok((id, key))
}

impl Request {
    /// Message type byte + payload for this request.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::RangeQuery { lo, hi } => {
                let mut p = Vec::with_capacity(2 + lo.len() * 16);
                p.extend_from_slice(&(lo.len() as u16).to_le_bytes());
                for (l, h) in lo.iter().zip(hi) {
                    p.extend_from_slice(&l.to_le_bytes());
                    p.extend_from_slice(&h.to_le_bytes());
                }
                (REQ_RANGE, p)
            }
            Request::PartialMatch { keys } => {
                let mut p = Vec::with_capacity(2 + keys.len() * 9);
                p.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                for k in keys {
                    match k {
                        None => p.push(0),
                        Some(v) => {
                            p.push(1);
                            p.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                }
                (REQ_PARTIAL, p)
            }
            Request::Ping { token } => (REQ_PING, token.to_le_bytes().to_vec()),
            Request::Stats => (REQ_STATS, Vec::new()),
            Request::Shutdown => (REQ_SHUTDOWN, Vec::new()),
            Request::Insert { id, key } => (REQ_INSERT, encode_keyed(*id, key)),
            Request::Delete { id, key } => (REQ_DELETE, encode_keyed(*id, key)),
            Request::Rebalance { cmd, dry_run } => {
                let (op, value) = match cmd {
                    RebalanceCmd::AddWorkers(k) => (1u8, *k),
                    RebalanceCmd::RemoveWorker(w) => (2u8, *w),
                };
                let mut p = Vec::with_capacity(6);
                p.push(op);
                p.extend_from_slice(&value.to_le_bytes());
                p.push(*dry_run as u8);
                (REQ_REBALANCE, p)
            }
        }
    }

    /// Decodes a request payload. Total: every input maps to `Ok` or a
    /// typed [`ProtoError`].
    pub fn decode(msg_type: u8, payload: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cur::new(payload);
        let req = match msg_type {
            REQ_RANGE => {
                let d = checked_dim(c.u16()?)?;
                let mut lo = Vec::with_capacity(d);
                let mut hi = Vec::with_capacity(d);
                for i in 0..d {
                    let l = c.finite_f64("range lo")?;
                    let h = c.finite_f64("range hi")?;
                    if l > h {
                        return Err(err(format!("range dim {i}: lo {l} > hi {h}")));
                    }
                    lo.push(l);
                    hi.push(h);
                }
                Request::RangeQuery { lo, hi }
            }
            REQ_PARTIAL => {
                let d = checked_dim(c.u16()?)?;
                let mut keys = Vec::with_capacity(d);
                for i in 0..d {
                    match c.u8()? {
                        0 => keys.push(None),
                        1 => keys.push(Some(c.finite_f64("partial-match key")?)),
                        t => return Err(err(format!("key {i}: bad tag {t}"))),
                    }
                }
                Request::PartialMatch { keys }
            }
            REQ_PING => Request::Ping { token: c.u64()? },
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_INSERT => {
                let (id, key) = decode_keyed(&mut c)?;
                Request::Insert { id, key }
            }
            REQ_DELETE => {
                let (id, key) = decode_keyed(&mut c)?;
                Request::Delete { id, key }
            }
            REQ_REBALANCE => {
                let op = c.u8()?;
                let value = c.u32()?;
                let cmd = match op {
                    1 => RebalanceCmd::AddWorkers(value),
                    2 => RebalanceCmd::RemoveWorker(value),
                    t => return Err(err(format!("bad rebalance op {t}"))),
                };
                let dry_run = match c.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(err(format!("bad dry-run flag {t}"))),
                };
                Request::Rebalance { cmd, dry_run }
            }
            t => return Err(err(format!("unknown request type {t:#04x}"))),
        };
        c.done()?;
        Ok(req)
    }

    /// The query rectangle this request denotes over `domain`, or `None`
    /// for non-query requests.
    ///
    /// A partial match is a degenerate range: `[v, v]` on each specified
    /// attribute and the full domain extent on wildcards — exactly the
    /// equivalence the paper uses when it treats partial match as a range
    /// query with zero-width intervals. Returns a [`WireError::Malformed`]
    /// if the request's dimensionality does not match the file's.
    pub fn to_rect(&self, domain: &Rect) -> Result<Option<Rect>, WireError> {
        let dim = domain.dim();
        match self {
            Request::RangeQuery { lo, hi } => {
                if lo.len() != dim {
                    return Err(WireError::Malformed(format!(
                        "query has {} dims, file has {dim}",
                        lo.len()
                    )));
                }
                Ok(Some(Rect::new(Point::new(lo), Point::new(hi))))
            }
            Request::PartialMatch { keys } => {
                if keys.len() != dim {
                    return Err(WireError::Malformed(format!(
                        "query has {} dims, file has {dim}",
                        keys.len()
                    )));
                }
                let mut lo = Vec::with_capacity(dim);
                let mut hi = Vec::with_capacity(dim);
                for (i, k) in keys.iter().enumerate() {
                    match k {
                        Some(v) => {
                            lo.push(*v);
                            hi.push(*v);
                        }
                        None => {
                            lo.push(domain.lo().coords()[i]);
                            hi.push(domain.hi().coords()[i]);
                        }
                    }
                }
                Ok(Some(Rect::new(Point::new(&lo), Point::new(&hi))))
            }
            _ => Ok(None),
        }
    }
}

impl Response {
    /// Message type byte + payload for this response (allocates a payload
    /// vector; the server's write path uses [`Response::encode_frame`]
    /// instead, which serializes straight into the wire buffer).
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut p = Vec::new();
        let t = self.encode_into(&mut p);
        (t, p)
    }

    /// Encodes this response as complete wire bytes in **one allocation and
    /// zero payload copies**: the payload is serialized directly into a
    /// [`FrameBuilder`](crate::frame::FrameBuilder)'s buffer and framed in
    /// place. The old path (`encode()` then `encode_frame(t, &p)`) built
    /// the payload, then copied it into a second buffer — the difference is
    /// the `frame_encode/*` pair in `BENCH_hotpath.json`.
    pub fn encode_frame(&self) -> Result<Vec<u8>, crate::frame::FrameError> {
        let mut b = crate::frame::FrameBuilder::with_capacity(self.payload_size_hint());
        let t = self.encode_into(b.payload_mut());
        b.finish(t)
    }

    /// Exact or near-exact payload size, so the single wire allocation is
    /// also the right size.
    fn payload_size_hint(&self) -> usize {
        match self {
            Response::Records(r) => 45 + r.records.len() * (10 + 8 * MAX_DIM),
            Response::Pong { .. } => 8,
            Response::StatsText(s) => 4 + s.len(),
            Response::Error(e) => match e {
                WireError::Overloaded { .. } => 9,
                WireError::Malformed(m)
                | WireError::Incomplete(m)
                | WireError::MutationFailed(m) => 5 + m.len(),
                WireError::NotLeader { hint } => 5 + hint.len(),
            },
            Response::ShutdownAck => 0,
            Response::Mutation(_) => 13,
            Response::Rebalance(_) => 37,
        }
    }

    /// Serializes this response's payload onto the end of `p` (append-only)
    /// and returns the message type byte. The common engine of
    /// [`Response::encode`] and [`Response::encode_frame`].
    fn encode_into(&self, p: &mut Vec<u8>) -> u8 {
        match self {
            Response::Records(r) => {
                p.reserve(self.payload_size_hint());
                p.push(r.incomplete as u8);
                for v in [
                    r.elapsed_us,
                    r.comm_us,
                    r.response_blocks,
                    r.total_blocks,
                    r.cache_hits,
                ] {
                    p.extend_from_slice(&v.to_le_bytes());
                }
                p.extend_from_slice(&(r.records.len() as u32).to_le_bytes());
                for rec in &r.records {
                    p.extend_from_slice(&rec.id.to_le_bytes());
                    let coords = rec.point.coords();
                    p.extend_from_slice(&(coords.len() as u16).to_le_bytes());
                    for c in coords {
                        p.extend_from_slice(&c.to_le_bytes());
                    }
                }
                RESP_RECORDS
            }
            Response::Pong { token } => {
                p.extend_from_slice(&token.to_le_bytes());
                RESP_PONG
            }
            Response::StatsText(s) => {
                p.reserve(4 + s.len());
                p.extend_from_slice(&(s.len() as u32).to_le_bytes());
                p.extend_from_slice(s.as_bytes());
                RESP_STATS
            }
            Response::Error(e) => {
                let msg: &str = match e {
                    WireError::Malformed(m) => {
                        p.push(ERR_MALFORMED);
                        m
                    }
                    WireError::Overloaded { retry_after_ms } => {
                        p.push(ERR_OVERLOADED);
                        p.extend_from_slice(&retry_after_ms.to_le_bytes());
                        ""
                    }
                    WireError::Incomplete(m) => {
                        p.push(ERR_INCOMPLETE);
                        m
                    }
                    WireError::MutationFailed(m) => {
                        p.push(ERR_MUTATION);
                        m
                    }
                    WireError::NotLeader { hint } => {
                        p.push(ERR_NOT_LEADER);
                        hint
                    }
                };
                p.extend_from_slice(&(msg.len() as u32).to_le_bytes());
                p.extend_from_slice(msg.as_bytes());
                RESP_ERROR
            }
            Response::ShutdownAck => RESP_SHUTDOWN_ACK,
            Response::Mutation(a) => {
                p.push(a.applied as u8);
                p.extend_from_slice(&a.rewritten.to_le_bytes());
                p.extend_from_slice(&a.created.to_le_bytes());
                p.extend_from_slice(&a.freed.to_le_bytes());
                RESP_MUTATION
            }
            Response::Rebalance(r) => {
                p.push(r.applied as u8);
                p.extend_from_slice(&r.moves.to_le_bytes());
                p.extend_from_slice(&r.moved_bytes.to_le_bytes());
                p.extend_from_slice(&r.full_moves.to_le_bytes());
                p.extend_from_slice(&r.active_workers.to_le_bytes());
                p.extend_from_slice(&r.predicted_objective.to_le_bytes());
                p.extend_from_slice(&r.baseline_objective.to_le_bytes());
                RESP_REBALANCE
            }
        }
    }

    /// Decodes a response payload. Total, like [`Request::decode`].
    pub fn decode(msg_type: u8, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cur::new(payload);
        let resp = match msg_type {
            RESP_RECORDS => {
                let incomplete = match c.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(err(format!("bad incomplete flag {t}"))),
                };
                let elapsed_us = c.u64()?;
                let comm_us = c.u64()?;
                let response_blocks = c.u64()?;
                let total_blocks = c.u64()?;
                let cache_hits = c.u64()?;
                let n = c.u32()? as usize;
                // 14 bytes is the smallest possible record (1-D); a hostile
                // count can't make us allocate more than the payload holds.
                if n > payload.len() / 14 {
                    return Err(err(format!("record count {n} exceeds payload")));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = c.u64()?;
                    let d = checked_dim(c.u16()?)?;
                    let mut coords = [0.0; MAX_DIM];
                    for slot in coords.iter_mut().take(d) {
                        *slot = c.finite_f64("record coordinate")?;
                    }
                    records.push(Record::new(id, Point::new(&coords[..d])));
                }
                Response::Records(RecordsReply {
                    incomplete,
                    elapsed_us,
                    comm_us,
                    response_blocks,
                    total_blocks,
                    cache_hits,
                    records,
                })
            }
            RESP_PONG => Response::Pong { token: c.u64()? },
            RESP_STATS => {
                let n = c.u32()? as usize;
                let bytes = c.take(n)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| err("stats text is not utf-8"))?
                    .to_string();
                Response::StatsText(s)
            }
            RESP_ERROR => {
                let code = c.u8()?;
                let e = match code {
                    ERR_MALFORMED | ERR_INCOMPLETE | ERR_MUTATION | ERR_NOT_LEADER => {
                        let n = c.u32()? as usize;
                        let bytes = c.take(n)?;
                        let msg = std::str::from_utf8(bytes)
                            .map_err(|_| err("error text is not utf-8"))?
                            .to_string();
                        match code {
                            ERR_MALFORMED => WireError::Malformed(msg),
                            ERR_INCOMPLETE => WireError::Incomplete(msg),
                            ERR_NOT_LEADER => WireError::NotLeader { hint: msg },
                            _ => WireError::MutationFailed(msg),
                        }
                    }
                    ERR_OVERLOADED => {
                        let retry_after_ms = c.u32()?;
                        let n = c.u32()? as usize;
                        c.take(n)?;
                        WireError::Overloaded { retry_after_ms }
                    }
                    t => return Err(err(format!("unknown error code {t}"))),
                };
                Response::Error(e)
            }
            RESP_SHUTDOWN_ACK => Response::ShutdownAck,
            RESP_MUTATION => {
                let applied = match c.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(err(format!("bad applied flag {t}"))),
                };
                Response::Mutation(MutationAck {
                    applied,
                    rewritten: c.u32()?,
                    created: c.u32()?,
                    freed: c.u32()?,
                })
            }
            RESP_REBALANCE => {
                let applied = match c.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(err(format!("bad applied flag {t}"))),
                };
                Response::Rebalance(RebalanceSummary {
                    applied,
                    moves: c.u32()?,
                    moved_bytes: c.u64()?,
                    full_moves: c.u32()?,
                    active_workers: c.u32()?,
                    predicted_objective: c.finite_f64("predicted objective")?,
                    baseline_objective: c.finite_f64("baseline objective")?,
                })
            }
            t => return Err(err(format!("unknown response type {t:#04x}"))),
        };
        c.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_request(req: Request) {
        let (t, p) = req.encode();
        assert_eq!(Request::decode(t, &p).unwrap(), req);
    }

    fn rt_response(resp: Response) {
        let (t, p) = resp.encode();
        assert_eq!(Response::decode(t, &p).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        rt_request(Request::RangeQuery {
            lo: vec![0.0, -5.5],
            hi: vec![1.0, 9.75],
        });
        rt_request(Request::PartialMatch {
            keys: vec![Some(3.25), None, Some(-1.0)],
        });
        rt_request(Request::Ping { token: u64::MAX });
        rt_request(Request::Stats);
        rt_request(Request::Shutdown);
        rt_request(Request::Insert {
            id: 99,
            key: vec![1.5, -2.5],
        });
        rt_request(Request::Delete {
            id: u64::MAX,
            key: vec![0.0, 0.0, 7.25],
        });
        rt_request(Request::Rebalance {
            cmd: RebalanceCmd::AddWorkers(2),
            dry_run: false,
        });
        rt_request(Request::Rebalance {
            cmd: RebalanceCmd::RemoveWorker(u32::MAX),
            dry_run: true,
        });
    }

    #[test]
    fn responses_round_trip() {
        rt_response(Response::Records(RecordsReply {
            incomplete: false,
            elapsed_us: 1234,
            comm_us: 56,
            response_blocks: 3,
            total_blocks: 9,
            cache_hits: 2,
            records: vec![
                Record::new(7, Point::new2(1.5, 2.5)),
                Record::new(8, Point::new2(-3.0, 4.0)),
            ],
        }));
        rt_response(Response::Pong { token: 42 });
        rt_response(Response::StatsText("# TYPE x counter\nx 1\n".into()));
        rt_response(Response::Error(WireError::Malformed("nope".into())));
        rt_response(Response::Error(WireError::Overloaded {
            retry_after_ms: 50,
        }));
        rt_response(Response::Error(WireError::Incomplete(
            "2 workers dead".into(),
        )));
        rt_response(Response::Error(WireError::MutationFailed(
            "wal device gone".into(),
        )));
        rt_response(Response::ShutdownAck);
        rt_response(Response::Mutation(MutationAck {
            applied: true,
            rewritten: 3,
            created: 1,
            freed: 0,
        }));
        rt_response(Response::Mutation(MutationAck::default()));
        rt_response(Response::Rebalance(RebalanceSummary {
            applied: true,
            moves: 17,
            moved_bytes: 1 << 40,
            full_moves: 80,
            active_workers: 9,
            predicted_objective: 0.625,
            baseline_objective: 0.5,
        }));
        rt_response(Response::Rebalance(RebalanceSummary::default()));
    }

    #[test]
    fn hostile_rebalance_payloads_yield_errors_not_panics() {
        // Unknown op byte.
        let mut p = vec![3u8];
        p.extend_from_slice(&1u32.to_le_bytes());
        p.push(0);
        assert!(Request::decode(REQ_REBALANCE, &p).is_err());
        // Bad dry-run flag.
        let mut p = vec![1u8];
        p.extend_from_slice(&1u32.to_le_bytes());
        p.push(7);
        assert!(Request::decode(REQ_REBALANCE, &p).is_err());
        // Truncated and trailing-garbage payloads.
        assert!(Request::decode(REQ_REBALANCE, &[1u8, 0]).is_err());
        let (t, mut p) = Request::Rebalance {
            cmd: RebalanceCmd::AddWorkers(1),
            dry_run: false,
        }
        .encode();
        p.push(0);
        assert!(Request::decode(t, &p).is_err());
        // NaN objective in the summary is rejected at decode time.
        let mut p = vec![1u8];
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&0u64.to_le_bytes());
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&f64::NAN.to_le_bytes());
        p.extend_from_slice(&0.5f64.to_le_bytes());
        assert!(Response::decode(RESP_REBALANCE, &p).is_err());
    }

    #[test]
    fn hostile_mutation_payloads_yield_errors_not_panics() {
        // NaN key coordinate would reach Point::new.
        let mut p = 5u64.to_le_bytes().to_vec();
        p.extend_from_slice(&1u16.to_le_bytes());
        p.extend_from_slice(&f64::NAN.to_le_bytes());
        assert!(Request::decode(REQ_INSERT, &p).is_err());
        // Zero and oversized dimensionality.
        let mut p = 5u64.to_le_bytes().to_vec();
        p.extend_from_slice(&0u16.to_le_bytes());
        assert!(Request::decode(REQ_DELETE, &p).is_err());
        let mut p = 5u64.to_le_bytes().to_vec();
        p.extend_from_slice(&((MAX_DIM + 1) as u16).to_le_bytes());
        assert!(Request::decode(REQ_INSERT, &p).is_err());
        // Bad applied flag in the ack.
        let mut p = vec![2u8];
        p.extend_from_slice(&[0u8; 12]);
        assert!(Response::decode(RESP_MUTATION, &p).is_err());
    }

    #[test]
    fn hostile_payloads_yield_errors_not_panics() {
        // NaN coordinate.
        let mut p = vec![1, 0];
        p.extend_from_slice(&f64::NAN.to_le_bytes());
        p.extend_from_slice(&1.0f64.to_le_bytes());
        assert!(Request::decode(REQ_RANGE, &p).is_err());
        // lo > hi would panic Rect::new if it got through.
        let mut p = vec![1, 0];
        p.extend_from_slice(&2.0f64.to_le_bytes());
        p.extend_from_slice(&1.0f64.to_le_bytes());
        assert!(Request::decode(REQ_RANGE, &p).is_err());
        // Zero and oversized dimensionality would panic Point::new.
        assert!(Request::decode(REQ_RANGE, &[0, 0]).is_err());
        let d = (MAX_DIM + 1) as u16;
        assert!(Request::decode(REQ_RANGE, &d.to_le_bytes()).is_err());
        // Trailing garbage is rejected.
        let (t, mut p) = Request::Ping { token: 1 }.encode();
        p.push(0);
        assert!(Request::decode(t, &p).is_err());
        // Hostile record count.
        let mut p = vec![0];
        p.extend_from_slice(&[0u8; 40]);
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Response::decode(RESP_RECORDS, &p).is_err());
    }

    #[test]
    fn partial_match_rect_is_degenerate_on_specified_dims() {
        let domain = Rect::new2(0.0, 0.0, 100.0, 200.0);
        let req = Request::PartialMatch {
            keys: vec![Some(42.0), None],
        };
        let rect = req.to_rect(&domain).unwrap().unwrap();
        assert_eq!(rect.lo().coords(), &[42.0, 0.0]);
        assert_eq!(rect.hi().coords(), &[42.0, 200.0]);
    }

    #[test]
    fn dim_mismatch_is_malformed_not_panic() {
        let domain = Rect::new2(0.0, 0.0, 1.0, 1.0);
        let req = Request::RangeQuery {
            lo: vec![0.0],
            hi: vec![1.0],
        };
        assert!(matches!(req.to_rect(&domain), Err(WireError::Malformed(_))));
    }
}
