//! Multi-threaded TCP server in front of a [`ParallelGridFile`].
//!
//! Thread topology (all `std::thread`, blocking I/O):
//!
//! ```text
//!   accept thread ──────────── spawns per connection ──┐
//!   reader (1/conn) ── decode ─┐                       │
//!                              ▼                       ▼
//!                   bounded admission queue      writer (1/conn)
//!                              │                       ▲
//!   dispatcher pool (N) ── QuerySession ── encode ─────┘
//! ```
//!
//! Admission control: readers `try_push` onto a bounded queue. A full
//! queue means the dispatcher pool is saturated — the reader immediately
//! answers `Overloaded { retry_after_ms }` and drops the request (load is
//! *shed*, never buffered unboundedly, so sojourn times stay bounded and
//! the server survives any offered load). Ping/Stats/Shutdown bypass the
//! queue: control traffic must work precisely when the data path is
//! saturated.
//!
//! Graceful shutdown (poison pill + socket drain): the shutdown flag stops
//! the accept loop; the queue is closed so dispatchers drain every already
//! admitted job and exit; the engine joins its workers
//! ([`ParallelGridFile::shutdown`]); then each connection's read half is
//! shut down so readers unblock and writers flush any queued replies
//! before the sockets drop.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use pargrid_geom::{Point, Rect};
use pargrid_gridfile::Record;
use pargrid_obs::{names, AtomicHistogram, PromWriter};
use pargrid_parallel::{ParallelGridFile, RebalanceOp};

use crate::cluster_proto::MetaOp;
use crate::frame::{read_frame, FrameError};
use crate::proto::{
    MutationAck, RebalanceCmd, RebalanceSummary, RecordsReply, Request, Response, WireError,
};

/// Pre-apply gate for mutations: `Err` refuses the op and is sent to the
/// client verbatim.
pub type MutationGate = Arc<dyn Fn(&MetaOp) -> Result<(), WireError> + Send + Sync>;

/// Seams a cluster coordinator installs on its embedded server. The
/// server itself stays cluster-agnostic: single-node serving passes
/// `None` and behaves exactly as before.
#[derive(Clone)]
pub struct ClusterHooks {
    /// Called with each acknowledged-to-be mutation *before* it is
    /// applied to the engine. The coordinator uses it to replicate the
    /// operation to every standby's metadata log; an `Err` (e.g. lost
    /// leadership, standby unreachable) refuses the mutation and is sent
    /// to the client verbatim. Holding a lock inside the gate serializes
    /// mutations — the cluster trades single-node write concurrency for
    /// read-your-write across failover.
    pub mutation_gate: MutationGate,
    /// Appends coordinator gauges (leadership, lease epoch, worker
    /// liveness) to the server's Prometheus document.
    pub extra_metrics: Arc<dyn Fn(&mut PromWriter) + Send + Sync>,
}

impl std::fmt::Debug for ClusterHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterHooks").finish_non_exhaustive()
    }
}

/// Tunables for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Admission-queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Dispatcher threads, each owning a private `QuerySession`.
    pub dispatchers: usize,
    /// Retry hint sent with `Overloaded` replies, milliseconds.
    pub retry_after_ms: u32,
    /// Wall-clock service pacing: after answering a query the dispatcher
    /// sleeps `pace_us_per_block ×` the query's `response_blocks`
    /// microseconds. Zero disables pacing. `response_blocks` — blocks on
    /// the busiest disk — is the paper's response-time metric and is
    /// independent of cache state, so pacing on it ties real serving
    /// capacity directly to declustering quality: a method that halves
    /// response blocks doubles the server's wall-clock throughput in the
    /// `repro serving` experiment.
    pub pace_us_per_block: u64,
    /// Whether a wire `Shutdown` request is honored (CI and tests) or
    /// refused as malformed (default off would complicate the smoke job;
    /// the CLI enables it explicitly).
    pub allow_remote_shutdown: bool,
    /// Whether a wire `Rebalance` request is honored. Same admin gating as
    /// `allow_remote_shutdown`: off by default, enabled explicitly by the
    /// CLI's `serve` command and by tests.
    pub allow_remote_rebalance: bool,
    /// Cluster-coordinator seams; `None` for single-node serving.
    pub cluster: Option<ClusterHooks>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            dispatchers: 4,
            retry_after_ms: 50,
            pace_us_per_block: 0,
            allow_remote_shutdown: false,
            allow_remote_rebalance: false,
            cluster: None,
        }
    }
}

/// What a dispatcher does with an admitted job. Mutations ride the same
/// admission queue as queries, so overload sheds them with the same
/// `Overloaded` back-pressure instead of buffering writes unboundedly.
enum Work {
    /// An already-validated query rectangle.
    Query(Rect),
    /// Insert this record.
    Insert(Record),
    /// Delete the record with this id at this key.
    Delete(u64, Point),
}

/// One admitted request: already validated, stamped with its arrival
/// time, carrying the channel back to its connection's writer.
struct Job {
    work: Work,
    enqueued: Instant,
    reply: mpsc::Sender<Vec<u8>>,
}

#[derive(Default)]
struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
    hwm: usize,
}

/// Hand-rolled bounded MPMC queue (`Mutex` + `Condvar`); `compat`
/// crossbeam has no bounded channel and admission control needs an exact
/// capacity check.
struct AdmissionQueue {
    inner: Mutex<QueueInner>,
    nonempty: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    fn new(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(QueueInner::default()),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Non-blocking admit; `Err` hands the job back (full or closed) so
    /// the reader sheds it.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut q = self.inner.lock().expect("admission queue");
        if q.closed || q.jobs.len() >= self.capacity {
            return Err(job);
        }
        q.jobs.push_back(job);
        q.hwm = q.hwm.max(q.jobs.len());
        drop(q);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed *and* drained, so every
    /// admitted request is answered before dispatchers exit.
    fn pop(&self) -> Option<Job> {
        let mut q = self.inner.lock().expect("admission queue");
        loop {
            if let Some(job) = q.jobs.pop_front() {
                return Some(job);
            }
            if q.closed {
                return None;
            }
            q = self.nonempty.wait(q).expect("admission queue");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("admission queue").closed = true;
        self.nonempty.notify_all();
    }

    fn depth(&self) -> usize {
        self.inner.lock().expect("admission queue").jobs.len()
    }

    fn hwm(&self) -> usize {
        self.inner.lock().expect("admission queue").hwm
    }
}

/// Lock-free serving counters, exported as Prometheus by
/// [`Server::metrics_prom`].
#[derive(Default)]
struct NetMetrics {
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    requests_total: AtomicU64,
    served_total: AtomicU64,
    mutations_total: AtomicU64,
    shed_total: AtomicU64,
    malformed_total: AtomicU64,
    rebalance_total: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    sojourn_us: AtomicHistogram,
    gap_blocks: AtomicHistogram,
}

struct Inner {
    engine: Arc<ParallelGridFile>,
    queue: AdmissionQueue,
    metrics: NetMetrics,
    config: ServerConfig,
    local_addr: SocketAddr,
    shutdown_requested: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
    io_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn request_shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::SeqCst);
    }

    fn metrics_prom(&self) -> String {
        let m = &self.metrics;
        let mut pw = PromWriter::new();
        pw.counter(
            names::NET_CONNECTIONS_TOTAL,
            "TCP connections accepted.",
            m.connections_total.load(Ordering::Relaxed),
        );
        pw.gauge(
            names::NET_CONNECTIONS_ACTIVE,
            "TCP connections currently open.",
            m.connections_active.load(Ordering::Relaxed) as f64,
        );
        pw.counter(
            names::NET_REQUESTS_TOTAL,
            "Wire requests decoded.",
            m.requests_total.load(Ordering::Relaxed),
        );
        pw.counter(
            names::NET_SERVED_TOTAL,
            "Query requests answered with records.",
            m.served_total.load(Ordering::Relaxed),
        );
        pw.counter(
            names::NET_MUTATIONS_TOTAL,
            "Insert/delete requests applied.",
            m.mutations_total.load(Ordering::Relaxed),
        );
        pw.counter(
            names::NET_SHED_TOTAL,
            "Query requests shed by admission control.",
            m.shed_total.load(Ordering::Relaxed),
        );
        pw.counter(
            names::NET_MALFORMED_TOTAL,
            "Frames or payloads rejected as malformed.",
            m.malformed_total.load(Ordering::Relaxed),
        );
        pw.gauge(
            names::NET_QUEUE_DEPTH,
            "Admission-queue depth now.",
            self.queue.depth() as f64,
        );
        pw.gauge(
            names::NET_QUEUE_HWM,
            "Admission-queue high-water mark.",
            self.queue.hwm() as f64,
        );
        pw.counter(
            names::NET_BYTES_IN_TOTAL,
            "Bytes read from client sockets.",
            m.bytes_in.load(Ordering::Relaxed),
        );
        pw.counter(
            names::NET_BYTES_OUT_TOTAL,
            "Bytes written to client sockets.",
            m.bytes_out.load(Ordering::Relaxed),
        );
        pw.histogram(
            names::NET_SOJOURN_US,
            "Enqueue-to-reply sojourn time (wall microseconds).",
            &m.sojourn_us.snapshot(),
        );
        pw.histogram(
            names::FRONTIER_GAP_BLOCKS,
            "Per-query additive gap from the ceil(|Q|/M) declustering lower \
             bound (blocks on the busiest worker above provably optimal).",
            &m.gap_blocks.snapshot(),
        );
        pw.counter(
            names::NET_REBALANCE_TOTAL,
            "Wire rebalance requests honored (dry runs included).",
            m.rebalance_total.load(Ordering::Relaxed),
        );
        let es = self.engine.stats();
        pw.counter(
            names::ENGINE_QUERIES_TOTAL,
            "Queries admitted by the engine.",
            es.queries,
        );
        pw.gauge(
            names::ENGINE_WORKERS_ALIVE,
            "Engine workers alive.",
            es.live_workers() as f64,
        );
        pw.counter(
            names::NET_REBALANCE_MOVES_TOTAL,
            "Bucket copies migrated by rebalances.",
            es.rebalance_moves,
        );
        pw.counter(
            names::NET_REBALANCE_BYTES_TOTAL,
            "Page bytes copied by rebalance migrations.",
            es.rebalance_bytes,
        );
        let owned: Vec<(String, f64)> = self
            .engine
            .worker_buckets()
            .iter()
            .enumerate()
            .map(|(w, &n)| (w.to_string(), n as f64))
            .collect();
        pw.gauge_per_label(
            names::NET_WORKER_BUCKETS,
            "Primary buckets owned per worker slot.",
            "worker",
            &owned,
        );
        if let Some(hooks) = &self.config.cluster {
            (hooks.extra_metrics)(&mut pw);
        }
        pw.finish()
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// leaks the background threads until process exit; the CLI and tests
/// always shut down explicitly.
pub struct Server {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    dispatchers: Vec<JoinHandle<()>>,
}

/// `TcpStream` wrapper that counts bytes as the reader pulls frames.
struct CountingReader<'a> {
    stream: &'a TcpStream,
    bytes: &'a AtomicU64,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.stream.read(buf)?;
        self.bytes.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// dispatcher pool and accept thread, and returns immediately.
    pub fn start(
        engine: Arc<ParallelGridFile>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            queue: AdmissionQueue::new(config.queue_capacity),
            metrics: NetMetrics::default(),
            local_addr,
            shutdown_requested: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            io_handles: Mutex::new(Vec::new()),
            engine,
            config,
        });

        let mut dispatchers = Vec::new();
        for d in 0..inner.config.dispatchers.max(1) {
            let inner = Arc::clone(&inner);
            dispatchers.push(
                thread::Builder::new()
                    .name(format!("pargrid-dispatch-{d}"))
                    .spawn(move || dispatcher_loop(&inner))
                    .expect("spawn dispatcher"),
            );
        }

        let accept = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("pargrid-accept".into())
                .spawn(move || accept_loop(&listener, &inner))
                .expect("spawn acceptor")
        };

        Ok(Server {
            inner,
            accept: Some(accept),
            dispatchers,
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Current Prometheus metrics document (same text a wire `Stats`
    /// request returns).
    pub fn metrics_prom(&self) -> String {
        self.inner.metrics_prom()
    }

    /// Signals shutdown without waiting (a wire `Shutdown` request does
    /// exactly this internally).
    pub fn request_shutdown(&self) {
        self.inner.request_shutdown();
    }

    /// Blocks until shutdown is requested — by [`Server::request_shutdown`]
    /// or a wire `Shutdown` — then tears everything down in drain order:
    /// close the admission queue, join dispatchers (every admitted job is
    /// answered), join the engine's workers, unblock readers, flush
    /// writers. Returns the final metrics document.
    pub fn join(mut self) -> String {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.inner.queue.close();
        for h in self.dispatchers.drain(..) {
            let _ = h.join();
        }
        self.inner.engine.shutdown();
        // Shut the *read* half of every connection: blocked readers see
        // EOF and exit, dropping their reply senders, which lets writers
        // drain queued replies (the write half is still open) and exit.
        for conn in self.inner.conns.lock().expect("conn list").drain(..) {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let handles: Vec<_> = {
            let mut g = self.inner.io_handles.lock().expect("io handles");
            g.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        self.inner.metrics_prom()
    }

    /// [`Server::request_shutdown`] + [`Server::join`].
    pub fn shutdown(self) -> String {
        self.inner.request_shutdown();
        self.join()
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    while !inner.shutdown_requested.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                spawn_connection(stream, inner);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn spawn_connection(stream: TcpStream, inner: &Arc<Inner>) {
    inner
        .metrics
        .connections_total
        .fetch_add(1, Ordering::Relaxed);
    inner
        .metrics
        .connections_active
        .fetch_add(1, Ordering::Relaxed);

    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            inner
                .metrics
                .connections_active
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
    };
    if let Ok(track) = stream.try_clone() {
        inner.conns.lock().expect("conn list").push(track);
    }

    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();

    let writer = {
        let inner = Arc::clone(inner);
        thread::Builder::new()
            .name("pargrid-conn-writer".into())
            .spawn(move || writer_loop(write_stream, &reply_rx, &inner))
            .expect("spawn writer")
    };
    let reader = {
        let inner = Arc::clone(inner);
        thread::Builder::new()
            .name("pargrid-conn-reader".into())
            .spawn(move || {
                reader_loop(&stream, &reply_tx, &inner);
                drop(reply_tx); // writer drains then exits
                inner
                    .metrics
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            })
            .expect("spawn reader")
    };

    let mut g = inner.io_handles.lock().expect("io handles");
    g.push(reader);
    g.push(writer);
}

/// How many queued frames one vectored write may coalesce. Sixteen covers
/// any realistic reply burst while keeping the `IoSlice` array on the stack.
const WRITE_BATCH: usize = 16;

/// Writes every byte of `frames` with as few syscalls as the kernel allows:
/// one `writev` over the whole batch, advancing manually across partial
/// writes (a short write mid-batch must not re-send or drop bytes).
fn write_batch(stream: &mut TcpStream, frames: &[Vec<u8>]) -> io::Result<()> {
    // (frame index, offset into that frame) of the first unwritten byte.
    let (mut fi, mut off) = (0usize, 0usize);
    while fi < frames.len() {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(frames.len() - fi);
        slices.push(IoSlice::new(&frames[fi][off..]));
        for f in &frames[fi + 1..] {
            slices.push(IoSlice::new(f));
        }
        let mut n = match stream.write_vectored(&slices) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        while n > 0 {
            let rest = frames[fi].len() - off;
            if n < rest {
                off += n;
                n = 0;
            } else {
                n -= rest;
                fi += 1;
                off = 0;
            }
        }
    }
    stream.flush()
}

fn writer_loop(mut stream: TcpStream, rx: &mpsc::Receiver<Vec<u8>>, inner: &Arc<Inner>) {
    let mut batch: Vec<Vec<u8>> = Vec::with_capacity(WRITE_BATCH);
    while let Ok(bytes) = rx.recv() {
        // Coalesce every reply already queued behind this one into a single
        // vectored write — under load the writer makes one syscall per
        // burst instead of one write + flush per frame.
        batch.clear();
        batch.push(bytes);
        while batch.len() < WRITE_BATCH {
            match rx.try_recv() {
                Ok(more) => batch.push(more),
                Err(_) => break,
            }
        }
        if write_batch(&mut stream, &batch).is_err() {
            break;
        }
        let out: u64 = batch.iter().map(|b| b.len() as u64).sum();
        inner.metrics.bytes_out.fetch_add(out, Ordering::Relaxed);
    }
    let _ = stream.shutdown(Shutdown::Write);
}

/// Sends a response down the connection's writer channel, encoded straight
/// into its single wire buffer ([`Response::encode_frame`]). A response
/// too large to frame (over `MAX_PAYLOAD`) degrades to a typed error
/// reply instead of silently truncating its length header.
fn send_response(reply: &mpsc::Sender<Vec<u8>>, resp: &Response) {
    let bytes = match resp.encode_frame() {
        Ok(b) => b,
        Err(e) => Response::Error(WireError::Incomplete(format!("response unsendable: {e}")))
            .encode_frame()
            .expect("error reply is tiny"),
    };
    let _ = reply.send(bytes);
}

fn reader_loop(stream: &TcpStream, reply: &mpsc::Sender<Vec<u8>>, inner: &Arc<Inner>) {
    let mut counting = CountingReader {
        stream,
        bytes: &inner.metrics.bytes_in,
    };
    loop {
        let frame = match read_frame(&mut counting) {
            Ok(f) => f,
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => return,
            Err(e) => {
                // Framing is broken; one typed reply, then hang up — we
                // can no longer find frame boundaries on this stream.
                inner
                    .metrics
                    .malformed_total
                    .fetch_add(1, Ordering::Relaxed);
                send_response(reply, &Response::Error(WireError::Malformed(e.to_string())));
                return;
            }
        };
        let request = match Request::decode(frame.msg_type, &frame.payload) {
            Ok(r) => r,
            Err(e) => {
                // Frame boundaries are intact, only this payload is bad —
                // reply and keep the connection.
                inner
                    .metrics
                    .malformed_total
                    .fetch_add(1, Ordering::Relaxed);
                send_response(reply, &Response::Error(WireError::Malformed(e.to_string())));
                continue;
            }
        };
        inner.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::Ping { token } => send_response(reply, &Response::Pong { token }),
            Request::Stats => {
                send_response(reply, &Response::StatsText(inner.metrics_prom()));
            }
            Request::Shutdown => {
                if inner.config.allow_remote_shutdown {
                    send_response(reply, &Response::ShutdownAck);
                    inner.request_shutdown();
                    return;
                }
                send_response(
                    reply,
                    &Response::Error(WireError::Malformed("remote shutdown not permitted".into())),
                );
            }
            Request::Rebalance { cmd, dry_run } => {
                // Control path, like Shutdown: runs inline on the reader
                // thread, bypassing the admission queue, so a resize works
                // precisely when the data path is saturated. The engine
                // serializes it against mutations internally; queries keep
                // flowing throughout.
                if !inner.config.allow_remote_rebalance {
                    send_response(
                        reply,
                        &Response::Error(WireError::Malformed(
                            "remote rebalance not permitted".into(),
                        )),
                    );
                    continue;
                }
                let op = match cmd {
                    RebalanceCmd::AddWorkers(k) => RebalanceOp::AddWorkers(k as usize),
                    RebalanceCmd::RemoveWorker(w) => RebalanceOp::RemoveWorker(w as usize),
                };
                match inner.engine.rebalance(op, dry_run) {
                    Ok(rep) => {
                        inner
                            .metrics
                            .rebalance_total
                            .fetch_add(1, Ordering::Relaxed);
                        send_response(
                            reply,
                            &Response::Rebalance(RebalanceSummary {
                                applied: rep.applied,
                                moves: rep.moves as u32,
                                moved_bytes: rep.moved_bytes,
                                full_moves: rep.full_moves as u32,
                                active_workers: rep.active_workers as u32,
                                predicted_objective: rep.predicted_objective,
                                baseline_objective: rep.baseline_objective,
                            }),
                        );
                    }
                    Err(e) => send_response(
                        reply,
                        &Response::Error(WireError::MutationFailed(e.to_string())),
                    ),
                }
            }
            req @ (Request::RangeQuery { .. } | Request::PartialMatch { .. }) => {
                let domain = inner.engine.domain();
                let rect = match req.to_rect(domain) {
                    Ok(Some(rect)) => rect,
                    Ok(None) => unreachable!("query requests always map to a rect"),
                    Err(e) => {
                        inner
                            .metrics
                            .malformed_total
                            .fetch_add(1, Ordering::Relaxed);
                        send_response(reply, &Response::Error(e));
                        continue;
                    }
                };
                admit(inner, reply, Work::Query(rect));
            }
            Request::Insert { id, key } => match checked_point(inner, &key) {
                Ok(p) => admit(inner, reply, Work::Insert(Record::new(id, p))),
                Err(e) => send_response(reply, &Response::Error(e)),
            },
            Request::Delete { id, key } => match checked_point(inner, &key) {
                Ok(p) => admit(inner, reply, Work::Delete(id, p)),
                Err(e) => send_response(reply, &Response::Error(e)),
            },
        }
    }
}

/// Validates a mutation key against the file's dimensionality (decode
/// already guaranteed finite coordinates and `1..=MAX_DIM`), so hostile
/// wire data can never reach the engine's dimension assert.
fn checked_point(inner: &Arc<Inner>, key: &[f64]) -> Result<Point, WireError> {
    let dim = inner.engine.domain().dim();
    if key.len() != dim {
        inner
            .metrics
            .malformed_total
            .fetch_add(1, Ordering::Relaxed);
        return Err(WireError::Malformed(format!(
            "key has {} dims, file has {dim}",
            key.len()
        )));
    }
    Ok(Point::new(key))
}

/// Pushes validated work through admission control, shedding with
/// `Overloaded` when the queue is full — the same back-pressure for
/// queries and mutations.
fn admit(inner: &Arc<Inner>, reply: &mpsc::Sender<Vec<u8>>, work: Work) {
    let job = Job {
        work,
        enqueued: Instant::now(),
        reply: reply.clone(),
    };
    if inner.queue.try_push(job).is_err() {
        inner.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
        send_response(
            reply,
            &Response::Error(WireError::Overloaded {
                retry_after_ms: inner.config.retry_after_ms,
            }),
        );
    }
}

fn dispatcher_loop(inner: &Arc<Inner>) {
    let mut session = inner.engine.session();
    while let Some(job) = inner.queue.pop() {
        let resp = match job.work {
            Work::Query(rect) => {
                let outcome = session.query(&rect);
                let pace_us = inner.config.pace_us_per_block * outcome.response_blocks.max(1);
                if pace_us > 0 {
                    thread::sleep(Duration::from_micros(pace_us));
                }
                if outcome.incomplete {
                    Response::Error(WireError::Incomplete(format!(
                        "{} of {} engine workers alive",
                        inner.engine.stats().live_workers(),
                        inner.engine.n_workers(),
                    )))
                } else {
                    inner.metrics.served_total.fetch_add(1, Ordering::Relaxed);
                    // Distance from the frontier oracle's per-query bound:
                    // no layout can serve total_blocks on M live workers
                    // with fewer than ceil(total/M) on the busiest one.
                    let live = inner.engine.stats().live_workers().max(1) as u64;
                    let bound = outcome.total_blocks.div_ceil(live);
                    inner
                        .metrics
                        .gap_blocks
                        .record(outcome.response_blocks.saturating_sub(bound));
                    Response::Records(RecordsReply {
                        incomplete: outcome.incomplete,
                        elapsed_us: outcome.elapsed_us,
                        comm_us: outcome.comm_us,
                        response_blocks: outcome.response_blocks,
                        total_blocks: outcome.total_blocks,
                        cache_hits: outcome.cache_hits,
                        records: outcome.records,
                    })
                }
            }
            Work::Insert(rec) => match gate_mutation(inner, || MetaOp::Insert {
                id: rec.id,
                key: rec.point.coords().to_vec(),
            }) {
                Err(e) => Response::Error(e),
                Ok(()) => mutation_response(inner, inner.engine.insert(rec)),
            },
            Work::Delete(id, p) => match gate_mutation(inner, || MetaOp::Delete {
                id,
                key: p.coords().to_vec(),
            }) {
                Err(e) => Response::Error(e),
                Ok(()) => mutation_response(inner, inner.engine.delete(id, &p)),
            },
        };
        let sojourn = job.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
        inner.metrics.sojourn_us.record(sojourn);
        send_response(&job.reply, &resp);
    }
    let _ = session.close();
}

/// Runs the cluster mutation gate, if installed. A gated mutation that
/// later fails in the engine leaves the replicated log ahead of the
/// engine — in cluster mode `MutationFailed` therefore means
/// *indeterminate*, not "nothing changed" (documented on
/// [`WireError::MutationFailed`]).
fn gate_mutation(inner: &Arc<Inner>, op: impl FnOnce() -> MetaOp) -> Result<(), WireError> {
    match &inner.config.cluster {
        Some(hooks) => (hooks.mutation_gate)(&op()),
        None => Ok(()),
    }
}

/// Folds the engine's mutation result into a wire response. The
/// write-ahead discipline means an `Err` guarantees nothing changed.
fn mutation_response(
    inner: &Arc<Inner>,
    result: Result<pargrid_parallel::MutationOutcome, pargrid_parallel::EngineError>,
) -> Response {
    match result {
        Ok(out) => {
            inner
                .metrics
                .mutations_total
                .fetch_add(1, Ordering::Relaxed);
            Response::Mutation(MutationAck {
                applied: out.applied,
                rewritten: out.rewritten_buckets.len() as u32,
                created: out.created_buckets.len() as u32,
                freed: out.freed_buckets.len() as u32,
            })
        }
        Err(e) => Response::Error(WireError::MutationFailed(e.to_string())),
    }
}
