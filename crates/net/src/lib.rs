//! `pargrid-net`: the TCP serving layer in front of the parallel grid file.
//!
//! Everything below the engine is virtual-time simulation; this crate is the
//! real network boundary the ROADMAP's "serving heavy traffic" north star
//! needs. It is built on `std::net` only — the repo's offline constraint
//! rules out tokio-shaped dependencies, and a thread-per-connection blocking
//! design is exactly the coordinator/worker SPMD shape of the paper's SP-2
//! program anyway.
//!
//! Four pieces:
//!
//! * [`frame`] — length-prefixed, CRC-32-trailered binary frames with a
//!   protocol version byte. Decoding hostile bytes can fail only into
//!   [`frame::FrameError`], never panic.
//! * [`proto`] — typed requests ([`proto::Request`]) and replies
//!   ([`proto::Response`]) with strict payload validation (dimension
//!   bounds, finite coordinates, ordered intervals) so wire data can never
//!   reach a panicking `Rect::new`/`Point::new` assert.
//! * [`server`] — a multi-threaded server owning an engine handle: one
//!   reader + one writer thread per connection around a bounded admission
//!   queue with load shedding, a dispatcher pool running
//!   [`pargrid_parallel::QuerySession`]s, Prometheus metrics, and graceful
//!   poison-pill shutdown.
//! * [`client`] + [`loadgen`] — a blocking client with connect
//!   retry/backoff, and an open-loop load generator (schedule-corrected
//!   sojourn times, wrk2-style) used by the `repro serving` experiment.

#![warn(missing_docs)]

pub mod client;
pub mod cluster_proto;
pub mod frame;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use cluster_proto::{ClusterRequest, ClusterResponse, MetaOp, WireReply};
pub use frame::{
    read_frame, write_frame, Frame, FrameBuilder, FrameError, MAX_PAYLOAD, PROTOCOL_VERSION,
};
pub use loadgen::{LoadQuery, LoadgenConfig, LoadgenReport};
pub use proto::{
    MutationAck, ProtoError, RebalanceCmd, RebalanceSummary, RecordsReply, Request, Response,
    WireError,
};
pub use server::{ClusterHooks, Server, ServerConfig};

/// The crate's most commonly used types, flat: client/server construction
/// and the typed errors every wire surface reports ([`FrameError`],
/// [`ProtoError`], [`WireError`], [`ClientError`] — all `#[non_exhaustive]`
/// per the workspace error convention).
pub mod prelude {
    pub use crate::client::{Client, ClientError};
    pub use crate::cluster_proto::{ClusterRequest, ClusterResponse, MetaOp, WireReply};
    pub use crate::frame::{Frame, FrameBuilder, FrameError};
    pub use crate::proto::{
        MutationAck, ProtoError, RebalanceCmd, RebalanceSummary, RecordsReply, Request, Response,
        WireError,
    };
    pub use crate::server::{ClusterHooks, Server, ServerConfig};
}
