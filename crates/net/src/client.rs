//! Blocking client for the pargrid wire protocol.
//!
//! One request in flight per connection (the protocol has no request ids;
//! replies come back in order, and the server's per-connection writer
//! preserves that order). Concurrency comes from opening more
//! connections, which is also what the load generator does.

use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{
    MutationAck, ProtoError, RebalanceCmd, RebalanceSummary, RecordsReply, Request, Response,
    WireError,
};

/// Everything a request round-trip can fail with.
///
/// `#[non_exhaustive]` (workspace error convention): downstream matches
/// carry a wildcard arm so new failure modes stay a minor change.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// Socket or framing failure.
    Frame(FrameError),
    /// The reply frame decoded to garbage.
    Proto(ProtoError),
    /// The server answered with a typed error (`Overloaded` is the one
    /// callers usually want to match on).
    Server(WireError),
    /// The server answered with the wrong response type for the request.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl ClientError {
    /// `Some(hint)` if this is an `Overloaded` shed — the caller should
    /// back off at least that many milliseconds.
    pub fn retry_after_ms(&self) -> Option<u32> {
        match self {
            ClientError::Server(WireError::Overloaded { retry_after_ms }) => Some(*retry_after_ms),
            _ => None,
        }
    }
}

/// A connected blocking client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Single connection attempt.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Connects with jittered exponential backoff: `attempts` tries,
    /// sleeping `base_backoff × 2^i × U(0.5, 1.5)` between them (the PR 4
    /// retransmit shape, de-synchronized). Without the jitter a fleet of
    /// reconnecting clients — e.g. every worker proxy after a coordinator
    /// failover — retries in lockstep and hammers the listener in bursts.
    /// Lets tests and the load generator start before the server finishes
    /// binding.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        attempts: u32,
        base_backoff: Duration,
    ) -> std::io::Result<Client> {
        let mut rng = jitter_seed();
        let mut last = None;
        for i in 0..attempts.max(1) {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) => last = Some(e),
            }
            if i + 1 < attempts {
                let base = base_backoff * 2u32.saturating_pow(i).min(64);
                // ±50% multiplicative jitter: scale by 512..=1536 / 1024.
                let scale = 512 + (xorshift(&mut rng) % 1025) as u32;
                thread::sleep(base * scale / 1024);
            }
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("no connect attempts made")))
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let (t, p) = req.encode();
        write_frame(&mut self.writer, t, &p)?;
        self.writer.flush().map_err(FrameError::Io)?;
        let frame = read_frame(&mut self.reader)?;
        let resp = Response::decode(frame.msg_type, &frame.payload)?;
        if let Response::Error(e) = resp {
            return Err(ClientError::Server(e));
        }
        Ok(resp)
    }

    /// Runs a range query; coordinates must match the file's
    /// dimensionality.
    pub fn range_query(&mut self, lo: &[f64], hi: &[f64]) -> Result<RecordsReply, ClientError> {
        let req = Request::RangeQuery {
            lo: lo.to_vec(),
            hi: hi.to_vec(),
        };
        match self.round_trip(&req)? {
            Response::Records(r) => Ok(r),
            _ => Err(ClientError::Unexpected("wanted Records")),
        }
    }

    /// Runs a partial-match query (`None` = wildcard attribute).
    pub fn partial_match(&mut self, keys: &[Option<f64>]) -> Result<RecordsReply, ClientError> {
        let req = Request::PartialMatch {
            keys: keys.to_vec(),
        };
        match self.round_trip(&req)? {
            Response::Records(r) => Ok(r),
            _ => Err(ClientError::Unexpected("wanted Records")),
        }
    }

    /// Inserts a record; `key` must match the file's dimensionality.
    /// Returns the server's ack with split/merge bucket counts.
    pub fn insert(&mut self, id: u64, key: &[f64]) -> Result<MutationAck, ClientError> {
        let req = Request::Insert {
            id,
            key: key.to_vec(),
        };
        match self.round_trip(&req)? {
            Response::Mutation(a) => Ok(a),
            _ => Err(ClientError::Unexpected("wanted Mutation")),
        }
    }

    /// Deletes the record with `id` at `key` (both must match). Deleting
    /// an absent record succeeds with `applied == false`.
    pub fn delete(&mut self, id: u64, key: &[f64]) -> Result<MutationAck, ClientError> {
        let req = Request::Delete {
            id,
            key: key.to_vec(),
        };
        match self.round_trip(&req)? {
            Response::Mutation(a) => Ok(a),
            _ => Err(ClientError::Unexpected("wanted Mutation")),
        }
    }

    /// Liveness probe; returns the echoed token.
    pub fn ping(&mut self, token: u64) -> Result<u64, ClientError> {
        match self.round_trip(&Request::Ping { token })? {
            Response::Pong { token } => Ok(token),
            _ => Err(ClientError::Unexpected("wanted Pong")),
        }
    }

    /// Fetches the server's Prometheus metrics document.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::StatsText(s) => Ok(s),
            _ => Err(ClientError::Unexpected("wanted StatsText")),
        }
    }

    /// Asks the server to resize its worker set (`dry_run` plans without
    /// moving data). The server must have been started with
    /// `allow_remote_rebalance`; a refused or invalid request comes back
    /// as `ClientError::Server`. This call blocks until the migration
    /// completes — queries keep being answered by the server throughout.
    pub fn rebalance(
        &mut self,
        cmd: RebalanceCmd,
        dry_run: bool,
    ) -> Result<RebalanceSummary, ClientError> {
        match self.round_trip(&Request::Rebalance { cmd, dry_run })? {
            Response::Rebalance(r) => Ok(r),
            _ => Err(ClientError::Unexpected("wanted Rebalance")),
        }
    }

    /// Asks the server to shut down gracefully; `Ok` once acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            _ => Err(ClientError::Unexpected("wanted ShutdownAck")),
        }
    }
}

/// Per-call jitter seed: wall-clock nanos mixed with a process-wide
/// counter so concurrent callers in one process diverge too. The crate
/// deliberately has no RNG dependency; backoff jitter only needs to be
/// *uncorrelated*, not high-quality.
fn jitter_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SALT: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x9e37_79b9_7f4a_7c15);
    let salt = SALT.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    (nanos ^ salt) | 1 // xorshift must not start at 0
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[cfg(test)]
mod tests {
    use super::{jitter_seed, xorshift};

    #[test]
    fn jitter_scale_stays_within_half_to_one_and_a_half() {
        let mut rng = jitter_seed();
        for _ in 0..10_000 {
            let scale = 512 + (xorshift(&mut rng) % 1025) as u32;
            assert!((512..=1536).contains(&scale));
        }
    }

    #[test]
    fn jitter_streams_diverge() {
        let mut a = jitter_seed();
        let mut b = jitter_seed();
        let same = (0..64)
            .filter(|_| xorshift(&mut a) == xorshift(&mut b))
            .count();
        assert!(same < 64, "two backoff streams should not be in lockstep");
    }
}
