//! Open-loop load generator for the serving experiment.
//!
//! Each client thread schedules arrival `k` at `start + k / rate` and
//! measures sojourn from the *scheduled* arrival time to reply receipt —
//! the wrk2 correction for coordinated omission. A blocking connection
//! that falls behind does not silently thin the offered load; the next
//! request fires immediately and its sojourn includes the time it spent
//! waiting its turn, exactly as a queueing-theory open arrival would.
//!
//! `Overloaded` replies are counted as shed (the request *was* offered and
//! the server chose to reject it) and are not retried: the generator
//! exists to map the offered-load / served-throughput curve, and retrying
//! would fold the shed traffic back into the arrival process.

use std::thread;
use std::time::{Duration, Instant};

use pargrid_obs::Histogram;

use crate::client::{Client, ClientError};

/// One query template, cycled through by the generator.
#[derive(Clone, Debug)]
pub enum LoadQuery {
    /// Range query.
    Range {
        /// Low corner.
        lo: Vec<f64>,
        /// High corner.
        hi: Vec<f64>,
    },
    /// Partial-match query.
    Partial {
        /// One entry per dimension, `None` = wildcard.
        keys: Vec<Option<f64>>,
    },
}

/// Parameters for one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Arrival rate per client, queries/second. Total offered rate is
    /// `clients × rate_per_client`.
    pub rate_per_client: f64,
    /// How long to generate load.
    pub duration: Duration,
    /// Query templates, cycled (each client starts at a different offset
    /// so the fleet does not issue identical queries in lockstep).
    pub queries: Vec<LoadQuery>,
}

/// Aggregated outcome of a run.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests actually put on the wire.
    pub offered: u64,
    /// Answered with records.
    pub served: u64,
    /// Rejected `Overloaded` by admission control.
    pub shed: u64,
    /// Connection or protocol failures.
    pub errors: u64,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Sojourn times of *served* requests, scheduled-arrival → reply,
    /// wall microseconds.
    pub sojourn_us: Histogram,
}

impl LoadgenReport {
    /// Served queries per wall second.
    pub fn served_qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.served as f64 / self.elapsed.as_secs_f64()
    }

    /// Fraction of offered requests that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed as f64 / self.offered as f64
    }

    /// Sojourn quantile in microseconds (0.5 / 0.95 / 0.99 are the ones
    /// the experiment reports).
    pub fn sojourn_quantile_us(&self, q: f64) -> u64 {
        self.sojourn_us.quantile(q)
    }
}

struct ThreadReport {
    offered: u64,
    served: u64,
    shed: u64,
    errors: u64,
    sojourn_us: Histogram,
}

/// Runs the generator against `addr`, blocking until `duration` elapses
/// on every client thread.
pub fn run(addr: &str, config: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    assert!(
        !config.queries.is_empty(),
        "loadgen needs at least one query"
    );
    assert!(config.rate_per_client > 0.0, "rate must be positive");
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..config.clients.max(1) {
        let addr = addr.to_string();
        let cfg = config.clone();
        handles.push(thread::spawn(move || client_thread(&addr, &cfg, c)));
    }
    let mut report = LoadgenReport::default();
    let mut connect_err = None;
    for h in handles {
        match h.join().expect("loadgen thread panicked") {
            Ok(t) => {
                report.offered += t.offered;
                report.served += t.served;
                report.shed += t.shed;
                report.errors += t.errors;
                report.sojourn_us.merge(&t.sojourn_us);
            }
            Err(e) => connect_err = Some(e),
        }
    }
    if report.offered == 0 {
        if let Some(e) = connect_err {
            return Err(e);
        }
    }
    report.elapsed = started.elapsed();
    Ok(report)
}

fn client_thread(
    addr: &str,
    cfg: &LoadgenConfig,
    client_idx: usize,
) -> std::io::Result<ThreadReport> {
    let mut client = Client::connect_retry(addr, 5, Duration::from_millis(20))?;
    let mut t = ThreadReport {
        offered: 0,
        served: 0,
        shed: 0,
        errors: 0,
        sojourn_us: Histogram::new(),
    };
    let interval = Duration::from_secs_f64(1.0 / cfg.rate_per_client);
    // Phase-stagger the fleet: client `i` leads with offset `i/clients` of
    // one interval, so the aggregate arrival process is evenly spaced at
    // `clients × rate` instead of synchronized bursts of size `clients`
    // (which would overflow any admission queue smaller than the fleet at
    // every tick, no matter how low the offered load).
    let phase = interval.mul_f64(client_idx as f64 / cfg.clients.max(1) as f64);
    let start = Instant::now();
    let mut k: u32 = 0;
    loop {
        let scheduled = phase + interval * k;
        if scheduled >= cfg.duration {
            break;
        }
        let target = start + scheduled;
        let now = Instant::now();
        if now < target {
            thread::sleep(target - now);
        }
        let q = &cfg.queries[(client_idx + k as usize) % cfg.queries.len()];
        t.offered += 1;
        let result = match q {
            LoadQuery::Range { lo, hi } => client.range_query(lo, hi),
            LoadQuery::Partial { keys } => client.partial_match(keys),
        };
        match result {
            Ok(_reply) => {
                t.served += 1;
                let sojourn = target.elapsed().as_micros().min(u64::MAX as u128) as u64;
                t.sojourn_us.record(sojourn);
            }
            Err(e) if e.retry_after_ms().is_some() => t.shed += 1,
            Err(ClientError::Server(_)) => t.errors += 1,
            Err(_) => {
                // Transport broke; one reconnect attempt, then give up.
                t.errors += 1;
                match Client::connect_retry(addr, 3, Duration::from_millis(20)) {
                    Ok(c) => client = c,
                    Err(_) => break,
                }
            }
        }
        k += 1;
    }
    Ok(t)
}
