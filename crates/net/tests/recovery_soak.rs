//! Crash-injection recovery soak over the full stack.
//!
//! For each of several seeded crash points, a mutation stream runs
//! through the durable engine and is "killed" mid-stream — the process
//! state is dropped without a checkpoint and the WAL is left with a torn
//! half-record, exactly what dying inside an append (e.g. mid-split)
//! leaves on disk. Recovery must replay the acknowledged prefix with
//! zero lost and zero duplicated records, the un-acknowledged torn op
//! must never surface, and after finishing the stream the answers served
//! over a real `pargrid-net` socket must be byte-identical to a run that
//! never crashed.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use pargrid_core::{ConflictPolicy, DeclusterInput, DeclusterMethod, IndexScheme};
use pargrid_geom::{Point, Rect};
use pargrid_gridfile::durable::{DurableGridFile, WAL_FILE};
use pargrid_gridfile::{GridConfig, GridFile, Record, WalOp};
use pargrid_net::proto::{RecordsReply, Response};
use pargrid_net::{Client, Server, ServerConfig};
use pargrid_parallel::{EngineConfig, ParallelGridFile};

fn domain() -> Rect {
    Rect::new2(0.0, 0.0, 100.0, 100.0)
}

fn cfg() -> GridConfig {
    // Capacity 4: the clustered insert stream below splits constantly, so
    // every crash point lands near (or inside) directory growth.
    GridConfig::with_capacity(domain(), 4)
}

/// Initial dataset: 40 scattered records (ids 0..40).
fn initial_records() -> Vec<Record> {
    let mut recs = Vec::new();
    let mut x = 9u64;
    for i in 0..40u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        recs.push(Record::new(
            i,
            Point::new2(
                ((x >> 16) % 10000) as f64 / 100.0,
                ((x >> 40) % 10000) as f64 / 100.0,
            ),
        ));
    }
    recs
}

/// The deterministic mutation stream: 60 clustered inserts (ids 1000+)
/// that force repeated bucket splits, interleaved with deletes of both
/// seed records and earlier stream inserts (forcing buddy merges).
fn mutation_stream() -> Vec<WalOp> {
    let mut ops = Vec::new();
    for i in 0..60u64 {
        let p = Point::new2(30.0 + (i % 12) as f64 * 0.2, 70.0 + (i / 12) as f64 * 0.2);
        ops.push(WalOp::Insert(Record::new(1000 + i, p)));
        if i % 5 == 4 {
            let j = i - 2;
            let q = Point::new2(30.0 + (j % 12) as f64 * 0.2, 70.0 + (j / 12) as f64 * 0.2);
            ops.push(WalOp::Delete {
                id: 1000 + j,
                point: q,
            });
        }
    }
    ops
}

fn scratch(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pargrid-soak-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

/// Opens the durable directory (seeding it on first use) and builds a
/// 3-worker engine over the recovered grid with the WAL attached.
fn open_engine(dir: &PathBuf) -> (Arc<ParallelGridFile>, usize) {
    let durable = DurableGridFile::open(dir, cfg()).expect("recover durable dir");
    let recovered = durable.recovered_ops();
    let (gf, wal) = durable.into_parts();
    let input = DeclusterInput::from_grid_file(&gf);
    let assignment = DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance)
        .assign(&input, 3, 7);
    let engine = ParallelGridFile::build(Arc::new(gf), &assignment, EngineConfig::default());
    engine.attach_wal(wal);
    (Arc::new(engine), recovered)
}

fn apply(engine: &ParallelGridFile, op: &WalOp) {
    match op {
        WalOp::Insert(rec) => {
            engine.insert(*rec).expect("insert");
        }
        WalOp::Delete { id, point } => {
            engine.delete(*id, point).expect("delete");
        }
    }
}

/// The probe queries replayed over the wire after every run: full domain,
/// the split-heavy hot cluster, and two disjoint slices.
fn probe_rects() -> Vec<(Vec<f64>, Vec<f64>)> {
    vec![
        (vec![0.0, 0.0], vec![100.0, 100.0]),
        (vec![29.0, 69.0], vec![34.0, 76.0]),
        (vec![0.0, 0.0], vec![50.0, 50.0]),
        (vec![50.0, 50.0], vec![100.0, 100.0]),
    ]
}

/// Serves `engine` on a loopback socket and returns, per probe query, the
/// byte encoding of the sorted record set (cost fields zeroed) — the part
/// of a reply that must be bit-for-bit stable across runs.
fn serve_and_probe(engine: Arc<ParallelGridFile>) -> Vec<Vec<u8>> {
    let server = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client =
        Client::connect_retry(server.local_addr(), 5, Duration::from_millis(20)).expect("connect");
    let mut out = Vec::new();
    for (lo, hi) in probe_rects() {
        let reply = client.range_query(&lo, &hi).expect("probe query");
        let mut records = reply.records;
        records.sort_by_key(|r| r.id);
        let (_, payload) = Response::Records(RecordsReply {
            records,
            ..RecordsReply::default()
        })
        .encode();
        out.push(payload);
    }
    drop(client);
    server.shutdown();
    out
}

/// Sorted `(id, coord-bits)` multiset of a full-domain sweep.
fn engine_snapshot(engine: &ParallelGridFile) -> Vec<(u64, u64, u64)> {
    let gf = engine.snapshot_grid();
    let (_, recs) = gf.range_query(&domain());
    let mut out: Vec<(u64, u64, u64)> = recs
        .iter()
        .map(|r| (r.id, r.point.get(0).to_bits(), r.point.get(1).to_bits()))
        .collect();
    out.sort_unstable();
    out
}

fn seed_dir(name: &str) -> PathBuf {
    let dir = scratch(name);
    let mut d = DurableGridFile::open(&dir, cfg()).expect("fresh durable dir");
    for r in initial_records() {
        d.insert(r).expect("seed insert");
    }
    d.checkpoint().expect("seed checkpoint");
    dir
}

/// Expected state after the seed plus a prefix of the stream, computed on
/// a plain single-threaded grid file as the oracle.
fn oracle_snapshot(prefix: usize) -> Vec<(u64, u64, u64)> {
    let mut gf = GridFile::new(cfg());
    for r in initial_records() {
        gf.insert(r);
    }
    for op in &mutation_stream()[..prefix] {
        match op {
            WalOp::Insert(rec) => {
                gf.insert(*rec);
            }
            WalOp::Delete { id, point } => {
                gf.delete(*id, point);
            }
        }
    }
    let (_, recs) = gf.range_query(&domain());
    let mut out: Vec<(u64, u64, u64)> = recs
        .iter()
        .map(|r| (r.id, r.point.get(0).to_bits(), r.point.get(1).to_bits()))
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn crash_soak_recovers_identically_at_every_seeded_crash_point() {
    let ops = mutation_stream();

    // The never-crashed reference run.
    let ref_dir = seed_dir("reference");
    let (ref_engine, recovered) = open_engine(&ref_dir);
    assert_eq!(recovered, 0, "fresh checkpoint leaves nothing to replay");
    for op in &ops {
        apply(&ref_engine, op);
    }
    let reference_state = engine_snapshot(&ref_engine);
    let reference_replies = serve_and_probe(Arc::clone(&ref_engine));

    // Crash points seeded inside split storms: op 7 (first splits of the
    // hot cluster), 23 (mid-stream, after the first merges), and 51
    // (deep directory growth). Each run is killed mid-append on top.
    for crash_at in [7usize, 23, 51] {
        let dir = seed_dir(&format!("crash-{crash_at}"));
        {
            let (engine, _) = open_engine(&dir);
            for op in &ops[..crash_at] {
                apply(&engine, op);
            }
            // Kill: engine dropped with no checkpoint; the WAL holds every
            // acknowledged op. Dying inside the *next* append leaves its
            // first half as a torn tail.
            drop(engine);
            let wal_path = dir.join(WAL_FILE);
            let torn = ops[crash_at].encode();
            let mut bytes = std::fs::read(&wal_path).expect("read wal");
            bytes.extend_from_slice(&torn[..torn.len() / 2]);
            std::fs::write(&wal_path, &bytes).expect("write torn tail");
        }

        // Recover: exactly the acknowledged prefix, nothing lost, nothing
        // duplicated, torn op absent.
        let (engine, recovered) = open_engine(&dir);
        assert_eq!(
            recovered, crash_at,
            "crash at {crash_at}: every acknowledged op must replay, the torn one must not"
        );
        assert_eq!(
            engine_snapshot(&engine),
            oracle_snapshot(crash_at),
            "crash at {crash_at}: recovered state diverged from the oracle"
        );

        // Finish the stream (the torn op was never acknowledged, so the
        // client re-issues it) and compare the served answers.
        for op in &ops[crash_at..] {
            apply(&engine, op);
        }
        assert_eq!(
            engine_snapshot(&engine),
            reference_state,
            "crash at {crash_at}: final state diverged from the never-crashed run"
        );
        let replies = serve_and_probe(Arc::clone(&engine));
        assert_eq!(
            replies, reference_replies,
            "crash at {crash_at}: served replies must be byte-identical to the never-crashed run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// A second recovery immediately after the first (double crash, no new
/// mutations in between) is a no-op: recovery is idempotent.
#[test]
fn double_crash_recovery_is_idempotent() {
    let ops = mutation_stream();
    let dir = seed_dir("double");
    {
        let (engine, _) = open_engine(&dir);
        for op in &ops[..30] {
            apply(&engine, op);
        }
    }
    let (engine, recovered) = open_engine(&dir);
    assert_eq!(recovered, 30);
    let first = engine_snapshot(&engine);
    drop(engine);

    let (engine, recovered) = open_engine(&dir);
    assert_eq!(recovered, 30, "second recovery replays the same prefix");
    assert_eq!(engine_snapshot(&engine), first);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpointing mid-stream then crashing replays only post-checkpoint
/// ops, and the final served answers still match.
#[test]
fn checkpoint_then_crash_replays_only_the_suffix() {
    let ops = mutation_stream();
    let dir = seed_dir("ckpt-crash");
    {
        let (engine, _) = open_engine(&dir);
        for op in &ops[..20] {
            apply(&engine, op);
        }
        assert!(engine.checkpoint().expect("checkpoint"), "WAL is attached");
        assert_eq!(engine.wal_len_bytes(), 0, "checkpoint resets the WAL");
        for op in &ops[20..40] {
            apply(&engine, op);
        }
    }
    let (engine, recovered) = open_engine(&dir);
    assert_eq!(recovered, 20, "only the 20 post-checkpoint ops replay");
    assert_eq!(engine_snapshot(&engine), oracle_snapshot(40));
    let _ = std::fs::remove_dir_all(&dir);
}
