//! Wire-driven elastic rebalance under live traffic: a replicated engine
//! with standby slots behind a real TCP server, one client streaming
//! queries against a fixed oracle and another streaming inserts into a
//! disjoint region, while an admin connection grows and then shrinks the
//! cluster. Every reply during the migrations must be complete and
//! byte-identical to the pre-rebalance oracle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_geom::{Point, Rect};
use pargrid_gridfile::{GridConfig, GridFile, Record};
use pargrid_net::proto::{RecordsReply, Response};
use pargrid_net::{Client, ClientError, RebalanceCmd, Server, ServerConfig, WireError};
use pargrid_obs::{names, validate_prometheus};
use pargrid_parallel::{EngineConfig, ParallelGridFile};

const M: usize = 6;
const STANDBY: usize = 2;

fn sample_grid() -> Arc<GridFile> {
    let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 8);
    let mut recs = Vec::new();
    let mut x = 1u64;
    for i in 0..700u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        recs.push(Record::new(
            i,
            Point::new2(
                ((x >> 16) % 10000) as f64 / 100.0,
                ((x >> 40) % 10000) as f64 / 100.0,
            ),
        ));
    }
    Arc::new(GridFile::bulk_load(cfg, recs.iter().copied()))
}

fn build_engine() -> Arc<ParallelGridFile> {
    let gf = sample_grid();
    let input = DeclusterInput::from_grid_file(&gf);
    let ra = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(&input, M, 7);
    Arc::new(ParallelGridFile::build_replicated(
        gf,
        &ra,
        EngineConfig::default().with_standby_workers(STANDBY),
    ))
}

fn record_bytes(records: &[Record]) -> Vec<u8> {
    let (_, payload) = Response::Records(RecordsReply {
        records: records.to_vec(),
        ..RecordsReply::default()
    })
    .encode();
    payload
}

/// Query rectangles confined to `x, y < 45`, disjoint from the mutation
/// region below so the oracle stays valid while inserts land.
fn oracle_rects() -> Vec<[f64; 4]> {
    let mut rects = Vec::new();
    for i in 0..12u32 {
        let x = (i % 4) as f64 * 10.0;
        let y = (i / 4) as f64 * 12.0;
        rects.push([x, y, x + 8.0, y + 9.0]);
    }
    rects
}

#[test]
fn wire_rebalance_under_live_queries_and_mutations_stays_exact() {
    let engine = build_engine();
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            queue_capacity: 256,
            dispatchers: 2,
            allow_remote_rebalance: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let mut admin =
        Client::connect_retry(addr.as_str(), 5, Duration::from_millis(20)).expect("admin connect");
    let rects = oracle_rects();

    // Oracle through the wire, before any resize.
    let mut oracle_client = Client::connect(addr.as_str()).expect("oracle connect");
    let oracle: Vec<Vec<u8>> = rects
        .iter()
        .map(|r| {
            let reply = oracle_client
                .range_query(&r[..2], &r[2..])
                .expect("oracle query");
            assert!(!reply.incomplete);
            record_bytes(&reply.records)
        })
        .collect();

    // A dry run reports the plan without touching anything.
    let preview = admin
        .rebalance(RebalanceCmd::AddWorkers(STANDBY as u32), true)
        .expect("dry run");
    assert!(!preview.applied);
    assert!(preview.moves > 0);
    assert!(preview.full_moves > 0);
    assert_eq!(preview.active_workers, (M + STANDBY) as u32);

    let stop = AtomicBool::new(false);
    thread::scope(|s| {
        // Reader: loops the oracle queries; every reply must be complete
        // and byte-identical throughout both migrations.
        s.spawn(|| {
            let mut c = Client::connect(addr.as_str()).expect("query connect");
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let k = i % rects.len();
                let r = &rects[k];
                match c.range_query(&r[..2], &r[2..]) {
                    Ok(reply) => {
                        assert!(!reply.incomplete, "incomplete reply during migration");
                        assert_eq!(
                            record_bytes(&reply.records),
                            oracle[k],
                            "incorrect reply during migration (query {k})"
                        );
                    }
                    Err(e) if e.retry_after_ms().is_some() => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => panic!("query failed during migration: {e}"),
                }
                i += 1;
            }
        });
        // Writer: inserts into x, y ∈ [60, 95], disjoint from every oracle
        // rectangle, so mutations flow during the rebalances without
        // invalidating the oracle.
        s.spawn(|| {
            let mut c = Client::connect(addr.as_str()).expect("mutate connect");
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let x = 60.0 + (i % 50) as f64 * 0.7;
                let y = 60.0 + (i / 50 % 50) as f64 * 0.7;
                match c.insert(1_000_000 + i, &[x, y]) {
                    Ok(_) => {}
                    Err(e) if e.retry_after_ms().is_some() => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => panic!("insert failed during migration: {e}"),
                }
                i += 1;
            }
        });

        let grow = admin
            .rebalance(RebalanceCmd::AddWorkers(STANDBY as u32), false)
            .expect("grow");
        assert!(grow.applied);
        assert_eq!(grow.active_workers, (M + STANDBY) as u32);
        assert!(grow.moves > 0, "new workers must receive data");
        let shrink = admin
            .rebalance(RebalanceCmd::RemoveWorker(0), false)
            .expect("shrink");
        assert!(shrink.applied);
        assert_eq!(shrink.active_workers, (M + STANDBY - 1) as u32);
        stop.store(true, Ordering::Relaxed);
    });

    // Post-rebalance answers still match the oracle.
    for (r, expect) in rects.iter().zip(&oracle) {
        let reply = admin.range_query(&r[..2], &r[2..]).expect("post query");
        assert!(!reply.incomplete);
        assert_eq!(record_bytes(&reply.records), *expect);
    }

    // Progress is observable: rebalance counters and the per-worker
    // ownership gauge, with the drained slot at zero.
    let doc = admin.stats().expect("stats");
    validate_prometheus(&doc).expect("metrics must validate");
    assert!(
        doc.contains(&format!("{} 3", names::NET_REBALANCE_TOTAL)),
        "{doc}"
    );
    assert!(doc.contains(names::NET_REBALANCE_MOVES_TOTAL), "{doc}");
    assert!(doc.contains(names::NET_REBALANCE_BYTES_TOTAL), "{doc}");
    assert!(
        doc.contains(&format!("{}{{worker=\"0\"}} 0", names::NET_WORKER_BUCKETS)),
        "removed slot must export zero ownership:\n{doc}"
    );
    let moves_line = doc
        .lines()
        .find(|l| l.starts_with(names::NET_REBALANCE_MOVES_TOTAL))
        .expect("moves counter line");
    let moved: u64 = moves_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(moved > 0, "rebalance moves counter must advance");

    server.shutdown();
}

#[test]
fn rebalance_is_refused_unless_enabled() {
    let engine = build_engine();
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let mut c = Client::connect_retry(
        server.local_addr().to_string().as_str(),
        5,
        Duration::from_millis(20),
    )
    .expect("connect");
    let err = c
        .rebalance(RebalanceCmd::AddWorkers(1), false)
        .expect_err("must be refused");
    assert!(matches!(err, ClientError::Server(WireError::Malformed(_))));
    server.shutdown();
}

#[test]
fn invalid_rebalance_is_a_typed_error_with_layout_untouched() {
    let engine = build_engine();
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            allow_remote_rebalance: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut c = Client::connect_retry(
        server.local_addr().to_string().as_str(),
        5,
        Duration::from_millis(20),
    )
    .expect("connect");
    // More workers than standby slots exist.
    let err = c
        .rebalance(RebalanceCmd::AddWorkers(STANDBY as u32 + 1), false)
        .expect_err("must be rejected");
    assert!(matches!(
        err,
        ClientError::Server(WireError::MutationFailed(_))
    ));
    // Removing a slot that was never active.
    let err = c
        .rebalance(RebalanceCmd::RemoveWorker((M + STANDBY) as u32), false)
        .expect_err("must be rejected");
    assert!(matches!(
        err,
        ClientError::Server(WireError::MutationFailed(_))
    ));
    assert_eq!(engine.active_workers(), M);
    server.shutdown();
}
