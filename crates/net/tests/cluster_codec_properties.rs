//! Property tests for the cluster-plane codec (`cluster_proto`): every
//! worker/election frame round-trips; truncation, bit-flips, version
//! skew, and arbitrary bytes surface as typed errors — never a panic.

use proptest::prelude::*;

use pargrid_geom::{Point, Rect};
use pargrid_gridfile::{crc32, Record};
use pargrid_net::cluster_proto::{ClusterRequest, ClusterResponse, MetaOp, WireReply};
use pargrid_net::frame::{encode_frame, read_frame, FrameError, PROTOCOL_VERSION, TRAILER_LEN};

fn arb_key() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6f64..1.0e6, 1..=4)
}

/// Printable-ASCII strings up to `max` bytes (the shimmed proptest has no
/// regex string strategies).
fn arb_string(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max)
        .prop_map(|b| String::from_utf8(b).expect("printable ascii"))
}

fn arb_meta_op() -> impl Strategy<Value = MetaOp> {
    prop_oneof![
        Just(MetaOp::Noop),
        (any::<u64>(), arb_key()).prop_map(|(id, key)| MetaOp::Insert { id, key }),
        (any::<u64>(), arb_key()).prop_map(|(id, key)| MetaOp::Delete { id, key }),
        any::<u64>().prop_map(|epoch| MetaOp::Rebalance { epoch }),
    ]
}

fn arb_records() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec((any::<u64>(), arb_key()), 0..4).prop_map(|rs| {
        rs.into_iter()
            .map(|(id, k)| Record::new(id, Point::new(&k)))
            .collect()
    })
}

fn arb_wire_reply() -> impl Strategy<Value = WireReply> {
    (
        (any::<u64>(), any::<u64>(), any::<u32>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        prop::collection::vec(any::<u32>(), 0..4),
        prop::option::of(arb_string(24)),
        arb_records(),
    )
        .prop_map(
            |((query_id, seq, worker), (br, ch, disk_us, cpu_us), corrupt, error, records)| {
                WireReply {
                    query_id,
                    seq,
                    worker,
                    blocks_requested: br,
                    cache_hits: ch,
                    disk_us,
                    cpu_us,
                    corrupt_blocks: corrupt,
                    error,
                    records,
                }
            },
        )
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    prop::collection::vec((-1.0e6f64..1.0e6, -1.0e6f64..1.0e6), 2..=4).prop_map(|corners| {
        let lo: Vec<f64> = corners.iter().map(|(a, b)| a.min(*b)).collect();
        let hi: Vec<f64> = corners.iter().map(|(a, b)| a.max(*b)).collect();
        Rect::new(Point::new(&lo), Point::new(&hi))
    })
}

fn arb_pages() -> impl Strategy<Value = Vec<(u32, Vec<u8>)>> {
    prop::collection::vec(
        (any::<u32>(), prop::collection::vec(any::<u8>(), 0..64)),
        0..4,
    )
}

fn arb_request() -> impl Strategy<Value = ClusterRequest> {
    prop_oneof![
        (any::<u32>(), any::<u64>(), any::<u32>(), any::<u32>()).prop_map(
            |(slot, epoch, payload_bytes, seen_seq_window)| ClusterRequest::WorkerJoin {
                slot,
                epoch,
                payload_bytes,
                seen_seq_window,
            }
        ),
        (
            (any::<u64>(), any::<u64>(), any::<u64>(), 0u8..=1),
            arb_rect(),
            prop::collection::vec(any::<u32>(), 0..8),
        )
            .prop_map(|((epoch, query_id, seq, priority), rect, blocks)| {
                ClusterRequest::Dispatch {
                    epoch,
                    query_id,
                    seq,
                    priority,
                    rect,
                    blocks,
                }
            }),
        (any::<u64>(), arb_pages())
            .prop_map(|(epoch, blocks)| ClusterRequest::WriteBlocks { epoch, blocks }),
        (any::<u64>(), prop::collection::vec(any::<u32>(), 0..8))
            .prop_map(|(epoch, blocks)| ClusterRequest::FetchBlocks { epoch, blocks }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(term, epoch, commit)| {
            ClusterRequest::Heartbeat {
                term,
                epoch,
                commit,
            }
        }),
        (any::<u64>(), any::<u32>())
            .prop_map(|(epoch, ttl_ms)| ClusterRequest::LeaseGrant { epoch, ttl_ms }),
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
            |(term, candidate, log_len, last_log_term)| ClusterRequest::VoteRequest {
                term,
                candidate,
                log_len,
                last_log_term,
            }
        ),
        (
            (any::<u64>(), any::<u32>(), any::<u64>(), 1u64..1 << 32),
            prop::collection::vec(arb_meta_op(), 0..4),
        )
            .prop_map(|((term, leader, commit, start_index), ops)| {
                ClusterRequest::MetaAppend {
                    term,
                    leader,
                    commit,
                    start_index,
                    ops,
                }
            }),
    ]
}

fn arb_response() -> impl Strategy<Value = ClusterResponse> {
    prop_oneof![
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(slot, epoch, blocks_held)| {
            ClusterResponse::Welcome {
                slot,
                epoch,
                blocks_held,
            }
        }),
        arb_wire_reply().prop_map(ClusterResponse::WorkerReply),
        (any::<u64>(), any::<u32>())
            .prop_map(|(epoch, written)| ClusterResponse::BlocksAck { epoch, written }),
        (
            any::<u32>(),
            prop::collection::vec(
                (
                    any::<u32>(),
                    prop::option::of(prop::collection::vec(any::<u8>(), 0..32))
                ),
                0..4,
            ),
        )
            .prop_map(|(worker, blocks)| ClusterResponse::RawBlocks { worker, blocks }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(term, epoch)| ClusterResponse::HeartbeatAck { term, epoch }),
        (any::<bool>(), any::<u64>())
            .prop_map(|(granted, epoch)| ClusterResponse::LeaseAck { granted, epoch }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(term, granted)| ClusterResponse::VoteReply { term, granted }),
        (any::<u64>(), any::<bool>(), any::<u64>())
            .prop_map(|(term, ok, log_len)| ClusterResponse::MetaAck { term, ok, log_len }),
        any::<u64>().prop_map(|epoch| ClusterResponse::Fenced { epoch }),
        arb_string(40).prop_map(ClusterResponse::ClusterErr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cluster_requests_round_trip(req in arb_request()) {
        let (t, p) = req.encode();
        prop_assert_eq!(ClusterRequest::decode(t, &p).unwrap(), req);
    }

    #[test]
    fn cluster_responses_round_trip(resp in arb_response()) {
        let (t, p) = resp.encode();
        prop_assert_eq!(ClusterResponse::decode(t, &p).unwrap(), resp);
    }

    #[test]
    fn truncated_cluster_requests_are_typed_errors(
        req in arb_request(),
        cut_frac in 0.0f64..1.0,
    ) {
        let (t, p) = req.encode();
        if !p.is_empty() {
            let cut = ((p.len() - 1) as f64 * cut_frac) as usize;
            // Every field is length-prescribed, so a strict prefix can
            // never decode; it must fail with a typed error, not panic.
            prop_assert!(ClusterRequest::decode(t, &p[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn truncated_cluster_responses_are_typed_errors(
        resp in arb_response(),
        cut_frac in 0.0f64..1.0,
    ) {
        let (t, p) = resp.encode();
        if !p.is_empty() {
            let cut = ((p.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(ClusterResponse::decode(t, &p[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bit_flipped_cluster_payloads_never_panic(
        req in arb_request(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        // The frame CRC catches wire corruption; this asserts the proto
        // layer stays panic-free even if handed corrupt bytes directly
        // (a hostile peer speaks valid frames with garbage inside).
        let (t, mut p) = req.encode();
        if !p.is_empty() {
            let pos = ((p.len() - 1) as f64 * pos_frac) as usize;
            p[pos] ^= flip;
            let _ = ClusterRequest::decode(t, &p);
            let _ = ClusterResponse::decode(t, &p);
        }
    }

    #[test]
    fn version_skewed_cluster_frames_are_rejected(
        req in arb_request(),
        bump in 1u8..=255,
    ) {
        // A cluster frame from a node running a different protocol
        // version dies at the frame layer with `BadVersion`, before any
        // cluster decoding happens.
        let (t, p) = req.encode();
        let mut bytes = encode_frame(t, &p).unwrap();
        let version = PROTOCOL_VERSION.wrapping_add(bump);
        bytes[2] = version;
        let n = bytes.len();
        let crc = crc32(&bytes[..n - TRAILER_LEN]);
        bytes[n - TRAILER_LEN..].copy_from_slice(&crc.to_le_bytes());
        prop_assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(FrameError::BadVersion(v)) if v == version
        ));
    }

    #[test]
    fn arbitrary_bytes_never_panic_cluster_decoders(
        msg_type in 0u8..=255,
        payload in prop::collection::vec(any::<u8>(), 0..300usize),
    ) {
        let _ = ClusterRequest::decode(msg_type, &payload);
        let _ = ClusterResponse::decode(msg_type, &payload);
    }

    #[test]
    fn unknown_message_types_are_typed_errors(msg_type in 0u8..=255) {
        // Outside the cluster ranges both decoders refuse immediately.
        let req = ClusterRequest::decode(msg_type, &[]);
        let resp = ClusterResponse::decode(msg_type, &[]);
        if !(0x20..=0x27).contains(&msg_type) {
            prop_assert!(req.is_err());
        }
        if !(0xA0..=0xA9).contains(&msg_type) {
            prop_assert!(resp.is_err());
        }
    }
}
