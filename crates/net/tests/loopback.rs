//! End-to-end loopback tests: a real server on `127.0.0.1:0`, real client
//! sockets, answers checked byte-for-byte against the in-process engine.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_geom::{Point, Rect};
use pargrid_gridfile::{GridConfig, GridFile, Record};
use pargrid_net::proto::{RecordsReply, Response};
use pargrid_net::{Client, ClientError, Server, ServerConfig, WireError};
use pargrid_obs::{names, validate_prometheus};
use pargrid_parallel::{EngineConfig, ParallelGridFile};

fn sample_grid() -> (Arc<GridFile>, Vec<Record>) {
    let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 8);
    let mut recs = Vec::new();
    let mut x = 1u64;
    for i in 0..600u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        recs.push(Record::new(
            i,
            Point::new2(
                ((x >> 16) % 10000) as f64 / 100.0,
                ((x >> 40) % 10000) as f64 / 100.0,
            ),
        ));
    }
    let gf = Arc::new(GridFile::bulk_load(cfg, recs.iter().copied()));
    (gf, recs)
}

fn build_engine(n_workers: usize) -> (Arc<GridFile>, Arc<ParallelGridFile>) {
    let (gf, _recs) = sample_grid();
    let input = DeclusterInput::from_grid_file(&gf);
    let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, n_workers, 7);
    let engine = Arc::new(ParallelGridFile::build(
        Arc::clone(&gf),
        &assignment,
        EngineConfig::default(),
    ));
    (gf, engine)
}

/// The byte encoding of just the records, cost fields zeroed — the part of
/// a reply that must be identical no matter which path produced it.
fn record_bytes(records: &[Record]) -> Vec<u8> {
    let (_, payload) = Response::Records(RecordsReply {
        records: records.to_vec(),
        ..RecordsReply::default()
    })
    .encode();
    payload
}

#[test]
fn eight_clients_get_byte_identical_answers() {
    let (gf, engine) = build_engine(8);
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            queue_capacity: 256,
            dispatchers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let mut handles = Vec::new();
    for c in 0..8u64 {
        let addr = addr.clone();
        let gf = Arc::clone(&gf);
        let engine = Arc::clone(&engine);
        handles.push(thread::spawn(move || {
            let mut client = Client::connect_retry(addr.as_str(), 5, Duration::from_millis(20))
                .expect("connect");
            // Mixed workload: ranges of several shapes plus partial
            // matches, offset per client so the fleet doesn't run in
            // lockstep.
            for k in 0..6u64 {
                let s = (c * 13 + k * 29) % 60;
                let lo = [s as f64, (s / 2) as f64];
                let hi = [s as f64 + 25.0, (s / 2) as f64 + 40.0];
                let reply = client.range_query(&lo, &hi).expect("range query");
                // Oracle: a direct in-process session on the same engine.
                let direct = engine
                    .session()
                    .query(&Rect::new2(lo[0], lo[1], hi[0], hi[1]));
                assert!(!reply.incomplete);
                assert_eq!(
                    record_bytes(&reply.records),
                    record_bytes(&direct.records),
                    "client {c} query {k}: networked answer differs from direct session"
                );

                // Partial match against the sequential grid file oracle.
                let x = (c * 17 + k * 7) % 100;
                let keys = [Some(x as f64), None];
                let reply = client.partial_match(&keys).expect("partial match");
                let (_, mut expect) = gf.partial_match(&keys);
                expect.sort_unstable_by_key(|r| r.id);
                assert_eq!(
                    record_bytes(&reply.records),
                    record_bytes(&expect),
                    "client {c} pmatch {k}: networked answer differs from grid file"
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }

    let doc = server.shutdown();
    assert!(validate_prometheus(&doc).is_ok(), "{doc}");
    // Every served query records its additive gap against the
    // ceil(|Q|/M) oracle bound; the histogram count must match.
    let gap_count_line = doc
        .lines()
        .find(|l| l.starts_with(&format!("{}_count", names::FRONTIER_GAP_BLOCKS)))
        .unwrap_or_else(|| panic!("no {} histogram in:\n{doc}", names::FRONTIER_GAP_BLOCKS));
    let gap_count: u64 = gap_count_line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("histogram count");
    // 8 clients x 6 rounds x (one range query + one partial match).
    assert_eq!(gap_count, 8 * 6 * 2, "one gap sample per served query");
    assert!(
        engine.is_shut_down(),
        "server shutdown must join the engine"
    );
}

#[test]
fn saturated_queue_sheds_with_overloaded_and_exports_counter() {
    let (_gf, engine) = build_engine(4);
    // One dispatcher, a one-slot queue, and heavy pacing: almost any
    // concurrent burst must overflow admission.
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            queue_capacity: 1,
            dispatchers: 1,
            pace_us_per_block: 2000,
            retry_after_ms: 25,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let mut handles = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        handles.push(thread::spawn(move || {
            let mut client = Client::connect_retry(addr.as_str(), 5, Duration::from_millis(20))
                .expect("connect");
            let mut served = 0u64;
            let mut shed = 0u64;
            for _ in 0..20 {
                match client.range_query(&[0.0, 0.0], &[100.0, 100.0]) {
                    Ok(_) => served += 1,
                    Err(ClientError::Server(WireError::Overloaded { retry_after_ms })) => {
                        assert_eq!(retry_after_ms, 25);
                        shed += 1;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            (served, shed)
        }));
    }
    let mut total_served = 0;
    let mut total_shed = 0;
    for h in handles {
        let (served, shed) = h.join().expect("client thread");
        total_served += served;
        total_shed += shed;
    }
    assert!(
        total_shed > 0,
        "saturation must shed ({total_served} served)"
    );
    assert!(total_served > 0, "shedding must not starve everything");

    // The shed counter is visible over the wire via a Stats request.
    let mut client = Client::connect(addr.as_str()).expect("connect");
    let doc = client.stats().expect("stats");
    assert!(validate_prometheus(&doc).is_ok(), "{doc}");
    let shed_line = doc
        .lines()
        .find(|l| l.starts_with(names::NET_SHED_TOTAL))
        .unwrap_or_else(|| panic!("no {} in:\n{doc}", names::NET_SHED_TOTAL));
    let exported: u64 = shed_line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("counter value");
    assert_eq!(exported, total_shed, "exported shed counter must match");

    server.shutdown();
    assert!(engine.is_shut_down());
}

#[test]
fn wire_shutdown_is_acknowledged_and_drains() {
    let (_gf, engine) = build_engine(4);
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            allow_remote_shutdown: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(addr.as_str()).expect("connect");
    assert_eq!(client.ping(99).expect("ping"), 99);
    let reply = client
        .range_query(&[10.0, 10.0], &[50.0, 50.0])
        .expect("query");
    assert!(!reply.incomplete);
    client.shutdown_server().expect("acked shutdown");

    // join() returns because the wire request tripped the shutdown flag;
    // afterwards no worker thread is left.
    let doc = server.join();
    assert!(engine.is_shut_down());
    assert!(doc.contains(names::NET_CONNECTIONS_TOTAL));

    // The listener is gone: new connections are refused quickly.
    assert!(Client::connect(addr.as_str()).is_err());
}

#[test]
fn malformed_frame_gets_typed_error_then_close() {
    use std::io::{Read, Write};

    let (_gf, engine) = build_engine(4);
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();

    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n")
        .expect("write garbage");
    let frame = pargrid_net::read_frame(&mut raw).expect("server must reply before closing");
    let resp = Response::decode(frame.msg_type, &frame.payload).expect("decode");
    assert!(
        matches!(resp, Response::Error(WireError::Malformed(_))),
        "got {resp:?}"
    );
    // And then the connection is closed (framing can't be resynced).
    let mut buf = [0u8; 1];
    assert_eq!(raw.read(&mut buf).unwrap_or(0), 0);

    server.shutdown();
}
