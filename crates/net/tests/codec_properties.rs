//! Property tests for the wire codec: round-trips for well-formed traffic,
//! typed errors — never panics — for everything hostile.

use proptest::prelude::*;

use pargrid_gridfile::crc32;
use pargrid_net::frame::{encode_frame, read_frame, FrameError, PROTOCOL_VERSION, TRAILER_LEN};
use pargrid_net::proto::{Request, Response};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frame_round_trips(
        msg_type in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..200usize),
    ) {
        let bytes = encode_frame(msg_type, &payload).unwrap();
        let frame = read_frame(&mut &bytes[..]).unwrap();
        prop_assert_eq!(frame.msg_type, msg_type);
        prop_assert_eq!(frame.payload, payload);
    }

    #[test]
    fn truncated_frames_are_typed_errors(
        payload in prop::collection::vec(0u8..=255, 0..100usize),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = encode_frame(0x01, &payload).unwrap();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let err = read_frame(&mut &bytes[..cut]).unwrap_err();
        match err {
            FrameError::Closed => prop_assert_eq!(cut, 0),
            FrameError::Truncated => prop_assert!(cut > 0),
            other => panic!("cut {cut}: unexpected {other}"),
        }
    }

    #[test]
    fn corrupted_frames_never_decode(
        payload in prop::collection::vec(0u8..=255, 1..100usize),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_frame(0x02, &payload).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        // Any single-byte corruption — header, payload, or trailer — must
        // surface as a typed error; the CRC covers all of them.
        prop_assert!(read_frame(&mut &bytes[..]).is_err(), "flipped byte {pos}");
    }

    #[test]
    fn oversized_length_prefix_is_rejected(len_excess in 1u32..=u32::MAX - pargrid_net::MAX_PAYLOAD) {
        let mut bytes = encode_frame(0x01, b"x").unwrap();
        let huge = pargrid_net::MAX_PAYLOAD + len_excess;
        bytes[4..8].copy_from_slice(&huge.to_le_bytes());
        prop_assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(FrameError::Oversized(n)) if n == huge
        ));
    }

    #[test]
    fn version_mismatch_is_rejected(bump in 1u8..=255) {
        let version = PROTOCOL_VERSION.wrapping_add(bump);
        let mut bytes = encode_frame(0x01, b"payload").unwrap();
        bytes[2] = version;
        // Re-seal the CRC so the version byte is the only defect.
        let n = bytes.len();
        let crc = crc32(&bytes[..n - TRAILER_LEN]);
        bytes[n - TRAILER_LEN..].copy_from_slice(&crc.to_le_bytes());
        prop_assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(FrameError::BadVersion(v)) if v == version
        ));
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_frame_reader(
        bytes in prop::collection::vec(0u8..=255, 0..300usize),
    ) {
        let _ = read_frame(&mut &bytes[..]);
    }

    #[test]
    fn arbitrary_payloads_never_panic_the_proto_decoders(
        msg_type in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..300usize),
    ) {
        let _ = Request::decode(msg_type, &payload);
        let _ = Response::decode(msg_type, &payload);
    }

    #[test]
    fn valid_range_requests_round_trip(
        dim in 1usize..=6,
        corners in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 6),
    ) {
        let lo: Vec<f64> = corners[..dim].iter().map(|(a, b)| a.min(*b)).collect();
        let hi: Vec<f64> = corners[..dim].iter().map(|(a, b)| a.max(*b)).collect();
        let req = Request::RangeQuery { lo, hi };
        let (t, p) = req.encode();
        prop_assert_eq!(Request::decode(t, &p).unwrap(), req);
    }

    #[test]
    fn valid_partial_match_requests_round_trip(
        dim in 1usize..=6,
        keys in prop::collection::vec((0u8..=1, 0.0f64..1000.0), 6),
    ) {
        let keys: Vec<Option<f64>> = keys[..dim]
            .iter()
            .map(|(tag, v)| if *tag == 1 { Some(*v) } else { None })
            .collect();
        let req = Request::PartialMatch { keys };
        let (t, p) = req.encode();
        prop_assert_eq!(Request::decode(t, &p).unwrap(), req);
    }
}
