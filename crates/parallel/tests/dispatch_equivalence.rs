//! Property tests pinning the transport swap: the sharded
//! [`pargrid_parallel::RequestRing`] dispatch path must be observationally
//! identical to the legacy channel path. Referenced from
//! `crates/parallel/src/ring.rs` — a failing seed here reproduces exactly
//! (virtual time, seeded workloads, seeded chaos schedules).

use pargrid_core::{ConflictPolicy, DeclusterInput, DeclusterMethod, IndexScheme};
use pargrid_geom::{Point, Rect};
use pargrid_gridfile::{GridConfig, GridFile, Record};
use pargrid_parallel::{DispatchMode, EngineConfig, FaultPlan, ParallelGridFile, QueryOutcome};
use pargrid_sim::QueryWorkload;
use proptest::prelude::*;
use std::sync::Arc;

fn grid_file(n_records: u64) -> Arc<GridFile> {
    let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 6);
    let mut x = 9u64;
    let recs: Vec<Record> = (0..n_records)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Record::new(
                i,
                Point::new2(
                    ((x >> 16) % 10000) as f64 / 100.0,
                    ((x >> 40) % 10000) as f64 / 100.0,
                ),
            )
        })
        .collect();
    Arc::new(GridFile::bulk_load(cfg, recs))
}

fn build(gf: &Arc<GridFile>, workers: usize, config: EngineConfig) -> ParallelGridFile {
    let input = DeclusterInput::from_grid_file(gf);
    let assignment = DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance)
        .assign(&input, workers, 3);
    ParallelGridFile::build(Arc::clone(gf), &assignment, config)
}

/// The deterministic face of an outcome: everything virtual-time semantics
/// pin exactly on a healthy run. Wall-clock-sensitive counters (retries,
/// hedges) are excluded — they are compared only under the relaxed chaos
/// property below.
fn digest(o: &QueryOutcome) -> (Vec<u64>, Vec<u32>, u64, u64, u64, u64, u64, bool) {
    (
        o.records.iter().map(|r| r.id).collect(),
        o.buckets.clone(),
        o.response_blocks,
        o.total_blocks,
        o.cache_hits,
        o.elapsed_us,
        o.comm_us,
        o.incomplete,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Healthy engines: ring and channel dispatch must produce identical
    /// answers, identical bucket routes, and identical virtual-time
    /// accounting for every query of a seeded workload.
    #[test]
    fn ring_and_channel_dispatch_are_observationally_identical(
        workers in 2usize..=6,
        n_queries in 1usize..=24,
        ratio in 1u32..=10,
        seed in 0u64..=500,
    ) {
        let gf = grid_file(400);
        let w = QueryWorkload::square(
            &Rect::new2(0.0, 0.0, 100.0, 100.0),
            ratio as f64 / 100.0,
            n_queries,
            seed,
        );
        let ring = build(&gf, workers, EngineConfig::default());
        let channel = build(
            &gf,
            workers,
            EngineConfig::default().with_dispatch(DispatchMode::Channel),
        );
        let ring_out: Vec<QueryOutcome> = {
            let mut s = ring.session();
            w.queries.iter().map(|q| s.query(q)).collect()
        };
        let chan_out: Vec<QueryOutcome> = {
            let mut s = channel.session();
            w.queries.iter().map(|q| s.query(q)).collect()
        };
        prop_assert_eq!(ring_out.len(), chan_out.len());
        for (i, (r, c)) in ring_out.iter().zip(&chan_out).enumerate() {
            prop_assert_eq!(
                digest(r),
                digest(c),
                "query {} diverged between ring and channel dispatch",
                i
            );
        }
        prop_assert_eq!(ring.shutdown(), channel.shutdown());
    }

    /// Chaos seeds: under a seeded fault schedule (kills, poisons, drops,
    /// duplicates, delays, corruption) on a replicated engine, both
    /// transports must converge on the same answer set for every query
    /// that both complete, and an incomplete answer on either side must be
    /// a subset of a completed one on the other. Timing-borne counters may
    /// differ (timeout racing is wall-clock), so they are not compared.
    #[test]
    fn chaos_schedules_yield_the_same_answers_on_both_transports(
        seed in 0u64..=30,
    ) {
        const WORKERS: usize = 4;
        const QUERIES: usize = 12;
        let gf = grid_file(300);
        let faults = FaultPlan::chaos(seed, WORKERS, QUERIES as u64, 6);
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.05, QUERIES, seed);
        let input = DeclusterInput::from_grid_file(&gf);
        let ra = DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance)
            .assign_replicated(&input, WORKERS, 3);

        let mut runs: Vec<Vec<(Vec<u64>, bool)>> = Vec::new();
        for mode in [DispatchMode::Ring, DispatchMode::Channel] {
            let config = EngineConfig::default()
                .with_dispatch(mode)
                .resilience(|r| r.with_fail_timeout_ms(15).with_faults(faults.clone()))
                .latency(|l| l.with_deadline_us(2_000_000));
            let engine = ParallelGridFile::build_replicated(Arc::clone(&gf), &ra, config);
            let out: Vec<QueryOutcome> = {
                let mut s = engine.session();
                w.queries.iter().map(|q| s.query(q)).collect()
            };
            prop_assert_eq!(out.len(), QUERIES);
            runs.push(
                out.iter()
                    .map(|o| {
                        let mut ids: Vec<u64> = o.records.iter().map(|r| r.id).collect();
                        ids.sort_unstable();
                        (ids, o.incomplete)
                    })
                    .collect(),
            );
            engine.shutdown();
        }
        for (i, ((ring_ids, ring_inc), (chan_ids, chan_inc))) in
            runs[0].iter().zip(&runs[1]).enumerate()
        {
            match (ring_inc, chan_inc) {
                (false, false) => prop_assert_eq!(
                    ring_ids,
                    chan_ids,
                    "chaos seed {} query {} diverged between transports",
                    seed,
                    i
                ),
                (true, false) => prop_assert!(
                    ring_ids.iter().all(|id| chan_ids.contains(id)),
                    "chaos seed {} query {}: incomplete ring answer invented records",
                    seed,
                    i
                ),
                (false, true) => prop_assert!(
                    chan_ids.iter().all(|id| ring_ids.contains(id)),
                    "chaos seed {} query {}: incomplete channel answer invented records",
                    seed,
                    i
                ),
                (true, true) => {}
            }
        }
    }
}
