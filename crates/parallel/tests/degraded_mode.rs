//! End-to-end degraded-mode acceptance tests: a 16-worker replicated engine
//! with injected worker failures must return byte-identical answer sets to a
//! healthy unreplicated engine, without panicking any session, while the
//! engine's liveness and failover counters tell the story.

use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_datagen::hot2d;
use pargrid_gridfile::GridFile;
use pargrid_parallel::{EngineConfig, FaultPlan, ParallelGridFile, QueryOutcome};
use pargrid_sim::QueryWorkload;
use std::sync::Arc;

const WORKERS: usize = 16;

fn grid() -> Arc<GridFile> {
    Arc::new(hot2d(4242).build_grid_file())
}

fn workload(gf: &GridFile) -> QueryWorkload {
    QueryWorkload::square(&gf.config().domain, 0.05, 24, 99)
}

/// Short failure-detection timeout: virtual time is unaffected, only the
/// real-time wait on a dead worker's reply.
fn cfg(faults: FaultPlan) -> EngineConfig {
    EngineConfig::default().resilience(|r| r.with_fail_timeout_ms(25).with_faults(faults))
}

fn healthy_engine(gf: &Arc<GridFile>) -> ParallelGridFile {
    let input = DeclusterInput::from_grid_file(gf);
    let a = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, WORKERS, 5);
    ParallelGridFile::build(Arc::clone(gf), &a, EngineConfig::default())
}

fn replicated_engine(gf: &Arc<GridFile>, faults: FaultPlan) -> ParallelGridFile {
    let input = DeclusterInput::from_grid_file(gf);
    let ra = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(&input, WORKERS, 5);
    ParallelGridFile::build_replicated(Arc::clone(gf), &ra, cfg(faults))
}

fn assert_identical_answers(healthy: &[QueryOutcome], degraded: &[QueryOutcome]) {
    assert_eq!(healthy.len(), degraded.len());
    for (i, (h, d)) in healthy.iter().zip(degraded).enumerate() {
        assert_eq!(
            h.records, d.records,
            "query {i}: degraded answers must be byte-identical"
        );
        assert!(!d.incomplete, "query {i} reported incomplete");
    }
}

#[test]
fn one_failed_worker_of_sixteen_is_invisible_to_answers() {
    let gf = grid();
    let w = workload(&gf);
    let healthy = healthy_engine(&gf);
    let healthy_out: Vec<QueryOutcome> = w.queries.iter().map(|q| healthy.query(q)).collect();

    let degraded = replicated_engine(&gf, FaultPlan::kill_first(1));
    let degraded_out: Vec<QueryOutcome> = w.queries.iter().map(|q| degraded.query(q)).collect();

    assert_identical_answers(&healthy_out, &degraded_out);
    let stats = degraded.stats();
    assert_eq!(stats.live_workers(), WORKERS - 1);
    assert!(!stats.workers[0].alive);
    assert!(
        stats.failed_over_blocks > 0,
        "replica copies were never read"
    );
    // Once the death is known, later queries plan around it without retries.
    assert!(
        degraded_out.last().expect("queries ran").retries == 0,
        "planning should skip a known-dead worker"
    );
}

#[test]
fn two_failed_workers_of_sixteen_still_answer_exactly() {
    let gf = grid();
    let w = workload(&gf);
    let healthy = healthy_engine(&gf);
    let healthy_out: Vec<QueryOutcome> = w.queries.iter().map(|q| healthy.query(q)).collect();

    let degraded = replicated_engine(&gf, FaultPlan::kill_first(2));
    let degraded_out: Vec<QueryOutcome> = w.queries.iter().map(|q| degraded.query(q)).collect();

    // Chained declustering places worker 0's replicas on worker 1 and vice
    // versa only for *adjacent* chain positions; with both 0 and 1 dead some
    // buckets could lose both copies. The placement interleaves
    // (secondary = primary + 1 mod M preferred), so buckets primary on 0
    // replicate on 1 — killing 0 and 1 together is the worst adjacent pair.
    // The engine must still answer every query it *can* answer exactly and
    // flag any truly lost bucket rather than panic.
    for (i, (h, d)) in healthy_out.iter().zip(&degraded_out).enumerate() {
        if !d.incomplete {
            assert_eq!(h.records, d.records, "query {i}");
        }
    }
    let stats = degraded.stats();
    assert_eq!(stats.live_workers(), WORKERS - 2);
}

#[test]
fn mid_run_death_fails_over_in_flight_queries() {
    // The worker dies *after* serving some blocks — queries already in
    // flight against it are stranded and must be retried transparently.
    let gf = grid();
    let w = workload(&gf);
    let healthy = healthy_engine(&gf);
    let healthy_out: Vec<QueryOutcome> = w.queries.iter().map(|q| healthy.query(q)).collect();

    let degraded = replicated_engine(&gf, FaultPlan::none().with_kill_after_blocks(3, 5));
    let degraded_out: Vec<QueryOutcome> = w.queries.iter().map(|q| degraded.query(q)).collect();

    assert_identical_answers(&healthy_out, &degraded_out);
    let stats = degraded.stats();
    assert_eq!(stats.live_workers(), WORKERS - 1);
    assert!(!stats.workers[3].alive);
    assert!(
        stats.retries > 0,
        "stranded requests must have been retried"
    );
}

#[test]
fn concurrent_run_with_failure_matches_healthy_run() {
    let gf = grid();
    let w = workload(&gf);
    let healthy = healthy_engine(&gf);
    let (healthy_out, healthy_tp) = healthy.run_workload_concurrent(&w, 8);

    let degraded = replicated_engine(&gf, FaultPlan::kill_first(1));
    let (degraded_out, degraded_tp) = degraded.run_workload_concurrent(&w, 8);

    assert_identical_answers(&healthy_out, &degraded_out);
    assert_eq!(healthy_tp.queries, degraded_tp.queries);
    assert!(degraded_tp.failed_over_blocks > 0);
    // The dead worker accrues no busy time; its load went to the survivors.
    assert_eq!(degraded_tp.worker_busy_us[0], 0);
    assert!(degraded_tp.worker_busy_us.iter().skip(1).all(|&b| b > 0));
}

#[test]
fn concurrent_sessions_survive_failure_without_panic() {
    // Several client threads hammer a replicated engine while a worker dies
    // under them; every session must complete with exact answers.
    let gf = grid();
    let w = workload(&gf);
    let healthy = healthy_engine(&gf);
    let expected: Vec<QueryOutcome> = w.queries.iter().map(|q| healthy.query(q)).collect();

    let degraded = replicated_engine(&gf, FaultPlan::none().with_kill_at_query(5, 4));
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _client in 0..4 {
            let engine = &degraded;
            let w = &w;
            joins.push(scope.spawn(move || {
                let mut session = engine.session();
                w.queries
                    .iter()
                    .map(|q| session.query(q))
                    .collect::<Vec<_>>()
            }));
        }
        for join in joins {
            let got = join.join().expect("no session may panic");
            assert_identical_answers(&expected, &got);
        }
    });
    assert_eq!(degraded.stats().live_workers(), WORKERS - 1);
}
