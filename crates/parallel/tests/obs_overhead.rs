//! Overhead guard: an installed recorder may cost at most 5% wall time on
//! the throughput workload versus the same engine without one.
//!
//! Methodology: two identical engines over the same declustering, one with
//! a recorder. Runs alternate between them and each side keeps its
//! *minimum* over several repetitions — the minimum is the least
//! noise-contaminated estimate of the true cost, which matters because the
//! engine's wall time is dominated by thread messaging, not by the virtual
//! disk model. A small absolute grace absorbs scheduler jitter at
//! millisecond scales (CI runs this in release mode where the relative
//! bound does the work).

#![cfg(feature = "obs")]

use std::sync::Arc;
use std::time::Instant;

use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_geom::{Point, Rect};
use pargrid_gridfile::{GridConfig, GridFile, Record};
use pargrid_obs::Recorder;
use pargrid_parallel::{EngineConfig, ParallelGridFile};
use pargrid_sim::QueryWorkload;

const ROUNDS: usize = 5;
const RELATIVE_BUDGET: f64 = 1.05;
const GRACE_US: f64 = 2_000.0;

fn sample_grid() -> Arc<GridFile> {
    let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 8);
    let mut x = 9u64;
    let recs: Vec<Record> = (0..2000u64)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Record::new(
                i,
                Point::new2(
                    ((x >> 16) % 10000) as f64 / 100.0,
                    ((x >> 40) % 10000) as f64 / 100.0,
                ),
            )
        })
        .collect();
    Arc::new(GridFile::bulk_load(cfg, recs.iter().copied()))
}

#[test]
fn recorder_overhead_within_five_percent() {
    let gf = sample_grid();
    let input = DeclusterInput::from_grid_file(&gf);
    let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 8, 7);

    let plain = ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
    let recorder = Arc::new(Recorder::new(8));
    let traced = ParallelGridFile::build(
        Arc::clone(&gf),
        &assignment,
        EngineConfig::default().obs(|o| o.with_recorder(Arc::clone(&recorder))),
    );

    let workload = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.05, 150, 41);
    // Warm both engines once (thread startup, caches) outside the clock.
    let _ = plain.run_workload_concurrent(&workload, 8);
    let _ = traced.run_workload_concurrent(&workload, 8);

    let mut plain_us = f64::INFINITY;
    let mut traced_us = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        let _ = plain.run_workload_concurrent(&workload, 8);
        plain_us = plain_us.min(t.elapsed().as_secs_f64() * 1e6);

        let t = Instant::now();
        let _ = traced.run_workload_concurrent(&workload, 8);
        traced_us = traced_us.min(t.elapsed().as_secs_f64() * 1e6);
    }

    assert!(
        recorder.query_us.count() > 0,
        "the traced engine must actually record"
    );
    assert!(
        traced_us <= plain_us * RELATIVE_BUDGET + GRACE_US,
        "recorder overhead too high: traced {traced_us:.0}us vs plain {plain_us:.0}us \
         (budget {RELATIVE_BUDGET}x + {GRACE_US}us)"
    );
}
