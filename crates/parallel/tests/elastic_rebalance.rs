//! Live elastic rebalance acceptance: growing and shrinking a replicated
//! engine under a concurrent query stream must never produce an incorrect
//! or incomplete reply, must drain removed slots completely, and must keep
//! the balance invariants over the active workers.

use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_datagen::hot2d;
use pargrid_gridfile::{GridFile, Record};
use pargrid_parallel::{EngineConfig, EngineError, ParallelGridFile, RebalanceOp};
use pargrid_sim::QueryWorkload;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const M: usize = 6;

fn build(standby: usize) -> (Arc<GridFile>, ParallelGridFile) {
    let gf = Arc::new(hot2d(7).build_grid_file());
    let input = DeclusterInput::from_grid_file(&gf);
    let ra = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(&input, M, 5);
    let engine = ParallelGridFile::build_replicated(
        Arc::clone(&gf),
        &ra,
        EngineConfig::default().with_standby_workers(standby),
    );
    (gf, engine)
}

#[test]
fn grow_and_shrink_under_live_queries_stay_exact() {
    let (gf, engine) = build(2);
    assert_eq!(engine.n_workers(), M + 2);
    assert_eq!(engine.active_workers(), M);

    let w = QueryWorkload::square(&gf.config().domain, 0.05, 32, 11);
    let oracle: Vec<Vec<Record>> = w.queries.iter().map(|q| engine.query(q).records).collect();

    let stop = AtomicBool::new(false);
    thread::scope(|s| {
        s.spawn(|| {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let k = i % w.queries.len();
                let out = engine.query(&w.queries[k]);
                assert!(!out.incomplete, "incomplete reply during migration");
                assert_eq!(out.records, oracle[k], "incorrect reply during migration");
                i += 1;
            }
        });
        let grow = engine
            .rebalance(RebalanceOp::AddWorkers(2), false)
            .expect("grow");
        assert!(grow.applied);
        assert_eq!(grow.active_workers, M + 2);
        assert!(grow.moves > 0, "new workers must receive data");
        let shrink = engine
            .rebalance(RebalanceOp::RemoveWorker(0), false)
            .expect("shrink");
        assert_eq!(shrink.active_workers, M + 1);
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(engine.active_workers(), M + 1);

    // Slot 0 is fully drained; ownership spans exactly the live buckets.
    let buckets = engine.worker_buckets();
    assert_eq!(buckets[0], 0, "removed slot still owns buckets");
    assert_eq!(buckets.iter().sum::<usize>(), gf.n_buckets());

    // Primary balance invariant over the surviving active slots.
    let n = gf.n_buckets();
    let active = M + 1;
    let cap = n.div_ceil(active);
    let floor = n / active;
    for (slot, &count) in buckets.iter().enumerate().skip(1) {
        assert!(
            (floor..=cap).contains(&count),
            "slot {slot} owns {count} buckets, outside [{floor},{cap}]"
        );
    }

    // Post-rebalance answers are still byte-identical.
    for (q, expect) in w.queries.iter().zip(&oracle) {
        let out = engine.query(q);
        assert!(!out.incomplete);
        assert_eq!(out.records, *expect);
    }
    let stats = engine.stats();
    assert!(stats.rebalance_moves > 0);
    assert!(stats.rebalance_bytes > 0);

    // Mutations after the resize must respect the new active set: splits
    // place fresh buckets on active slots only, never on drained slot 0.
    let domain = gf.config().domain;
    let (w0, h0) = (domain.side(0), domain.side(1));
    for i in 0..400u64 {
        let x = domain.lo().coords()[0] + w0 * 0.02 + (i % 20) as f64 * w0 * 0.001;
        let y = domain.lo().coords()[1] + h0 * 0.02 + (i / 20) as f64 * h0 * 0.001;
        engine
            .insert(Record::new(1_000_000 + i, pargrid_geom::Point::new2(x, y)))
            .expect("insert");
    }
    assert_eq!(
        engine.worker_buckets()[0],
        0,
        "a drained slot received a fresh bucket"
    );
    engine.shutdown();
}

#[test]
fn dry_run_previews_without_touching_data() {
    let (_gf, engine) = build(1);
    let before = engine.worker_buckets();
    let rep = engine
        .rebalance(RebalanceOp::AddWorkers(1), true)
        .expect("dry run");
    assert!(!rep.applied);
    assert!(rep.moves > 0);
    assert!(rep.full_moves > 0);
    assert_eq!(rep.active_workers, M + 1);
    // Nothing moved, nothing activated.
    assert_eq!(engine.worker_buckets(), before);
    assert_eq!(engine.active_workers(), M);
    engine.shutdown();
}

#[test]
fn invalid_requests_are_rejected_with_layout_untouched() {
    let (_gf, engine) = build(1);
    // More workers than standby slots exist.
    assert!(matches!(
        engine.rebalance(RebalanceOp::AddWorkers(2), false),
        Err(EngineError::Rebalance(_))
    ));
    // Removing a standby (inactive) or out-of-range slot.
    assert!(matches!(
        engine.rebalance(RebalanceOp::RemoveWorker(M), false),
        Err(EngineError::Rebalance(_))
    ));
    assert!(matches!(
        engine.rebalance(RebalanceOp::RemoveWorker(99), false),
        Err(EngineError::Rebalance(_))
    ));
    // Zero-worker grow is meaningless.
    assert!(matches!(
        engine.rebalance(RebalanceOp::AddWorkers(0), false),
        Err(EngineError::Rebalance(_))
    ));
    assert_eq!(engine.active_workers(), M);
    engine.shutdown();
}

#[test]
fn removed_slot_can_rejoin_later() {
    let (gf, engine) = build(0);
    engine
        .rebalance(RebalanceOp::RemoveWorker(3), false)
        .expect("shrink");
    assert_eq!(engine.active_workers(), M - 1);
    assert_eq!(engine.worker_buckets()[3], 0);
    // The drained slot is standby now; a grow re-activates it.
    let rep = engine
        .rebalance(RebalanceOp::AddWorkers(1), false)
        .expect("regrow");
    assert_eq!(rep.active_workers, M);
    assert!(engine.worker_buckets()[3] > 0, "rejoined slot got no data");
    // Answers remain exact across the round trip.
    let w = QueryWorkload::square(&gf.config().domain, 0.08, 8, 3);
    for q in &w.queries {
        assert!(!engine.query(q).incomplete);
    }
    engine.shutdown();
}
