//! End-to-end tracing: an instrumented engine run captures the full query
//! lifecycle, exports a Chrome trace that round-trips through a real JSON
//! parse, and emits a valid Prometheus document.

#![cfg(feature = "obs")]

use std::sync::Arc;

use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_geom::{Point, Rect};
use pargrid_gridfile::{GridConfig, GridFile, Record};
use pargrid_obs::{chrome, json, prom, Recorder, SpanKind};
use pargrid_parallel::{EngineConfig, FaultPlan, ParallelGridFile};
use pargrid_sim::QueryWorkload;

fn sample_grid() -> Arc<GridFile> {
    let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 8);
    let mut x = 1u64;
    let recs: Vec<Record> = (0..600u64)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Record::new(
                i,
                Point::new2(
                    ((x >> 16) % 10000) as f64 / 100.0,
                    ((x >> 40) % 10000) as f64 / 100.0,
                ),
            )
        })
        .collect();
    Arc::new(GridFile::bulk_load(cfg, recs.iter().copied()))
}

fn instrumented_engine(
    n_workers: usize,
    config: EngineConfig,
) -> (ParallelGridFile, Arc<Recorder>) {
    let gf = sample_grid();
    let input = DeclusterInput::from_grid_file(&gf);
    let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, n_workers, 7);
    let recorder = Arc::new(Recorder::new(n_workers));
    let engine = ParallelGridFile::build(
        gf,
        &assignment,
        config.obs(|o| o.with_recorder(Arc::clone(&recorder))),
    );
    (engine, recorder)
}

#[test]
fn lifecycle_events_cover_the_run() {
    let (engine, recorder) = instrumented_engine(4, EngineConfig::default());
    let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.06, 12, 17);
    let (outcomes, _tp) = engine.run_workload_concurrent(&w, 4);
    drop(engine); // joins workers: the snapshot below is exact

    let snap = recorder.snapshot();
    assert_eq!(snap.dropped, 0, "default ring must not drop at this scale");
    assert_eq!(snap.events_of(SpanKind::Admit).len(), 12);
    assert_eq!(snap.events_of(SpanKind::Plan).len(), 12);
    assert_eq!(snap.events_of(SpanKind::Reply).len(), 12);
    assert!(!snap.events_of(SpanKind::Dispatch).is_empty());
    assert!(!snap.events_of(SpanKind::DiskBatch).is_empty());
    assert!(!snap.events_of(SpanKind::CacheProbe).is_empty());
    assert!(snap.clock_us > 0, "workers advanced the virtual clock");

    // Reply spans carry each query's latency; the histogram agrees.
    let replies = snap.events_of(SpanKind::Reply);
    let mut durs: Vec<u64> = replies.iter().map(|e| e.dur_us).collect();
    let mut elapsed: Vec<u64> = outcomes.iter().map(|o| o.elapsed_us).collect();
    durs.sort_unstable();
    elapsed.sort_unstable();
    assert_eq!(durs, elapsed);
    assert_eq!(recorder.query_us.count(), 12);
    let h = recorder.query_us.snapshot();
    assert_eq!(h.max(), *elapsed.last().unwrap());
}

#[test]
fn chrome_trace_round_trips_through_json_parse() {
    let (engine, recorder) = instrumented_engine(4, EngineConfig::sp2_seven_disks());
    let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.05, 8, 3);
    let _ = engine.run_workload_concurrent(&w, 4);
    drop(engine);

    let snap = recorder.snapshot();
    let doc = chrome::to_chrome_trace(&snap);
    let parsed = json::parse(&doc).expect("exported trace must parse as JSON");
    let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(events.len() >= snap.len(), "every event plus metadata rows");

    // Disk-batch spans land on per-disk tracks with positive durations.
    let disk_spans: Vec<_> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("disk_batch"))
        .collect();
    assert!(!disk_spans.is_empty());
    for s in &disk_spans {
        assert_eq!(s.get("ph").unwrap().as_str(), Some("X"));
        assert!(s.get("dur").unwrap().as_num().unwrap() > 0.0);
        assert!(s.get("tid").unwrap().as_num().unwrap() >= 1000.0);
    }
    // 4 workers × 7 disks: more than one distinct disk track was active.
    let mut tids: Vec<i64> = disk_spans
        .iter()
        .map(|s| s.get("tid").unwrap().as_num().unwrap() as i64)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(tids.len() > 1, "expected several disk lanes, got {tids:?}");
}

#[test]
fn failover_events_appear_on_worker_death() {
    let gf = sample_grid();
    let input = DeclusterInput::from_grid_file(&gf);
    let assignment =
        DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(&input, 4, 7);
    let recorder = Arc::new(Recorder::new(4));
    let config = EngineConfig::default()
        .resilience(|r| {
            r.with_fail_timeout_ms(25)
                .with_faults(FaultPlan::kill_first(1))
        })
        .obs(|o| o.with_recorder(Arc::clone(&recorder)));
    let engine = ParallelGridFile::build_replicated(gf, &assignment, config);
    let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.08, 8, 29);
    for q in &w.queries {
        let _ = engine.query(q);
    }
    drop(engine);

    let snap = recorder.snapshot();
    assert!(
        !snap.events_of(SpanKind::Failover).is_empty(),
        "worker death must surface as failover events"
    );
    assert!(
        !snap.events_of(SpanKind::Retry).is_empty(),
        "failed-over buckets must surface as retry events"
    );
}

#[test]
fn prometheus_export_from_engine_histograms_validates() {
    let (engine, recorder) = instrumented_engine(4, EngineConfig::default());
    let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.05, 10, 7);
    let _ = engine.run_workload_concurrent(&w, 4);
    let stats = engine.stats();
    drop(engine);

    let mut pw = prom::PromWriter::new();
    pw.counter("pargrid_queries_total", "Queries served.", stats.queries);
    pw.gauge(
        "pargrid_workers_alive",
        "Live workers.",
        stats.live_workers() as f64,
    );
    pw.histogram(
        "pargrid_query_us",
        "End-to-end query latency (virtual us).",
        &recorder.query_us.snapshot(),
    );
    pw.histogram(
        "pargrid_comm_us",
        "Per-query communication time (virtual us).",
        &recorder.comm_us.snapshot(),
    );
    pw.histogram(
        "pargrid_batch_wall_us",
        "Worker batch wall time (virtual us).",
        &recorder.batch_wall_us.snapshot(),
    );
    let doc = pw.finish();
    prom::validate_prometheus(&doc).expect("engine metrics must be valid exposition format");
    assert!(doc.contains("pargrid_queries_total 10"));
    assert!(doc.contains("pargrid_query_us_count 10"));
}
