//! Seeded chaos soak: randomized-but-reproducible hostile-environment fault
//! schedules ([`FaultPlan::chaos`]) composed over hundreds of queries.
//!
//! Acceptance per query, against a fault-free oracle engine:
//! - no panic anywhere (a failed send to a dead session thread included),
//! - no duplicate records, ever (the seq-matching invariant),
//! - the answer is byte-identical to the oracle's, **or** the outcome is
//!   explicitly flagged [`QueryOutcome::incomplete`] — silent data loss is
//!   the one unacceptable outcome.
//!
//! Each seed is deterministic: the schedule derives entirely from
//! `FaultPlan::chaos(seed, ...)`, so a failing seed reproduces exactly.

use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_datagen::hot2d;
use pargrid_gridfile::GridFile;
use pargrid_parallel::{EngineConfig, FaultPlan, ParallelGridFile, QueryOutcome};
use pargrid_sim::QueryWorkload;
use std::collections::HashSet;
use std::sync::Arc;

const WORKERS: usize = 16;
const QUERIES: usize = 100;

fn grid() -> Arc<GridFile> {
    Arc::new(hot2d(4242).build_grid_file())
}

fn workload(gf: &GridFile, seed: u64) -> QueryWorkload {
    QueryWorkload::square(&gf.config().domain, 0.05, QUERIES, seed)
}

/// Fault-free truth: a healthy unreplicated engine over the same grid.
fn oracle(gf: &Arc<GridFile>, w: &QueryWorkload) -> Vec<QueryOutcome> {
    let input = DeclusterInput::from_grid_file(gf);
    let a = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, WORKERS, 5);
    let engine = ParallelGridFile::build(Arc::clone(gf), &a, EngineConfig::default());
    w.queries.iter().map(|q| engine.query(q)).collect()
}

/// Chaos config: short failure detection so dead/silent workers resolve
/// fast, a 2-second real-time deadline so no schedule can wedge a query,
/// and hedging armed (the chaos schedule's slow disks exercise it).
fn chaos_cfg(faults: FaultPlan) -> EngineConfig {
    EngineConfig::default()
        .resilience(|r| r.with_fail_timeout_ms(15).with_faults(faults))
        .latency(|l| l.with_deadline_us(2_000_000).with_hedging(3.0))
}

fn chaos_engine(gf: &Arc<GridFile>, faults: FaultPlan, replicated: bool) -> ParallelGridFile {
    let input = DeclusterInput::from_grid_file(gf);
    if replicated {
        let ra =
            DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(&input, WORKERS, 5);
        ParallelGridFile::build_replicated(Arc::clone(gf), &ra, chaos_cfg(faults))
    } else {
        let a = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, WORKERS, 5);
        ParallelGridFile::build(Arc::clone(gf), &a, chaos_cfg(faults))
    }
}

/// Runs one seeded soak and checks every acceptance property. Returns the
/// number of incomplete outcomes so callers can bound lossiness.
fn soak(seed: u64, replicated: bool) -> usize {
    let gf = grid();
    let w = workload(&gf, 99);
    let truth = oracle(&gf, &w);

    let faults = FaultPlan::chaos(seed, WORKERS, QUERIES as u64, 24);
    let engine = chaos_engine(&gf, faults, replicated);
    let (outcomes, tp) = engine.run_workload_concurrent(&w, 8);
    assert_eq!(outcomes.len(), truth.len(), "seed {seed}: lost outcomes");

    let mut incomplete = 0;
    for (i, (out, t)) in outcomes.iter().zip(&truth).enumerate() {
        let ids: Vec<u64> = out.records.iter().map(|r| r.id).collect();
        let unique: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(
            ids.len(),
            unique.len(),
            "seed {seed} query {i}: duplicate records"
        );
        if out.incomplete {
            incomplete += 1;
            // Incomplete answers may miss records but must never invent
            // or duplicate them.
            let truth_ids: HashSet<u64> = t.records.iter().map(|r| r.id).collect();
            assert!(
                unique.is_subset(&truth_ids),
                "seed {seed} query {i}: incomplete answer invented records"
            );
        } else {
            assert_eq!(
                out.records, t.records,
                "seed {seed} query {i}: silent divergence from oracle"
            );
        }
    }
    // The engine survived: its stats are coherent and a fresh query still
    // answers (possibly degraded, never panicking).
    let stats = engine.stats();
    eprintln!(
        "seed {seed}: incomplete={incomplete} retries={} retransmits={} hedges={} scrubbed={} deadline_expired={} failed_over={} live={}",
        stats.retries, stats.retransmits, stats.hedges, stats.scrubbed,
        stats.deadline_expired, stats.failed_over_blocks, stats.live_workers()
    );
    assert!(stats.queries >= QUERIES as u64, "seed {seed}: {stats:?}");
    assert!(tp.queries == QUERIES as u64);
    let after = engine.query(&w.queries[0]);
    let after_ids: HashSet<u64> = after.records.iter().map(|r| r.id).collect();
    assert_eq!(after_ids.len(), after.records.len());
    incomplete
}

#[test]
fn chaos_soak_replicated_seed_1() {
    let incomplete = soak(1, true);
    assert!(
        incomplete * 100 <= QUERIES,
        "replicated soak too lossy: {incomplete}/{QUERIES} incomplete"
    );
}

#[test]
fn chaos_soak_replicated_seed_2() {
    let incomplete = soak(2, true);
    assert!(
        incomplete * 100 <= QUERIES,
        "replicated soak too lossy: {incomplete}/{QUERIES} incomplete"
    );
}

#[test]
fn chaos_soak_replicated_seed_3() {
    let incomplete = soak(3, true);
    assert!(
        incomplete * 100 <= QUERIES,
        "replicated soak too lossy: {incomplete}/{QUERIES} incomplete"
    );
}

#[test]
fn chaos_soak_unreplicated_degrades_loudly_not_wrongly() {
    // Without replicas some fault families are unrecoverable; the contract
    // is that every loss is flagged, never silent. (`soak` asserts that.)
    soak(7, false);
}
