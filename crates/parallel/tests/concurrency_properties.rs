//! Property tests for the concurrent query service: the shared-session
//! engine must preserve the per-worker cache invariants and determinism no
//! matter how queries are windowed.

use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_geom::{Point, Rect};
use pargrid_gridfile::{GridConfig, GridFile, Record};
use pargrid_parallel::{DiskParams, EngineConfig, ParallelGridFile};
use pargrid_sim::QueryWorkload;
use proptest::prelude::*;
use std::sync::Arc;

fn build_engine(n_workers: usize, cache_pages: usize) -> ParallelGridFile {
    let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 6);
    let mut x = 9u64;
    let recs: Vec<Record> = (0..400u64)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Record::new(
                i,
                Point::new2(
                    ((x >> 16) % 10000) as f64 / 100.0,
                    ((x >> 40) % 10000) as f64 / 100.0,
                ),
            )
        })
        .collect();
    let gf = Arc::new(GridFile::bulk_load(cfg, recs));
    let input = DeclusterInput::from_grid_file(&gf);
    let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, n_workers, 3);
    let config = EngineConfig {
        disk: DiskParams {
            cache_pages,
            ..DiskParams::default()
        },
        ..EngineConfig::default()
    };
    ParallelGridFile::build(gf, &assignment, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concurrent admission never overfills a worker's LRU cache: whatever
    /// the window and workload, every disk's resident page count stays
    /// within its configured capacity (tracked as a high-water mark).
    #[test]
    fn concurrent_admission_respects_cache_capacity(
        workers in 2usize..=6,
        cache_pages in 1usize..=24,
        in_flight in 1usize..=12,
        n_queries in 1usize..=30,
        ratio in 1u32..=12,
        seed in 0u64..=1000,
    ) {
        let engine = build_engine(workers, cache_pages);
        let w = QueryWorkload::square(
            &Rect::new2(0.0, 0.0, 100.0, 100.0),
            ratio as f64 / 100.0,
            n_queries,
            seed,
        );
        let (outcomes, tp) = engine.run_workload_concurrent(&w, in_flight);
        prop_assert_eq!(outcomes.len(), n_queries);
        prop_assert_eq!(tp.queries, n_queries as u64);
        let stats = engine.stats();
        prop_assert_eq!(stats.workers.len(), workers);
        for (wid, ws) in stats.workers.iter().enumerate() {
            prop_assert!(
                ws.max_cache_len <= cache_pages as u64,
                "worker {} cache grew to {} pages, capacity {}",
                wid,
                ws.max_cache_len,
                cache_pages
            );
            prop_assert!(ws.cache_len <= ws.max_cache_len);
        }
    }

    /// Windowed execution is a pure scheduling choice: per-query answers,
    /// bucket sets, and total blocks match the serial run exactly.
    #[test]
    fn windowing_never_changes_answers(
        in_flight in 2usize..=10,
        n_queries in 1usize..=20,
        seed in 0u64..=1000,
    ) {
        let serial = build_engine(4, 64);
        let concurrent = build_engine(4, 64);
        let w = QueryWorkload::square(
            &Rect::new2(0.0, 0.0, 100.0, 100.0),
            0.05,
            n_queries,
            seed,
        );
        let mut session = serial.session();
        let (conc, _tp) = concurrent.run_workload_concurrent(&w, in_flight);
        for (q, c) in w.queries.iter().zip(&conc) {
            let s = session.query(q);
            prop_assert_eq!(&s.records, &c.records);
            prop_assert_eq!(&s.buckets, &c.buckets);
            prop_assert_eq!(s.total_blocks, c.total_blocks);
        }
        let serial_stats = serial.stats();
        let conc_stats = concurrent.stats();
        for (a, b) in serial_stats.workers.iter().zip(&conc_stats.workers) {
            prop_assert_eq!(a.blocks_fetched, b.blocks_fetched);
        }
    }
}
