//! The coordinator and the public engine API.
//!
//! `ParallelGridFile::build` declusters a grid file onto `P` worker threads
//! (one simulated disk each, exactly the paper's one-disk-per-processor
//! simplification), then the query API drives the SPMD protocol:
//!
//! 1. the coordinator translates the range query into block requests using
//!    the grid directory (which the paper stores on the coordinator's disk),
//! 2. involved workers read their blocks (virtual disk time, LRU cache),
//!    decode the real pages and filter records,
//! 3. replies stream back; the coordinator merges them.
//!
//! The engine is a **shared service**: every query method takes `&self`, so
//! any number of threads can hold the same engine and open independent
//! [`QuerySession`]s against it. Each session owns a private reply channel;
//! workers answer to whichever session asked, and queries from concurrent
//! sessions that land in a worker's queue together are serviced as one
//! elevator batch (see [`crate::worker`]) while their virtual completion
//! times stay independently accounted.
//!
//! Virtual elapsed time of a query = slowest worker's (disk + CPU) time plus
//! communication time; communication = one broadcast latency plus each
//! reply's (latency + bytes / bandwidth), serialized at the coordinator's
//! adapter — which is why the paper's communication column grows with the
//! query ratio `r` (§ 3.5: "the size of answer sets tends to grow").

use crate::disk::DiskParams;
use crate::message::{FromWorker, QueryPriority, ReadRequest, ToWorker};
use crate::stats::{EngineStats, SharedStats};
use crate::worker::{run_worker, WorkerState};
use crossbeam::channel::{unbounded, Receiver, Sender};
use pargrid_core::Assignment;
use pargrid_geom::Rect;
use pargrid_gridfile::page::encode_page;
use pargrid_gridfile::{GridFile, Record};
use pargrid_sim::{QueryWorkload, ThroughputStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Interconnect cost model (SP-2-class switch).
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Per-message latency in virtual microseconds.
    pub latency_us: u64,
    /// Bandwidth in bytes per virtual microsecond (35 ≈ 35 MB/s).
    pub bytes_per_us: u64,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            latency_us: 40,
            bytes_per_us: 35,
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Disk model parameters (per worker).
    pub disk: DiskParams,
    /// Network parameters.
    pub net: NetParams,
    /// When set, each worker's blocks are written to a real file
    /// `<spill_dir>/worker-<i>.blocks` and served with positioned reads —
    /// the paper's "separate files corresponding to every disk" layout.
    /// `None` keeps blocks in memory.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Disks per worker (0 is treated as 1). The paper's SP-2 had seven
    /// disks per processor; its simulation study assumes one.
    pub disks_per_worker: usize,
}

impl EngineConfig {
    /// In-memory configuration with default disk and network models.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// File-backed configuration (see [`EngineConfig::spill_dir`]).
    pub fn file_backed<P: Into<std::path::PathBuf>>(dir: P) -> Self {
        EngineConfig {
            spill_dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// The paper's SP-2 hardware configuration: seven disks per processor.
    pub fn sp2_seven_disks() -> Self {
        EngineConfig {
            disks_per_worker: 7,
            ..Self::default()
        }
    }
}

/// Result of a single query.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Qualifying records, merged from all workers (sorted by id).
    pub records: Vec<Record>,
    /// Grid-directory buckets the query touched (sorted by id).
    pub buckets: Vec<u32>,
    /// The §2.2 response time in blocks: `max_i N_i(q)`.
    pub response_blocks: u64,
    /// Total blocks requested across workers.
    pub total_blocks: u64,
    /// Buffer-cache hits among them.
    pub cache_hits: u64,
    /// Virtual elapsed time of the query (microseconds), accounted
    /// independently of any concurrently-serviced queries: the slowest
    /// involved worker's own disk + CPU charges plus this query's
    /// communication time.
    pub elapsed_us: u64,
    /// Virtual communication time of the query (microseconds).
    pub comm_us: u64,
}

/// Accumulated results of a workload run — the columns of Tables 4 and 5.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Number of queries processed.
    pub queries: u64,
    /// Sum of per-query response times in blocks fetched
    /// ("response time by definition").
    pub response_blocks: u64,
    /// Total blocks requested.
    pub total_blocks: u64,
    /// Total cache hits.
    pub cache_hits: u64,
    /// Total records returned.
    pub records: u64,
    /// Total virtual communication time (microseconds).
    pub comm_us: u64,
    /// Total virtual elapsed time (microseconds).
    pub elapsed_us: u64,
}

impl RunStats {
    /// Communication time in seconds (the paper's unit).
    pub fn comm_seconds(&self) -> f64 {
        self.comm_us as f64 / 1e6
    }

    /// Elapsed time in seconds (the paper's unit).
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_us as f64 / 1e6
    }

    fn absorb(&mut self, out: &QueryOutcome) {
        self.queries += 1;
        self.response_blocks += out.response_blocks;
        self.total_blocks += out.total_blocks;
        self.cache_hits += out.cache_hits;
        self.records += out.records.len() as u64;
        self.comm_us += out.comm_us;
        self.elapsed_us += out.elapsed_us;
    }
}

/// A parallel grid file: coordinator-side handle plus worker threads.
///
/// The handle is `Sync`: share it behind an `Arc` (or plain `&`) and open a
/// [`QuerySession`] per client thread. The legacy one-shot methods
/// ([`ParallelGridFile::query`], [`ParallelGridFile::run_workload`], ...)
/// take `&self` and open a session internally, so pre-redesign call sites —
/// including those holding `&mut` — compile unchanged.
pub struct ParallelGridFile {
    gf: Arc<GridFile>,
    net: NetParams,
    record_bytes: usize,
    /// bucket id -> (worker, blocks of that bucket).
    placement: HashMap<u32, (usize, Vec<u32>)>,
    to_workers: Vec<Sender<ToWorker>>,
    handles: Vec<JoinHandle<()>>,
    next_query_id: AtomicU64,
    shared: Arc<SharedStats>,
}

impl ParallelGridFile {
    /// Distributes the grid file's buckets over `assignment.n_disks()`
    /// workers (one disk per worker) and spawns the worker threads.
    ///
    /// Each bucket becomes one 8 KB-class block on its worker; oversize
    /// buckets (inseparable duplicates) spill into additional consecutive
    /// blocks. Block ids are consecutive per worker in bucket order, so
    /// spatially-clustered buckets benefit from the sequential-read rate.
    pub fn build(gf: Arc<GridFile>, assignment: &Assignment, config: EngineConfig) -> Self {
        let n_workers = assignment.n_disks();
        assert!(n_workers >= 1, "need at least one worker");
        let dim = gf.dim();
        let payload = gf.config().payload_bytes;
        let page_bytes = gf.config().page_bytes;
        let capacity = gf.bucket_capacity();

        let block_bytes = pargrid_gridfile::page::HEADER_BYTES + page_bytes;
        let mut workers: Vec<WorkerState> = (0..n_workers)
            .map(|w| {
                let store = match &config.spill_dir {
                    None => crate::store::BlockStore::memory(),
                    Some(dir) => crate::store::BlockStore::file(
                        dir.join(format!("worker-{w}.blocks")),
                        block_bytes,
                    )
                    .expect("cannot create worker block file"),
                };
                WorkerState::with_disks(
                    w,
                    payload,
                    config.disk,
                    store,
                    config.disks_per_worker.max(1),
                )
            })
            .collect();
        let mut next_block = vec![0u32; n_workers];
        let mut placement = HashMap::new();

        for (id, _region, _len) in gf.live_buckets() {
            let w = assignment.disk_of_id(id) as usize;
            let records = gf.bucket_records(id);
            let mut blocks = Vec::with_capacity(records.len().div_ceil(capacity.max(1)).max(1));
            for chunk in records.chunks(capacity.max(1)) {
                let block = next_block[w];
                next_block[w] += 1;
                workers[w]
                    .store
                    .put(block, encode_page(chunk, dim, payload, page_bytes))
                    .expect("cannot write block");
                blocks.push(block);
            }
            if blocks.is_empty() {
                // Empty bucket still occupies one (empty) block on disk.
                let block = next_block[w];
                next_block[w] += 1;
                workers[w]
                    .store
                    .put(block, encode_page(&[], dim, payload, page_bytes))
                    .expect("cannot write block");
                blocks.push(block);
            }
            placement.insert(id, (w, blocks));
        }

        let shared = Arc::new(SharedStats::new(n_workers));
        let mut to_workers = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for (w, state) in workers.into_iter().enumerate() {
            let (to_tx, to_rx) = unbounded();
            handles.push(run_worker(
                state,
                to_rx,
                Some(Arc::clone(&shared.workers[w])),
            ));
            to_workers.push(to_tx);
        }

        ParallelGridFile {
            record_bytes: gf.config().record_bytes(),
            gf,
            net: config.net,
            placement,
            to_workers,
            handles,
            next_query_id: AtomicU64::new(0),
            shared,
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.to_workers.len()
    }

    /// Snapshot of the engine's lifetime counters (queries issued, per-worker
    /// blocks/cache/busy-time/batch-size/cache-occupancy). Exact once no
    /// query is in flight.
    pub fn stats(&self) -> EngineStats {
        self.shared.snapshot()
    }

    /// Opens a client session: an independent stream of queries against the
    /// shared engine. Sessions are cheap (one channel); open one per thread.
    pub fn session(&self) -> QuerySession<'_> {
        let (reply_tx, reply_rx) = unbounded();
        QuerySession {
            engine: self,
            reply_tx,
            reply_rx,
            priority: QueryPriority::Interactive,
            stats: RunStats::default(),
        }
    }

    /// Translates a query into its touched buckets (sorted) and per-worker
    /// block lists.
    fn plan(&self, rect: &Rect) -> (Vec<u32>, HashMap<usize, Vec<u32>>) {
        let mut buckets = self.gf.range_query_buckets(rect);
        buckets.sort_unstable();
        let mut per_worker: HashMap<usize, Vec<u32>> = HashMap::new();
        for b in &buckets {
            let (w, blocks) = &self.placement[b];
            per_worker.entry(*w).or_default().extend_from_slice(blocks);
        }
        (buckets, per_worker)
    }

    /// Executes one range query through the SPMD protocol.
    ///
    /// Convenience for one-shot callers; opens a throwaway session. Clients
    /// issuing several queries should hold a [`QuerySession`] instead.
    pub fn query(&self, rect: &Rect) -> QueryOutcome {
        self.session().query(rect)
    }

    /// Runs a whole workload sequentially, accumulating the Tables 4–5
    /// columns.
    pub fn run_workload(&self, workload: &QueryWorkload) -> RunStats {
        let mut session = self.session();
        for q in &workload.queries {
            session.query(q);
        }
        session.stats
    }

    /// Runs a workload with up to `in_flight` queries admitted at once,
    /// returning per-query outcomes plus aggregate throughput metrics.
    ///
    /// The coordinator admits the workload in rounds of `in_flight` queries:
    /// each round's block requests are grouped per worker and dispatched as
    /// one batch, which the worker's disks service in elevator (sorted)
    /// order. Admission rounds are the unit of determinism — batch
    /// composition depends only on the workload and the window, never on
    /// thread timing — so repeated runs produce identical block counts,
    /// cache behavior, and virtual times.
    ///
    /// Per-query `elapsed_us` stays independently accounted (each query is
    /// charged only its own blocks' costs), while
    /// [`ThroughputStats::makespan_us`] reflects the shared schedule: the
    /// busiest worker's total busy time plus all communication.
    pub fn run_workload_concurrent(
        &self,
        workload: &QueryWorkload,
        in_flight: usize,
    ) -> (Vec<QueryOutcome>, ThroughputStats) {
        assert!(in_flight >= 1, "in_flight must be at least 1");
        let n_workers = self.n_workers();
        let (reply_tx, reply_rx) = unbounded();
        let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(workload.len());
        let mut tp = ThroughputStats {
            in_flight,
            worker_busy_us: vec![0; n_workers],
            ..ThroughputStats::default()
        };

        struct Pending {
            round_pos: usize,
            buckets: Vec<u32>,
            awaiting: usize,
            response_blocks: u64,
            total_blocks: u64,
            cache_hits: u64,
            comm_us: u64,
            max_worker_us: u64,
            records: Vec<Record>,
        }

        for round in workload.queries.chunks(in_flight) {
            let mut per_worker: Vec<Vec<ReadRequest>> =
                (0..n_workers).map(|_| Vec::new()).collect();
            let mut pending: HashMap<u64, Pending> = HashMap::new();
            let mut awaiting_total = 0usize;
            for (round_pos, rect) in round.iter().enumerate() {
                let query_id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
                self.shared.queries.fetch_add(1, Ordering::Relaxed);
                let (buckets, plan) = self.plan(rect);
                let mut response_blocks = 0u64;
                let mut awaiting = 0usize;
                for (w, blocks) in plan {
                    response_blocks = response_blocks.max(blocks.len() as u64);
                    per_worker[w].push(ReadRequest {
                        query_id,
                        blocks,
                        query: *rect,
                        reply: reply_tx.clone(),
                        priority: QueryPriority::Batch,
                    });
                    awaiting += 1;
                }
                awaiting_total += awaiting;
                let comm_us = if awaiting > 0 { self.net.latency_us } else { 0 };
                pending.insert(
                    query_id,
                    Pending {
                        round_pos,
                        buckets,
                        awaiting,
                        response_blocks,
                        total_blocks: 0,
                        cache_hits: 0,
                        comm_us,
                        max_worker_us: 0,
                        records: Vec::new(),
                    },
                );
            }

            for (w, requests) in per_worker.into_iter().enumerate() {
                if requests.is_empty() {
                    continue;
                }
                tp.batches += 1;
                tp.batched_requests += requests.len() as u64;
                tp.max_batch = tp.max_batch.max(requests.len() as u64);
                self.to_workers[w]
                    .send(ToWorker::Process(requests))
                    .expect("worker channel closed");
            }

            for _ in 0..awaiting_total {
                let reply = reply_rx.recv().expect("worker died");
                let p = pending
                    .get_mut(&reply.query_id)
                    .expect("reply for unknown query");
                tp.worker_busy_us[reply.worker_id] += reply.disk_us + reply.cpu_us;
                p.total_blocks += reply.blocks_requested;
                p.cache_hits += reply.cache_hits;
                p.max_worker_us = p.max_worker_us.max(reply.disk_us + reply.cpu_us);
                let reply_bytes = 32 + reply.records.len() * self.record_bytes;
                p.comm_us +=
                    self.net.latency_us + reply_bytes as u64 / self.net.bytes_per_us.max(1);
                p.records.extend(reply.records);
                p.awaiting -= 1;
            }

            // Emit this round's outcomes in submission order.
            let mut finished: Vec<Pending> = pending.into_values().collect();
            finished.sort_unstable_by_key(|p| p.round_pos);
            for mut p in finished {
                debug_assert_eq!(p.awaiting, 0);
                p.records.sort_unstable_by_key(|r| r.id);
                tp.queries += 1;
                tp.comm_us += p.comm_us;
                tp.total_blocks += p.total_blocks;
                tp.cache_hits += p.cache_hits;
                outcomes.push(QueryOutcome {
                    records: p.records,
                    buckets: p.buckets,
                    response_blocks: p.response_blocks,
                    total_blocks: p.total_blocks,
                    cache_hits: p.cache_hits,
                    elapsed_us: p.max_worker_us + p.comm_us,
                    comm_us: p.comm_us,
                });
            }
        }

        tp.makespan_us = tp.worker_busy_us.iter().copied().max().unwrap_or(0) + tp.comm_us;
        (outcomes, tp)
    }

    /// Runs a workload with up to `window` queries in flight at once.
    ///
    /// Compatibility wrapper over
    /// [`ParallelGridFile::run_workload_concurrent`]: returns the per-query
    /// outcomes plus [`RunStats`] whose `elapsed_us` is the run's makespan
    /// (busiest worker plus communication) rather than the sum of per-query
    /// elapsed times.
    pub fn run_workload_pipelined(
        &self,
        workload: &QueryWorkload,
        window: usize,
    ) -> (Vec<QueryOutcome>, RunStats) {
        let (outcomes, tp) = self.run_workload_concurrent(workload, window);
        let mut stats = RunStats::default();
        for o in &outcomes {
            stats.absorb(o);
        }
        stats.elapsed_us = tp.makespan_us;
        (outcomes, stats)
    }
}

/// A client's private stream of queries against a shared engine.
///
/// Holds its own reply channel (workers answer to the session that asked)
/// and accumulates [`RunStats`] across its queries. Obtained from
/// [`ParallelGridFile::session`]; one session per client thread.
pub struct QuerySession<'e> {
    engine: &'e ParallelGridFile,
    reply_tx: Sender<FromWorker>,
    reply_rx: Receiver<FromWorker>,
    priority: QueryPriority,
    stats: RunStats,
}

impl QuerySession<'_> {
    /// Sets the scheduling class of this session's requests (default
    /// [`QueryPriority::Interactive`]).
    pub fn with_priority(mut self, priority: QueryPriority) -> Self {
        self.priority = priority;
        self
    }

    /// Executes one range query through the SPMD protocol.
    pub fn query(&mut self, rect: &Rect) -> QueryOutcome {
        let engine = self.engine;
        let query_id = engine.next_query_id.fetch_add(1, Ordering::Relaxed);
        engine.shared.queries.fetch_add(1, Ordering::Relaxed);
        let (buckets, per_worker) = engine.plan(rect);

        let involved = per_worker.len();
        let mut response_blocks = 0u64;
        for (w, blocks) in per_worker {
            response_blocks = response_blocks.max(blocks.len() as u64);
            engine.to_workers[w]
                .send(ToWorker::Process(vec![ReadRequest {
                    query_id,
                    blocks,
                    query: *rect,
                    reply: self.reply_tx.clone(),
                    priority: self.priority,
                }]))
                .expect("worker channel closed");
        }

        // Collect replies; virtual times accumulate per the model in the
        // module docs. Only this session's replies arrive on this channel,
        // and the session issues one query at a time, so every reply is ours.
        let mut records = Vec::new();
        let mut max_worker_us = 0u64;
        let mut comm_us = if involved > 0 {
            engine.net.latency_us
        } else {
            0
        };
        let mut total_blocks = 0u64;
        let mut cache_hits = 0u64;
        for _ in 0..involved {
            let reply = self.reply_rx.recv().expect("worker died");
            assert_eq!(reply.query_id, query_id, "out-of-order reply");
            max_worker_us = max_worker_us.max(reply.disk_us + reply.cpu_us);
            total_blocks += reply.blocks_requested;
            cache_hits += reply.cache_hits;
            let reply_bytes = 32 + reply.records.len() * engine.record_bytes;
            comm_us += engine.net.latency_us + reply_bytes as u64 / engine.net.bytes_per_us.max(1);
            records.extend(reply.records);
        }
        records.sort_unstable_by_key(|r| r.id);

        let outcome = QueryOutcome {
            records,
            buckets,
            response_blocks,
            total_blocks,
            cache_hits,
            elapsed_us: max_worker_us + comm_us,
            comm_us,
        };
        self.stats.absorb(&outcome);
        outcome
    }

    /// Stats accumulated by this session so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}

impl Drop for ParallelGridFile {
    fn drop(&mut self) {
        for tx in &self.to_workers {
            let _ = tx.send(ToWorker::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
    use pargrid_geom::Point;
    use pargrid_gridfile::{GridConfig, Record};
    use pargrid_sim::QueryWorkload;

    fn build_engine(n_workers: usize) -> (Arc<GridFile>, ParallelGridFile, Vec<Record>) {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 8);
        let mut recs = Vec::new();
        let mut x = 1u64;
        for i in 0..600u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            recs.push(Record::new(
                i,
                Point::new2(
                    ((x >> 16) % 10000) as f64 / 100.0,
                    ((x >> 40) % 10000) as f64 / 100.0,
                ),
            ));
        }
        let gf = Arc::new(GridFile::bulk_load(cfg, recs.iter().copied()));
        let input = DeclusterInput::from_grid_file(&gf);
        let assignment =
            DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, n_workers, 7);
        let engine = ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
        (gf, engine, recs)
    }

    #[test]
    fn query_returns_exactly_the_matching_records() {
        let (_gf, engine, recs) = build_engine(4);
        let q = Rect::new2(20.0, 20.0, 60.0, 60.0);
        let out = engine.query(&q);
        let mut expected: Vec<u64> = recs
            .iter()
            .filter(|r| q.contains_closed(&r.point))
            .map(|r| r.id)
            .collect();
        expected.sort_unstable();
        let got: Vec<u64> = out.records.iter().map(|r| r.id).collect();
        assert_eq!(got, expected);
        assert!(out.response_blocks > 0);
        assert!(out.total_blocks >= out.response_blocks);
        assert!(out.elapsed_us > out.comm_us);
        assert!(!out.buckets.is_empty());
    }

    #[test]
    fn parallel_equals_sequential_results() {
        let (gf, engine, _recs) = build_engine(8);
        for (i, q) in [
            Rect::new2(0.0, 0.0, 100.0, 100.0),
            Rect::new2(90.0, 0.0, 100.0, 100.0),
            Rect::new2(33.0, 33.0, 34.0, 34.0),
        ]
        .iter()
        .enumerate()
        {
            let out = engine.query(q);
            let (_, mut expected) = gf.range_query(q);
            expected.sort_unstable_by_key(|r| r.id);
            assert_eq!(out.records, expected, "query {i}");
        }
    }

    #[test]
    fn more_workers_reduce_response_blocks() {
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.1, 40, 3);
        let (_g4, e4, _) = build_engine(4);
        let (_g16, e16, _) = build_engine(16);
        let s4 = e4.run_workload(&w);
        let s16 = e16.run_workload(&w);
        assert!(
            (s16.response_blocks as f64) < 0.6 * s4.response_blocks as f64,
            "4 workers: {}, 16 workers: {}",
            s4.response_blocks,
            s16.response_blocks
        );
        assert!(s16.elapsed_seconds() < s4.elapsed_seconds());
        // Identical answers regardless of parallelism.
        assert_eq!(s4.records, s16.records);
    }

    #[test]
    fn empty_query_is_cheap_and_empty() {
        let (_gf, engine, _recs) = build_engine(4);
        let out = engine.query(&Rect::new2(200.0, 200.0, 300.0, 300.0));
        assert!(out.records.is_empty());
        assert!(out.buckets.is_empty());
        assert_eq!(out.total_blocks, 0);
        assert_eq!(out.comm_us, 0);
        assert_eq!(out.elapsed_us, 0);
    }

    #[test]
    fn repeated_queries_hit_worker_caches() {
        let (_gf, engine, _recs) = build_engine(4);
        let q = Rect::new2(10.0, 10.0, 50.0, 50.0);
        let first = engine.query(&q);
        let second = engine.query(&q);
        assert_eq!(first.cache_hits, 0);
        assert_eq!(second.cache_hits, second.total_blocks);
        assert!(second.elapsed_us < first.elapsed_us);
    }

    #[test]
    fn legacy_mut_call_sites_still_compile() {
        // The API redesign moved query methods to `&self`; holders of
        // `&mut ParallelGridFile` (the pre-redesign contract) coerce.
        let (_gf, mut engine, _recs) = build_engine(2);
        let q = Rect::new2(0.0, 0.0, 10.0, 10.0);
        let handle: &mut ParallelGridFile = &mut engine;
        let _ = handle.query(&q);
        let _ = handle.run_workload(&QueryWorkload { queries: vec![q] });
    }

    #[test]
    fn shutdown_is_clean() {
        let (_gf, engine, _recs) = build_engine(3);
        drop(engine); // must not hang or panic
    }

    #[test]
    fn session_accumulates_stats() {
        let (_gf, engine, _recs) = build_engine(4);
        let mut session = engine.session();
        let q = Rect::new2(10.0, 10.0, 50.0, 50.0);
        session.query(&q);
        session.query(&q);
        let stats = session.stats();
        assert_eq!(stats.queries, 2);
        assert!(stats.total_blocks > 0);
        assert!(stats.cache_hits > 0, "second query should hit cache");
        let engine_stats = engine.stats();
        assert_eq!(engine_stats.queries, 2);
        assert_eq!(engine_stats.total_blocks(), stats.total_blocks);
    }

    #[test]
    fn concurrent_sessions_share_one_engine() {
        // The tentpole contract: multiple client threads query one engine
        // through `&self` simultaneously and each gets exactly its own
        // query's answers.
        let (gf, engine, _recs) = build_engine(4);
        let queries = [
            Rect::new2(0.0, 0.0, 30.0, 30.0),
            Rect::new2(40.0, 40.0, 80.0, 80.0),
            Rect::new2(10.0, 60.0, 90.0, 95.0),
            Rect::new2(0.0, 0.0, 100.0, 100.0),
        ];
        let mut expected = Vec::new();
        for q in &queries {
            let (_, mut e) = gf.range_query(q);
            e.sort_unstable_by_key(|r| r.id);
            expected.push(e);
        }
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for q in &queries {
                let engine = &engine;
                joins.push(scope.spawn(move || {
                    let mut session = engine.session();
                    let mut out = Vec::new();
                    for _ in 0..3 {
                        out.push(session.query(q).records);
                    }
                    out
                }));
            }
            for (join, expect) in joins.into_iter().zip(&expected) {
                for got in join.join().expect("client thread") {
                    assert_eq!(&got, expect);
                }
            }
        });
        assert_eq!(engine.stats().queries, 12);
    }

    #[test]
    fn pipelined_matches_sequential_results() {
        let (_gf, seq, _recs) = build_engine(6);
        let (_gf2, pip, _recs2) = build_engine(6);
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.05, 40, 21);
        let (outcomes, pstats) = pip.run_workload_pipelined(&w, 8);
        assert_eq!(outcomes.len(), 40);
        let mut sstats = RunStats::default();
        for (q, out) in w.queries.iter().zip(&outcomes) {
            let s = seq.query(q);
            assert_eq!(s.records, out.records);
            assert_eq!(s.total_blocks, out.total_blocks);
            sstats.elapsed_us += s.elapsed_us;
        }
        // Batched servicing never exceeds sequential elapsed time (shared
        // elevator passes only remove seeks; cache contents match because
        // both engines saw the same query order).
        assert!(
            pstats.elapsed_us <= sstats.elapsed_us,
            "pipelined {} > sequential {}",
            pstats.elapsed_us,
            sstats.elapsed_us
        );
        assert!(pstats.elapsed_us > 0);
    }

    #[test]
    fn pipelined_window_one_equals_sequential_totals() {
        let (_gf, a, _r) = build_engine(4);
        let (_gf2, b, _r2) = build_engine(4);
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.05, 15, 5);
        let sa = a.run_workload(&w);
        let (_, sb) = b.run_workload_pipelined(&w, 1);
        assert_eq!(sa.total_blocks, sb.total_blocks);
        assert_eq!(sa.records, sb.records);
        assert_eq!(sa.response_blocks, sb.response_blocks);
    }

    #[test]
    fn concurrent_run_is_deterministic_and_matches_serial() {
        // The ISSUE acceptance test: a seeded workload run serially and with
        // in_flight > 1 fetches the identical total number of blocks from
        // each worker and touches identical per-query bucket sets.
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.06, 30, 17);

        let (_g1, serial, _r1) = build_engine(6);
        let mut serial_session = serial.session();
        let serial_outcomes: Vec<QueryOutcome> =
            w.queries.iter().map(|q| serial_session.query(q)).collect();
        let serial_stats = serial.stats();

        let (_g2, concurrent, _r2) = build_engine(6);
        let (conc_outcomes, tp) = concurrent.run_workload_concurrent(&w, 8);
        let conc_stats = concurrent.stats();

        assert_eq!(conc_outcomes.len(), serial_outcomes.len());
        for (s, c) in serial_outcomes.iter().zip(&conc_outcomes) {
            assert_eq!(s.buckets, c.buckets, "per-query bucket sets differ");
            assert_eq!(s.records, c.records);
            assert_eq!(s.total_blocks, c.total_blocks);
        }
        // Identical per-worker block totals, worker by worker.
        for (ws, wc) in serial_stats.workers.iter().zip(&conc_stats.workers) {
            assert_eq!(ws.blocks_fetched, wc.blocks_fetched);
        }
        assert_eq!(tp.total_blocks, serial_session.stats().total_blocks);

        // And the concurrent run itself is reproducible.
        let (_g3, again, _r3) = build_engine(6);
        let (again_outcomes, tp2) = again.run_workload_concurrent(&w, 8);
        assert_eq!(tp2.makespan_us, tp.makespan_us);
        assert_eq!(tp2.cache_hits, tp.cache_hits);
        for (a, b) in conc_outcomes.iter().zip(&again_outcomes) {
            assert_eq!(a.elapsed_us, b.elapsed_us);
        }
    }

    #[test]
    fn wider_window_raises_throughput() {
        let (_g, engine, _r) = build_engine(4);
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.05, 48, 9);
        let (_g2, engine2, _r2) = build_engine(4);
        let (_, tp1) = engine.run_workload_concurrent(&w, 1);
        let (_, tp8) = engine2.run_workload_concurrent(&w, 8);
        assert_eq!(tp1.queries, 48);
        assert_eq!(tp8.queries, 48);
        assert!(
            tp8.queries_per_second() > tp1.queries_per_second(),
            "window 8 ({:.1} q/s) not faster than window 1 ({:.1} q/s)",
            tp8.queries_per_second(),
            tp1.queries_per_second()
        );
        assert!(tp8.mean_batch() > tp1.mean_batch());
        assert!(tp8.max_batch >= tp8.in_flight as u64 / 2);
    }

    #[test]
    fn file_backed_store_matches_memory() {
        let dir = std::env::temp_dir().join("pargrid_engine_spill_test");
        let _ = std::fs::remove_dir_all(&dir);
        let (gf, mem_engine, _recs) = build_engine(4);
        let input = DeclusterInput::from_grid_file(&gf);
        let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 4, 7);
        let file_engine = ParallelGridFile::build(
            Arc::clone(&gf),
            &assignment,
            EngineConfig::file_backed(&dir),
        );
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.08, 25, 13);
        for q in &w.queries {
            let a = mem_engine.query(q);
            let b = file_engine.query(q);
            assert_eq!(a.records, b.records);
            assert_eq!(a.total_blocks, b.total_blocks);
        }
        // Real block files exist with the expected geometry.
        let f = std::fs::metadata(dir.join("worker-0.blocks")).expect("file exists");
        assert!(f.len() > 0);
        assert_eq!(
            f.len() % (gf.config().page_bytes as u64 + 4),
            0,
            "file is whole blocks"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
