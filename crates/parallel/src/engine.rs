//! The coordinator and the public engine API.
//!
//! `ParallelGridFile::build` declusters a grid file onto `P` worker threads
//! (one simulated disk each, exactly the paper's one-disk-per-processor
//! simplification), then `query`/`run_workload` drive the SPMD protocol:
//!
//! 1. the coordinator translates the range query into block requests using
//!    the grid directory (which the paper stores on the coordinator's disk),
//! 2. involved workers read their blocks (virtual disk time, LRU cache),
//!    decode the real pages and filter records,
//! 3. replies stream back; the coordinator merges them.
//!
//! Virtual elapsed time of a query = slowest worker's (disk + CPU) time plus
//! communication time; communication = one broadcast latency plus each
//! reply's (latency + bytes / bandwidth), serialized at the coordinator's
//! adapter — which is why the paper's communication column grows with the
//! query ratio `r` (§ 3.5: "the size of answer sets tends to grow").

use crate::disk::DiskParams;
use crate::message::{FromWorker, ToWorker};
use crate::worker::{run_worker, WorkerState};
use crossbeam::channel::{unbounded, Receiver, Sender};
use pargrid_core::Assignment;
use pargrid_geom::Rect;
use pargrid_gridfile::page::encode_page;
use pargrid_gridfile::{GridFile, Record};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Interconnect cost model (SP-2-class switch).
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Per-message latency in virtual microseconds.
    pub latency_us: u64,
    /// Bandwidth in bytes per virtual microsecond (35 ≈ 35 MB/s).
    pub bytes_per_us: u64,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            latency_us: 40,
            bytes_per_us: 35,
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Disk model parameters (per worker).
    pub disk: DiskParams,
    /// Network parameters.
    pub net: NetParams,
    /// When set, each worker's blocks are written to a real file
    /// `<spill_dir>/worker-<i>.blocks` and served with positioned reads —
    /// the paper's "separate files corresponding to every disk" layout.
    /// `None` keeps blocks in memory.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Disks per worker (0 is treated as 1). The paper's SP-2 had seven
    /// disks per processor; its simulation study assumes one.
    pub disks_per_worker: usize,
}

impl EngineConfig {
    /// In-memory configuration with default disk and network models.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// File-backed configuration (see [`EngineConfig::spill_dir`]).
    pub fn file_backed<P: Into<std::path::PathBuf>>(dir: P) -> Self {
        EngineConfig {
            spill_dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// The paper's SP-2 hardware configuration: seven disks per processor.
    pub fn sp2_seven_disks() -> Self {
        EngineConfig {
            disks_per_worker: 7,
            ..Self::default()
        }
    }
}

/// Result of a single query.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Qualifying records, merged from all workers (sorted by id).
    pub records: Vec<Record>,
    /// The §2.2 response time in blocks: `max_i N_i(q)`.
    pub response_blocks: u64,
    /// Total blocks requested across workers.
    pub total_blocks: u64,
    /// Buffer-cache hits among them.
    pub cache_hits: u64,
    /// Virtual elapsed time of the query (microseconds).
    pub elapsed_us: u64,
    /// Virtual communication time of the query (microseconds).
    pub comm_us: u64,
}

/// Accumulated results of a workload run — the columns of Tables 4 and 5.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Number of queries processed.
    pub queries: u64,
    /// Sum of per-query response times in blocks fetched
    /// ("response time by definition").
    pub response_blocks: u64,
    /// Total blocks requested.
    pub total_blocks: u64,
    /// Total cache hits.
    pub cache_hits: u64,
    /// Total records returned.
    pub records: u64,
    /// Total virtual communication time (microseconds).
    pub comm_us: u64,
    /// Total virtual elapsed time (microseconds).
    pub elapsed_us: u64,
}

impl RunStats {
    /// Communication time in seconds (the paper's unit).
    pub fn comm_seconds(&self) -> f64 {
        self.comm_us as f64 / 1e6
    }

    /// Elapsed time in seconds (the paper's unit).
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_us as f64 / 1e6
    }
}

/// A parallel grid file: coordinator-side handle plus worker threads.
pub struct ParallelGridFile {
    gf: Arc<GridFile>,
    net: NetParams,
    record_bytes: usize,
    /// bucket id -> (worker, blocks of that bucket).
    placement: HashMap<u32, (usize, Vec<u32>)>,
    to_workers: Vec<Sender<ToWorker>>,
    from_workers: Receiver<FromWorker>,
    handles: Vec<JoinHandle<()>>,
    next_query_id: u64,
}

impl ParallelGridFile {
    /// Distributes the grid file's buckets over `assignment.n_disks()`
    /// workers (one disk per worker) and spawns the worker threads.
    ///
    /// Each bucket becomes one 8 KB-class block on its worker; oversize
    /// buckets (inseparable duplicates) spill into additional consecutive
    /// blocks. Block ids are consecutive per worker in bucket order, so
    /// spatially-clustered buckets benefit from the sequential-read rate.
    pub fn build(gf: Arc<GridFile>, assignment: &Assignment, config: EngineConfig) -> Self {
        let n_workers = assignment.n_disks();
        assert!(n_workers >= 1, "need at least one worker");
        let dim = gf.dim();
        let payload = gf.config().payload_bytes;
        let page_bytes = gf.config().page_bytes;
        let capacity = gf.bucket_capacity();

        let block_bytes = pargrid_gridfile::page::HEADER_BYTES + page_bytes;
        let mut workers: Vec<WorkerState> = (0..n_workers)
            .map(|w| {
                let store = match &config.spill_dir {
                    None => crate::store::BlockStore::memory(),
                    Some(dir) => crate::store::BlockStore::file(
                        dir.join(format!("worker-{w}.blocks")),
                        block_bytes,
                    )
                    .expect("cannot create worker block file"),
                };
                WorkerState::with_disks(
                    w,
                    payload,
                    config.disk,
                    store,
                    config.disks_per_worker.max(1),
                )
            })
            .collect();
        let mut next_block = vec![0u32; n_workers];
        let mut placement = HashMap::new();

        for (id, _region, _len) in gf.live_buckets() {
            let w = assignment.disk_of_id(id) as usize;
            let records = gf.bucket_records(id);
            let mut blocks = Vec::with_capacity(records.len().div_ceil(capacity.max(1)).max(1));
            for chunk in records.chunks(capacity.max(1)) {
                let block = next_block[w];
                next_block[w] += 1;
                workers[w]
                    .store
                    .put(block, encode_page(chunk, dim, payload, page_bytes))
                    .expect("cannot write block");
                blocks.push(block);
            }
            if blocks.is_empty() {
                // Empty bucket still occupies one (empty) block on disk.
                let block = next_block[w];
                next_block[w] += 1;
                workers[w]
                    .store
                    .put(block, encode_page(&[], dim, payload, page_bytes))
                    .expect("cannot write block");
                blocks.push(block);
            }
            placement.insert(id, (w, blocks));
        }

        let (from_tx, from_workers) = unbounded();
        let mut to_workers = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for state in workers {
            let (to_tx, to_rx) = unbounded();
            handles.push(run_worker(state, to_rx, from_tx.clone()));
            to_workers.push(to_tx);
        }

        ParallelGridFile {
            record_bytes: gf.config().record_bytes(),
            gf,
            net: config.net,
            placement,
            to_workers,
            from_workers,
            handles,
            next_query_id: 0,
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.to_workers.len()
    }

    /// Executes one range query through the SPMD protocol.
    pub fn query(&mut self, rect: &Rect) -> QueryOutcome {
        let query_id = self.next_query_id;
        self.next_query_id += 1;

        // Coordinator: translate the query into per-worker block requests.
        let buckets = self.gf.range_query_buckets(rect);
        let mut per_worker: HashMap<usize, Vec<u32>> = HashMap::new();
        for b in &buckets {
            let (w, blocks) = &self.placement[b];
            per_worker.entry(*w).or_default().extend_from_slice(blocks);
        }

        let involved = per_worker.len();
        let mut response_blocks = 0u64;
        for (&w, blocks) in &per_worker {
            response_blocks = response_blocks.max(blocks.len() as u64);
            self.to_workers[w]
                .send(ToWorker::Read {
                    query_id,
                    blocks: blocks.clone(),
                    query: *rect,
                })
                .expect("worker channel closed");
        }

        // Collect replies; virtual times accumulate per the model in the
        // module docs.
        let mut records = Vec::new();
        let mut max_worker_us = 0u64;
        let mut comm_us = if involved > 0 { self.net.latency_us } else { 0 };
        let mut total_blocks = 0u64;
        let mut cache_hits = 0u64;
        for _ in 0..involved {
            let reply = self.from_workers.recv().expect("worker died");
            assert_eq!(reply.query_id, query_id, "out-of-order reply");
            max_worker_us = max_worker_us.max(reply.disk_us + reply.cpu_us);
            total_blocks += reply.blocks_requested;
            cache_hits += reply.cache_hits;
            let reply_bytes = 32 + reply.records.len() * self.record_bytes;
            comm_us += self.net.latency_us + reply_bytes as u64 / self.net.bytes_per_us.max(1);
            records.extend(reply.records);
        }
        records.sort_unstable_by_key(|r| r.id);

        QueryOutcome {
            records,
            response_blocks,
            total_blocks,
            cache_hits,
            elapsed_us: max_worker_us + comm_us,
            comm_us,
        }
    }

    /// Runs a whole workload, accumulating the Tables 4–5 columns.
    pub fn run_workload(&mut self, workload: &pargrid_sim::QueryWorkload) -> RunStats {
        let mut stats = RunStats::default();
        for q in &workload.queries {
            let out = self.query(q);
            stats.queries += 1;
            stats.response_blocks += out.response_blocks;
            stats.total_blocks += out.total_blocks;
            stats.cache_hits += out.cache_hits;
            stats.records += out.records.len() as u64;
            stats.comm_us += out.comm_us;
            stats.elapsed_us += out.elapsed_us;
        }
        stats
    }

    /// Runs a workload with up to `window` queries in flight at once.
    ///
    /// The sequential [`ParallelGridFile::query`] leaves every disk idle
    /// while the slowest one finishes; pipelining keeps all disks busy
    /// across query boundaries (the "various access patterns" §4 anticipates
    /// for a multi-user front end). Virtual time is accounted as a makespan:
    /// each worker's disk busy time accumulates independently and the run's
    /// elapsed time is the busiest worker's total plus communication — a
    /// lower bound a real scheduler can approach.
    ///
    /// Returns the per-query outcomes (records identical to sequential
    /// execution) plus the aggregate stats, whose `elapsed_us` is the
    /// pipelined makespan.
    pub fn run_workload_pipelined(
        &mut self,
        workload: &pargrid_sim::QueryWorkload,
        window: usize,
    ) -> (Vec<QueryOutcome>, RunStats) {
        assert!(window >= 1, "window must be at least 1");
        let n = workload.queries.len();
        let mut outcomes: Vec<Option<QueryOutcome>> = (0..n).map(|_| None).collect();
        let mut stats = RunStats::default();
        let mut worker_busy_us = vec![0u64; self.n_workers()];

        // Per in-flight query bookkeeping.
        struct InFlight {
            awaiting: usize,
            response_blocks: u64,
            total_blocks: u64,
            cache_hits: u64,
            comm_us: u64,
            records: Vec<Record>,
        }
        let mut in_flight: HashMap<u64, (usize, InFlight)> = HashMap::new();
        let base_id = self.next_query_id;
        let mut issued = 0usize;
        let mut completed = 0usize;

        while completed < n {
            // Keep the window full.
            while issued < n && in_flight.len() < window {
                let rect = &workload.queries[issued];
                let query_id = self.next_query_id;
                self.next_query_id += 1;
                let buckets = self.gf.range_query_buckets(rect);
                let mut per_worker: HashMap<usize, Vec<u32>> = HashMap::new();
                for b in &buckets {
                    let (w, blocks) = &self.placement[b];
                    per_worker.entry(*w).or_default().extend_from_slice(blocks);
                }
                let mut response_blocks = 0;
                for (&w, blocks) in &per_worker {
                    response_blocks = response_blocks.max(blocks.len() as u64);
                    self.to_workers[w]
                        .send(ToWorker::Read {
                            query_id,
                            blocks: blocks.clone(),
                            query: *rect,
                        })
                        .expect("worker channel closed");
                }
                let awaiting = per_worker.len();
                let comm_us = if awaiting > 0 { self.net.latency_us } else { 0 };
                in_flight.insert(
                    query_id,
                    (
                        issued,
                        InFlight {
                            awaiting,
                            response_blocks,
                            total_blocks: 0,
                            cache_hits: 0,
                            comm_us,
                            records: Vec::new(),
                        },
                    ),
                );
                issued += 1;
                // Zero-touch queries complete immediately.
                if awaiting == 0 {
                    let (pos, fl) = in_flight.remove(&query_id).expect("just inserted");
                    outcomes[pos] = Some(QueryOutcome {
                        records: Vec::new(),
                        response_blocks: 0,
                        total_blocks: 0,
                        cache_hits: 0,
                        elapsed_us: 0,
                        comm_us: fl.comm_us,
                    });
                    completed += 1;
                }
            }
            if completed == n {
                break;
            }
            // Drain one reply.
            let reply = self.from_workers.recv().expect("worker died");
            assert!(reply.query_id >= base_id, "stale reply");
            let (_, fl) = in_flight
                .get_mut(&reply.query_id)
                .expect("reply for unknown query");
            worker_busy_us[reply.worker_id] += reply.disk_us + reply.cpu_us;
            fl.total_blocks += reply.blocks_requested;
            fl.cache_hits += reply.cache_hits;
            let reply_bytes = 32 + reply.records.len() * self.record_bytes;
            fl.comm_us += self.net.latency_us + reply_bytes as u64 / self.net.bytes_per_us.max(1);
            fl.records.extend(reply.records);
            fl.awaiting -= 1;
            if fl.awaiting == 0 {
                let (pos, mut fl) = in_flight.remove(&reply.query_id).expect("present");
                fl.records.sort_unstable_by_key(|r| r.id);
                outcomes[pos] = Some(QueryOutcome {
                    response_blocks: fl.response_blocks,
                    total_blocks: fl.total_blocks,
                    cache_hits: fl.cache_hits,
                    elapsed_us: 0, // per-query latency is not defined under pipelining
                    comm_us: fl.comm_us,
                    records: fl.records,
                });
                completed += 1;
            }
        }

        let outcomes: Vec<QueryOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("all queries completed"))
            .collect();
        for o in &outcomes {
            stats.queries += 1;
            stats.response_blocks += o.response_blocks;
            stats.total_blocks += o.total_blocks;
            stats.cache_hits += o.cache_hits;
            stats.records += o.records.len() as u64;
            stats.comm_us += o.comm_us;
        }
        stats.elapsed_us = worker_busy_us.iter().copied().max().unwrap_or(0) + stats.comm_us;
        (outcomes, stats)
    }
}

impl Drop for ParallelGridFile {
    fn drop(&mut self) {
        for tx in &self.to_workers {
            let _ = tx.send(ToWorker::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
    use pargrid_geom::Point;
    use pargrid_gridfile::{GridConfig, Record};
    use pargrid_sim::QueryWorkload;

    fn build_engine(n_workers: usize) -> (Arc<GridFile>, ParallelGridFile, Vec<Record>) {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 8);
        let mut recs = Vec::new();
        let mut x = 1u64;
        for i in 0..600u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            recs.push(Record::new(
                i,
                Point::new2(
                    ((x >> 16) % 10000) as f64 / 100.0,
                    ((x >> 40) % 10000) as f64 / 100.0,
                ),
            ));
        }
        let gf = Arc::new(GridFile::bulk_load(cfg, recs.iter().copied()));
        let input = DeclusterInput::from_grid_file(&gf);
        let assignment =
            DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, n_workers, 7);
        let engine = ParallelGridFile::build(Arc::clone(&gf), &assignment, EngineConfig::default());
        (gf, engine, recs)
    }

    #[test]
    fn query_returns_exactly_the_matching_records() {
        let (_gf, mut engine, recs) = build_engine(4);
        let q = Rect::new2(20.0, 20.0, 60.0, 60.0);
        let out = engine.query(&q);
        let mut expected: Vec<u64> = recs
            .iter()
            .filter(|r| q.contains_closed(&r.point))
            .map(|r| r.id)
            .collect();
        expected.sort_unstable();
        let got: Vec<u64> = out.records.iter().map(|r| r.id).collect();
        assert_eq!(got, expected);
        assert!(out.response_blocks > 0);
        assert!(out.total_blocks >= out.response_blocks);
        assert!(out.elapsed_us > out.comm_us);
    }

    #[test]
    fn parallel_equals_sequential_results() {
        let (gf, mut engine, _recs) = build_engine(8);
        for (i, q) in [
            Rect::new2(0.0, 0.0, 100.0, 100.0),
            Rect::new2(90.0, 0.0, 100.0, 100.0),
            Rect::new2(33.0, 33.0, 34.0, 34.0),
        ]
        .iter()
        .enumerate()
        {
            let out = engine.query(q);
            let (_, mut expected) = gf.range_query(q);
            expected.sort_unstable_by_key(|r| r.id);
            assert_eq!(out.records, expected, "query {i}");
        }
    }

    #[test]
    fn more_workers_reduce_response_blocks() {
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.1, 40, 3);
        let (_g4, mut e4, _) = build_engine(4);
        let (_g16, mut e16, _) = build_engine(16);
        let s4 = e4.run_workload(&w);
        let s16 = e16.run_workload(&w);
        assert!(
            (s16.response_blocks as f64) < 0.6 * s4.response_blocks as f64,
            "4 workers: {}, 16 workers: {}",
            s4.response_blocks,
            s16.response_blocks
        );
        assert!(s16.elapsed_seconds() < s4.elapsed_seconds());
        // Identical answers regardless of parallelism.
        assert_eq!(s4.records, s16.records);
    }

    #[test]
    fn empty_query_is_cheap_and_empty() {
        let (_gf, mut engine, _recs) = build_engine(4);
        let out = engine.query(&Rect::new2(200.0, 200.0, 300.0, 300.0));
        assert!(out.records.is_empty());
        assert_eq!(out.total_blocks, 0);
        assert_eq!(out.comm_us, 0);
        assert_eq!(out.elapsed_us, 0);
    }

    #[test]
    fn repeated_queries_hit_worker_caches() {
        let (_gf, mut engine, _recs) = build_engine(4);
        let q = Rect::new2(10.0, 10.0, 50.0, 50.0);
        let first = engine.query(&q);
        let second = engine.query(&q);
        assert_eq!(first.cache_hits, 0);
        assert_eq!(second.cache_hits, second.total_blocks);
        assert!(second.elapsed_us < first.elapsed_us);
    }

    #[test]
    fn shutdown_is_clean() {
        let (_gf, engine, _recs) = build_engine(3);
        drop(engine); // must not hang or panic
    }

    #[test]
    fn pipelined_matches_sequential_results() {
        let (_gf, mut seq, _recs) = build_engine(6);
        let (_gf2, mut pip, _recs2) = build_engine(6);
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.05, 40, 21);
        let (outcomes, pstats) = pip.run_workload_pipelined(&w, 8);
        assert_eq!(outcomes.len(), 40);
        let mut sstats = RunStats::default();
        for (q, out) in w.queries.iter().zip(&outcomes) {
            let s = seq.query(q);
            assert_eq!(s.records, out.records);
            assert_eq!(s.total_blocks, out.total_blocks);
            sstats.elapsed_us += s.elapsed_us;
        }
        // Pipelining never exceeds sequential elapsed time (cache state
        // matches because both engines saw the same query order).
        assert!(
            pstats.elapsed_us <= sstats.elapsed_us,
            "pipelined {} > sequential {}",
            pstats.elapsed_us,
            sstats.elapsed_us
        );
        assert!(pstats.elapsed_us > 0);
    }

    #[test]
    fn pipelined_window_one_equals_sequential_totals() {
        let (_gf, mut a, _r) = build_engine(4);
        let (_gf2, mut b, _r2) = build_engine(4);
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.05, 15, 5);
        let sa = a.run_workload(&w);
        let (_, sb) = b.run_workload_pipelined(&w, 1);
        assert_eq!(sa.total_blocks, sb.total_blocks);
        assert_eq!(sa.records, sb.records);
        assert_eq!(sa.response_blocks, sb.response_blocks);
    }

    #[test]
    fn file_backed_store_matches_memory() {
        let dir = std::env::temp_dir().join("pargrid_engine_spill_test");
        let _ = std::fs::remove_dir_all(&dir);
        let (gf, mut mem_engine, _recs) = build_engine(4);
        let input = DeclusterInput::from_grid_file(&gf);
        let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 4, 7);
        let mut file_engine = ParallelGridFile::build(
            Arc::clone(&gf),
            &assignment,
            EngineConfig::file_backed(&dir),
        );
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.08, 25, 13);
        for q in &w.queries {
            let a = mem_engine.query(q);
            let b = file_engine.query(q);
            assert_eq!(a.records, b.records);
            assert_eq!(a.total_blocks, b.total_blocks);
        }
        // Real block files exist with the expected geometry.
        let f = std::fs::metadata(dir.join("worker-0.blocks")).expect("file exists");
        assert!(f.len() > 0);
        assert_eq!(
            f.len() % (gf.config().page_bytes as u64 + 4),
            0,
            "file is whole blocks"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
